//! Property tests for the independent verifier: its re-derived dataflow
//! facts must agree with `gallium-analysis` on randomized programs (the
//! two implementations share no code), and every compiled program —
//! random or packaged — must verify clean under any model the compiler
//! accepted it for.

use gallium::analysis::{DepGraph, DepKind, Liveness};
use gallium::mir::{BinOp, FuncBuilder, HeaderField, Program, ValueId};
use gallium::prelude::*;
use gallium::verify::{dataflow, deps::DepEdgeKind, deps::VDeps};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------------
// Random-program generator (same classify/act shape the compiler prop
// tests use: ALU pre-work, optional annotated map with a hit/miss
// branch, optional register/vector state, per-branch actions).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PureOp {
    ReadField(usize),
    Const(u32),
    Bin(u8, usize, usize),
    Hash(usize, usize),
}

#[derive(Debug, Clone)]
enum BranchOp {
    WriteField(usize, usize),
    RegWrite(usize),
    VecPick(usize),
    MapInsert(usize),
    Drop,
}

#[derive(Debug, Clone)]
struct Recipe {
    map_annotated: bool,
    use_map: bool,
    use_reg: bool,
    use_vec: bool,
    pre: Vec<PureOp>,
    hit: Vec<BranchOp>,
    miss: Vec<BranchOp>,
}

const READ_FIELDS: [HeaderField; 5] = [
    HeaderField::IpSaddr,
    HeaderField::IpDaddr,
    HeaderField::SrcPort,
    HeaderField::DstPort,
    HeaderField::TcpSeq,
];
const WRITE_FIELDS: [HeaderField; 4] = [
    HeaderField::IpDaddr,
    HeaderField::DstPort,
    HeaderField::IpTtl,
    HeaderField::TcpAck,
];

fn pure_op() -> impl Strategy<Value = PureOp> {
    prop_oneof![
        (0..READ_FIELDS.len()).prop_map(PureOp::ReadField),
        any::<u32>().prop_map(PureOp::Const),
        (0u8..7, 0usize..8, 0usize..8).prop_map(|(o, a, b)| PureOp::Bin(o, a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| PureOp::Hash(a, b)),
    ]
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        (0..WRITE_FIELDS.len(), 0usize..8).prop_map(|(f, v)| BranchOp::WriteField(f, v)),
        (0usize..8).prop_map(BranchOp::RegWrite),
        (0usize..8).prop_map(BranchOp::VecPick),
        (0usize..8).prop_map(BranchOp::MapInsert),
        Just(BranchOp::Drop),
    ]
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(pure_op(), 1..6),
        proptest::collection::vec(branch_op(), 0..4),
        proptest::collection::vec(branch_op(), 0..4),
    )
        .prop_map(
            |(map_annotated, use_map, use_reg, use_vec, pre, hit, miss)| Recipe {
                map_annotated,
                use_map,
                use_reg,
                use_vec,
                pre,
                hit,
                miss,
            },
        )
}

fn build(recipe: &Recipe) -> Program {
    let mut b = FuncBuilder::new("generated");
    let map = recipe.use_map.then(|| {
        b.decl_map(
            "m",
            vec![16],
            vec![32],
            recipe.map_annotated.then_some(4096),
        )
    });
    let reg = recipe.use_reg.then(|| b.decl_register("r", 32));
    let vec = recipe.use_vec.then(|| b.decl_vector("v", 32, 8));

    let mut pool: Vec<ValueId> = Vec::new();
    let seed = b.read_field(HeaderField::IpSaddr);
    pool.push(seed);
    for op in &recipe.pre {
        let v = match op {
            PureOp::ReadField(i) => {
                let f = b.read_field(READ_FIELDS[*i % READ_FIELDS.len()]);
                b.cast(f, 32)
            }
            PureOp::Const(c) => b.cnst(u64::from(*c), 32),
            PureOp::Bin(o, ai, bi) => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Mul,
                    BinOp::Mod,
                ];
                let a = pool[*ai % pool.len()];
                let c = pool[*bi % pool.len()];
                let r = b.bin(ops[usize::from(*o) % ops.len()], a, c);
                b.cast(r, 32)
            }
            PureOp::Hash(ai, bi) => {
                let a = pool[*ai % pool.len()];
                let c = pool[*bi % pool.len()];
                b.hash(vec![a, c], 32)
            }
        };
        pool.push(v);
    }

    let emit = |b: &mut FuncBuilder, pool: &[ValueId], ops: &[BranchOp], extra: Option<ValueId>| {
        let mut dropped = false;
        for op in ops {
            match op {
                BranchOp::WriteField(f, v) => {
                    let field = WRITE_FIELDS[*f % WRITE_FIELDS.len()];
                    let src = extra.unwrap_or(pool[*v % pool.len()]);
                    let val = b.cast(src, field.bits());
                    b.write_field(field, val);
                }
                BranchOp::RegWrite(v) => {
                    if let Some(r) = reg {
                        b.reg_write(r, pool[*v % pool.len()]);
                    }
                }
                BranchOp::VecPick(v) => {
                    if let Some(vecs) = vec {
                        let len = b.vec_len(vecs);
                        let idx = b.bin(BinOp::Mod, pool[*v % pool.len()], len);
                        let elem = b.vec_get(vecs, idx);
                        b.write_field(HeaderField::IpDaddr, elem);
                    }
                }
                BranchOp::MapInsert(v) => {
                    if let Some(m) = map {
                        let key = b.cast(pool[*v % pool.len()], 16);
                        let val = pool[(*v + 1) % pool.len()];
                        b.map_put(m, vec![key], vec![val]);
                    }
                }
                BranchOp::Drop => {
                    if !dropped {
                        b.drop_pkt();
                        dropped = true;
                    }
                }
            }
        }
        if !dropped {
            b.send();
        }
        b.ret();
    };

    if let Some(m) = map {
        let key_src = *pool.last().unwrap();
        let key = b.cast(key_src, 16);
        let res = b.map_get(m, vec![key]);
        let null = b.is_null(res);
        let hit_bb = b.new_block();
        let miss_bb = b.new_block();
        b.branch(null, miss_bb, hit_bb);
        b.switch_to(hit_bb);
        let found = b.extract(res, 0);
        emit(&mut b, &pool, &recipe.hit, Some(found));
        b.switch_to(miss_bb);
        emit(&mut b, &pool, &recipe.miss, None);
    } else {
        emit(&mut b, &pool, &recipe.hit, None);
    }
    b.finish().expect("generator emits valid programs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The verifier's worklist liveness agrees bit-for-bit with the
    /// compiler's fixpoint liveness on every block of every random
    /// program — and so does the derived metadata metric.
    #[test]
    fn liveness_agrees_with_analysis(rec in recipe()) {
        let prog = build(&rec);
        let f = &prog.func;
        let reference = Liveness::compute(f);
        let ours = dataflow::solve(f, &dataflow::LiveValues);
        for b in 0..f.blocks.len() {
            prop_assert_eq!(&ours.entry[b], &reference.live_in[b], "live_in of b{}", b);
            prop_assert_eq!(&ours.exit[b], &reference.live_out[b], "live_out of b{}", b);
        }
        let everything = |_v: ValueId| true;
        prop_assert_eq!(
            dataflow::max_live_bits(f, &ours, &everything),
            reference.max_live_bits(f, &everything)
        );
    }

    /// The re-derived dependency graph has exactly the compiler's edges
    /// (as sets — the two builders may order them differently).
    #[test]
    fn dependency_edges_agree_with_analysis(rec in recipe()) {
        let prog = build(&rec);
        let reference = DepGraph::build(&prog);
        let ours = VDeps::build(&prog);
        let map_kind = |k: DepEdgeKind| match k {
            DepEdgeKind::Data => DepKind::Data,
            DepEdgeKind::ReverseData => DepKind::ReverseData,
            DepEdgeKind::Control => DepKind::Control,
        };
        for v in 0..prog.func.len() {
            let vid = ValueId(v as u32);
            let theirs: HashSet<(ValueId, DepKind)> =
                reference.deps_out(vid).iter().copied().collect();
            let mine: HashSet<(ValueId, DepKind)> = ours
                .edges_out(vid)
                .iter()
                .map(|(t, k)| (*t, map_kind(*k)))
                .collect();
            prop_assert_eq!(&mine, &theirs, "edges out of v{}", v);
            prop_assert_eq!(ours.in_loop(vid), reference.in_loop(vid), "in_loop of v{}", v);
            for t in 0..prog.func.len() {
                let tid = ValueId(t as u32);
                prop_assert_eq!(
                    ours.depends_transitively(vid, tid),
                    reference.depends_transitively(vid, tid),
                    "closure v{} -> v{}", v, t
                );
            }
        }
    }

    /// Whatever model the compiler accepts a random program for, the
    /// independent verifier must also accept the output.
    #[test]
    fn compiled_random_programs_verify_clean(rec in recipe(),
                                             depth in 2usize..20,
                                             mem_kb in 1usize..64,
                                             budget in 6usize..24) {
        let prog = build(&rec);
        let model = SwitchModel::tiny(depth, mem_kb << 13, 800, budget);
        let compiled = compile_with(&prog, &model, CompileOptions { verify: true }).unwrap();
        let report = compiled.verify.expect("verification requested");
        prop_assert!(report.is_clean(), "verifier errors: {:?}", report.errors);
    }
}

#[test]
fn middleboxes_verify_clean_under_tofino_and_tiny() {
    let mut programs = gallium::middleboxes::all_evaluated();
    programs.push(("MiniLB", gallium::middleboxes::minilb::minilb().prog));
    // A valid but cramped model: the partitioner must evict until the
    // program fits, and the verifier must agree with whatever is left.
    let tiny = SwitchModel::tiny(4, 1 << 16, 160, 8);
    for (name, prog) in programs {
        for model in [SwitchModel::tofino_like(), tiny] {
            let c = compile_with(&prog, &model, CompileOptions { verify: true })
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            let report = c.verify.expect("verification requested");
            assert!(
                report.is_clean(),
                "{name} under {model:?}: {:?}",
                report.errors
            );
        }
    }
    // The cramped model really does force rejections somewhere.
    let c = compile_with(
        &gallium::middleboxes::mazunat::mazunat().prog,
        &tiny,
        CompileOptions { verify: true },
    )
    .unwrap();
    assert!(
        c.staged.server_count() > 0,
        "tiny model forces statements off the switch"
    );
}
