//! Integration tests for the partition explain report (§4 reason labels)
//! and the end-to-end telemetry snapshot.

use gallium::middleboxes::mazunat::mazunat;
use gallium::mir::{Loc, Op, ValueId};
use gallium::partition::{ExplainReason, Partition};
use gallium::prelude::*;
use gallium::telemetry::names;

fn compiled_nat() -> (gallium::mir::Program, CompiledMiddlebox) {
    let nat = mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    (nat.prog, compiled)
}

#[test]
fn nat_header_writes_offload_and_map_mutations_stay_on_server() {
    let (prog, compiled) = compiled_nat();
    let report = &compiled.explain;
    assert_eq!(report.entries.len(), prog.func.len());

    let mut header_writes = 0;
    let mut map_mutations = 0;
    for i in 0..prog.func.len() {
        let v = ValueId(i as u32);
        let inst = prog.func.inst(v);
        let entry = report.entry(v);
        if matches!(inst.op, Op::WriteField { .. }) {
            // Header-only writes are exactly what the switch pipeline can
            // express: every one must land in a switch partition.
            assert!(
                matches!(entry.partition, Partition::Pre | Partition::Post),
                "header write {} landed on {:?}",
                entry.text,
                entry.partition
            );
            assert_eq!(entry.reason, ExplainReason::Offloaded);
            header_writes += 1;
        }
        if inst.op.writes().iter().any(|l| matches!(l, Loc::State(_)))
            && matches!(inst.op, Op::MapPut { .. } | Op::MapDel { .. })
        {
            // Mutating a replicated map is not P4-expressible (§4.2.1):
            // these instructions define MazuNAT's server slow path.
            assert_eq!(
                entry.partition,
                Partition::NonOffloaded,
                "map mutation {} escaped the server",
                entry.text
            );
            assert_ne!(entry.reason, ExplainReason::Offloaded);
            map_mutations += 1;
        }
    }
    assert!(header_writes >= 4, "MazuNAT rewrites addresses and ports");
    assert!(map_mutations >= 2, "MazuNAT installs both NAT mappings");

    // Summary counts agree with the per-entry labels.
    assert_eq!(
        report.offloaded_count() + report.server_count(),
        prog.func.len()
    );
    let reasons = report.reason_counts();
    let offloaded = reasons
        .iter()
        .find(|(r, _)| *r == ExplainReason::Offloaded)
        .map_or(0, |(_, n)| *n);
    assert_eq!(offloaded, report.offloaded_count());
}

#[test]
fn nat_explain_renders_text_and_json() {
    let (_, compiled) = compiled_nat();
    let text = compiled.explain.render_text();
    assert!(text.contains("mazunat"));
    assert!(text.contains("mapput nat_out"));
    assert!(text.contains("states:"));
    assert!(text.contains("switch-only"), "port_ctr placement missing");

    let json = compiled.explain.to_json();
    // Spot-check the structure without a JSON parser: every §4 reason key
    // that appears must be one of the documented labels.
    assert!(json.contains("\"program\": \"mazunat\""));
    assert!(json.contains("\"reason\": \"not_expressible\""));
    assert!(json.contains("\"partition\": \"server\""));
    assert!(json.contains("\"placement\": \"replicated\""));
}

#[test]
fn deployment_snapshot_round_trips_and_counts_traffic() {
    let (_, compiled) = compiled_nat();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let pkt = PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0001,
            daddr: 0x0808_0808,
            sport: 40_000,
            dport: 443,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::SYN),
        100,
    )
    .build(PortId(gallium::middleboxes::INTERNAL_PORT));
    d.inject(pkt).unwrap();

    let snap = d.telemetry_snapshot();
    assert_eq!(snap.counter(names::DEPLOY_INJECTED), Some(1));
    assert_eq!(snap.counter(names::SWITCH_RX_NETWORK), Some(1));
    assert_eq!(snap.counter(names::SERVER_SLOW_PATH_PKTS), Some(1));
    assert!(
        snap.counter(names::SERVER_SYNC_OPS_ISSUED).unwrap_or(0) > 0,
        "NAT insertion must sync state back to the switch"
    );

    // The JSON artifact round-trips losslessly.
    let parsed = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(parsed, snap);
}

#[test]
fn cache_evictions_surface_to_the_control_plane() {
    // A 2-entry cache under 5 distinct flows must evict FIFO-style, bump
    // the per-table eviction counter, and report the displaced keys.
    let lb = gallium::middleboxes::lb::load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &[(lb.conn, 2)],
    )
    .unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![1, 2, 3]).unwrap();
    })
    .unwrap();
    for i in 0..5u32 {
        let pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A00_0100 + i,
                daddr: 0x0A00_00FE,
                sport: 6000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            120,
        )
        .build(PortId(1));
        d.inject(pkt).unwrap();
    }
    let evicted = d.switch.drain_evictions();
    assert!(
        evicted.len() >= 3,
        "5 fills into 2 slots displace at least 3 keys, got {evicted:?}"
    );
    assert!(evicted.iter().all(|(table, _)| table == "conn"));
    let snap = d.telemetry_snapshot();
    assert_eq!(
        snap.counter(&names::table_metric("conn", "evictions")),
        Some(evicted.len() as u64)
    );
    // Draining is destructive: a second drain is empty.
    assert!(d.switch.drain_evictions().is_empty());
}
