//! Property tests over randomly generated middlebox programs — the
//! invariants of DESIGN.md:
//!
//! 1. functional equivalence of the deployed pipeline vs the reference
//!    interpreter, on random packet sequences;
//! 2. partition soundness (dependency order, P4 expressiveness, loops);
//! 3. resource safety (the generated P4 loads into the model it was
//!    compiled for);
//! 4. textual round-trips.

use gallium::analysis::DepGraph;
use gallium::mir::interp::PacketAction;
use gallium::mir::{BinOp, FuncBuilder, HeaderField, Interpreter, Program, StateStore, ValueId};
use gallium::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random-program generator: a classify/act middlebox in the style of the
// evaluated ones — header reads and ALU work, an optional annotated map
// with a hit/miss branch, optional register/vector state, per-branch
// header writes, state mutations, and a send/drop action.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PureOp {
    ReadField(usize),
    Const(u32),
    Bin(u8, usize, usize),
    Hash(usize, usize),
}

#[derive(Debug, Clone)]
enum BranchOp {
    WriteField(usize, usize),
    RegWrite(usize),
    VecPick(usize),
    MapInsert(usize),
    Drop,
}

#[derive(Debug, Clone)]
struct Recipe {
    map_annotated: bool,
    use_map: bool,
    use_reg: bool,
    use_vec: bool,
    pre: Vec<PureOp>,
    hit: Vec<BranchOp>,
    miss: Vec<BranchOp>,
}

const READ_FIELDS: [HeaderField; 5] = [
    HeaderField::IpSaddr,
    HeaderField::IpDaddr,
    HeaderField::SrcPort,
    HeaderField::DstPort,
    HeaderField::TcpSeq,
];
const WRITE_FIELDS: [HeaderField; 4] = [
    HeaderField::IpDaddr,
    HeaderField::DstPort,
    HeaderField::IpTtl,
    HeaderField::TcpAck,
];

fn pure_op() -> impl Strategy<Value = PureOp> {
    prop_oneof![
        (0..READ_FIELDS.len()).prop_map(PureOp::ReadField),
        any::<u32>().prop_map(PureOp::Const),
        (0u8..7, 0usize..8, 0usize..8).prop_map(|(o, a, b)| PureOp::Bin(o, a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| PureOp::Hash(a, b)),
    ]
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        (0..WRITE_FIELDS.len(), 0usize..8).prop_map(|(f, v)| BranchOp::WriteField(f, v)),
        (0usize..8).prop_map(BranchOp::RegWrite),
        (0usize..8).prop_map(BranchOp::VecPick),
        (0usize..8).prop_map(BranchOp::MapInsert),
        Just(BranchOp::Drop),
    ]
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(pure_op(), 1..6),
        proptest::collection::vec(branch_op(), 0..4),
        proptest::collection::vec(branch_op(), 0..4),
    )
        .prop_map(
            |(map_annotated, use_map, use_reg, use_vec, pre, hit, miss)| Recipe {
                map_annotated,
                use_map,
                use_reg,
                use_vec,
                pre,
                hit,
                miss,
            },
        )
}

/// Materialize a recipe into a validated program.
fn build(recipe: &Recipe) -> Program {
    let mut b = FuncBuilder::new("generated");
    let map = recipe.use_map.then(|| {
        b.decl_map(
            "m",
            vec![16],
            vec![32],
            recipe.map_annotated.then_some(4096),
        )
    });
    let reg = recipe.use_reg.then(|| b.decl_register("r", 32));
    let vec = recipe.use_vec.then(|| b.decl_vector("v", 32, 8));

    // Value pool of 32-bit values; indices wrap.
    let mut pool: Vec<ValueId> = Vec::new();
    let seed = b.read_field(HeaderField::IpSaddr);
    pool.push(seed);
    for op in &recipe.pre {
        let v = match op {
            PureOp::ReadField(i) => {
                let f = b.read_field(READ_FIELDS[*i % READ_FIELDS.len()]);
                b.cast(f, 32)
            }
            PureOp::Const(c) => b.cnst(u64::from(*c), 32),
            PureOp::Bin(o, ai, bi) => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Mul,
                    BinOp::Mod,
                ];
                let a = pool[*ai % pool.len()];
                let c = pool[*bi % pool.len()];
                let r = b.bin(ops[usize::from(*o) % ops.len()], a, c);
                b.cast(r, 32)
            }
            PureOp::Hash(ai, bi) => {
                let a = pool[*ai % pool.len()];
                let c = pool[*bi % pool.len()];
                b.hash(vec![a, c], 32)
            }
        };
        pool.push(v);
    }

    // One branch op emitter shared by both arms.
    let emit = |b: &mut FuncBuilder, pool: &[ValueId], ops: &[BranchOp], extra: Option<ValueId>| {
        let mut dropped = false;
        for op in ops {
            match op {
                BranchOp::WriteField(f, v) => {
                    let field = WRITE_FIELDS[*f % WRITE_FIELDS.len()];
                    let src = extra.unwrap_or(pool[*v % pool.len()]);
                    let val = b.cast(src, field.bits());
                    b.write_field(field, val);
                }
                BranchOp::RegWrite(v) => {
                    if let Some(r) = reg {
                        b.reg_write(r, pool[*v % pool.len()]);
                    }
                }
                BranchOp::VecPick(v) => {
                    if let Some(vecs) = vec {
                        let len = b.vec_len(vecs);
                        let idx = b.bin(BinOp::Mod, pool[*v % pool.len()], len);
                        let elem = b.vec_get(vecs, idx);
                        b.write_field(HeaderField::IpDaddr, elem);
                    }
                }
                BranchOp::MapInsert(v) => {
                    if let Some(m) = map {
                        let key = b.cast(pool[*v % pool.len()], 16);
                        let val = pool[(*v + 1) % pool.len()];
                        b.map_put(m, vec![key], vec![val]);
                    }
                }
                BranchOp::Drop => {
                    if !dropped {
                        b.drop_pkt();
                        dropped = true;
                    }
                }
            }
        }
        if !dropped {
            b.send();
        }
        b.ret();
    };

    if let Some(m) = map {
        let key_src = *pool.last().unwrap();
        let key = b.cast(key_src, 16);
        let res = b.map_get(m, vec![key]);
        let null = b.is_null(res);
        let hit_bb = b.new_block();
        let miss_bb = b.new_block();
        b.branch(null, miss_bb, hit_bb);
        b.switch_to(hit_bb);
        let found = b.extract(res, 0);
        emit(&mut b, &pool, &recipe.hit, Some(found));
        b.switch_to(miss_bb);
        emit(&mut b, &pool, &recipe.miss, None);
    } else {
        emit(&mut b, &pool, &recipe.hit, None);
    }
    b.finish().expect("generator emits valid programs")
}

fn configure(prog: &Program, store: &mut StateStore) {
    if let Some(v) = prog.state_by_name("v") {
        store.vec_set_all(v, vec![10, 20, 30, 40]).unwrap();
    }
    if let Some(m) = prog.state_by_name("m") {
        // A couple of pre-installed entries so hits occur.
        store.map_put(m, vec![0], vec![111]).unwrap();
        store.map_put(m, vec![7], vec![222]).unwrap();
    }
}

fn packet(saddr: u32, daddr: u32, sport: u16, flags: u8) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr,
            daddr,
            sport,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(flags),
        96,
    )
    .build(PortId(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: deployed pipeline ≡ reference interpreter.
    #[test]
    fn deployed_equals_reference(rec in recipe(),
                                 pkts in proptest::collection::vec(
                                     (any::<u32>(), any::<u32>(), any::<u16>(), any::<u8>()),
                                     1..12)) {
        let prog = build(&rec);
        let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
        let mut d = Deployment::new(&compiled, SwitchConfig::default(),
                                    CostModel::calibrated()).unwrap();
        d.configure(|s| configure(&prog, s)).unwrap();
        let mut ref_store = StateStore::new(&prog.states);
        configure(&prog, &mut ref_store);
        let interp = Interpreter::new(&prog);

        for (i, (sa, da, sp, fl)) in pkts.into_iter().enumerate() {
            let p = packet(sa, da, sp, fl);
            let mut rp = p.clone();
            let r = interp.run(&mut rp, &mut ref_store, 0).unwrap();
            let expected: Vec<_> = r.actions.iter().filter_map(|a| match a {
                PacketAction::Send(s) => Some(s.clone()),
                PacketAction::Drop => None,
            }).collect();
            let got = d.inject(p).unwrap();
            prop_assert_eq!(got.len(), expected.len(), "packet {}", i);
            for ((_, g), e) in got.iter().zip(&expected) {
                prop_assert_eq!(g.bytes(), e.bytes(), "packet {}", i);
            }
        }
        // Final state agrees on every map.
        for (i, st) in prog.states.iter().enumerate() {
            let sid = gallium::mir::StateId(i as u32);
            if matches!(st.kind, gallium::mir::StateKind::Map { .. }) {
                prop_assert_eq!(
                    d.server.store.map_entries(sid).unwrap(),
                    ref_store.map_entries(sid).unwrap()
                );
            }
        }
        prop_assert!(d.replicated_consistent());
    }

    /// Invariants 2+3: partition soundness and loader agreement, across
    /// random switch models.
    #[test]
    fn partition_sound_and_loadable(rec in recipe(),
                                    depth in 2usize..20,
                                    mem_kb in 1usize..64,
                                    budget in 6usize..24) {
        let prog = build(&rec);
        let model = SwitchModel::tiny(depth, mem_kb << 13, 800, budget);
        let compiled = compile(&prog, &model).unwrap();
        let staged = &compiled.staged;

        // Every statement in exactly one partition (by construction of the
        // Vec) and dependency edges flow forward.
        let dep = DepGraph::build(&prog);
        for v in 0..prog.func.len() {
            for (t, _) in dep.deps_out(ValueId(v as u32)) {
                prop_assert!(
                    staged.partition_of(ValueId(v as u32)) <= staged.partition_of(*t),
                    "edge v{} -> {} goes backwards", v, t
                );
            }
            // Offloaded statements are P4-expressible and never loops.
            let part = staged.partition_of(ValueId(v as u32));
            if part.on_switch() {
                prop_assert!(prog.func.inst(ValueId(v as u32)).op.p4_supported(&prog.states));
                prop_assert!(!dep.in_loop(ValueId(v as u32)));
            }
        }
        // Headers within budget; program loads.
        prop_assert!(staged.header_to_server.wire_bytes() <= budget
                     || staged.header_to_server.fields().is_empty());
        gallium::switchsim::load_check(&compiled.p4, &model).unwrap();
    }

    /// Invariant 5: textual round-trip.
    #[test]
    fn print_parse_roundtrip(rec in recipe()) {
        let prog = build(&rec);
        let text = gallium::mir::printer::print_program(&prog);
        let back = gallium::mir::parser::parse_program(&text).unwrap();
        prop_assert_eq!(prog, back);
    }
}
