//! The packet flight recorder, end to end: sampled per-hop traces across
//! switch → server → switch, per-stage latency histograms, and typed
//! drop attribution — driven through real deployments of the packaged
//! middleboxes.

use gallium::core::DeployError;
use gallium::middleboxes::{firewall, mazunat, INTERNAL_PORT};
use gallium::mir::{BinOp, HeaderField};
use gallium::prelude::*;
use gallium::telemetry::names;
use gallium::telemetry::trace::{EventKind, Hop};

fn nat_deployment() -> Deployment {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap()
}

fn nat_pkt(flags: u8) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0009,
            daddr: 0x0808_0404,
            sport: 50_123,
            dport: 443,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(flags),
        200,
    )
    .build(PortId(INTERNAL_PORT))
}

/// The acceptance scenario: a sampled MazuNAT slow-path packet's rendered
/// trace reconstructs the full switch→server→switch hop sequence.
#[test]
fn mazunat_slow_path_trace_reconstructs_journey() {
    let mut d = nat_deployment();
    d.enable_flight_recorder(1, 1024);
    let out = d.inject(nat_pkt(TcpFlags::SYN)).unwrap();
    assert_eq!(out.len(), 1, "NAT'd SYN leaves on one port");
    assert_eq!(d.stats.slow_path, 1, "first packet of a flow goes slow");

    let report = d.trace_report().expect("recorder installed");
    let t = report.trace(0).expect("first packet sampled as trace 0");

    // The hop journey, in order, with consecutive repeats collapsed:
    // pre-processing, boundary crossing, server partition, boundary
    // crossing back, post-processing.
    assert_eq!(
        t.hop_path(),
        vec![
            Hop::SwitchPre,
            Hop::Transfer,
            Hop::Server,
            Hop::Transfer,
            Hop::SwitchPost
        ],
        "hop sequence:\n{}",
        report.render_text()
    );

    // The journey's load-bearing events are all present.
    assert_eq!(t.records[0].event.kind, EventKind::Ingress);
    assert_eq!(t.records[0].detail, format!("port {INTERNAL_PORT}"));
    for kind in [
        EventKind::ToServer,
        EventKind::ServerRx,
        EventKind::ServerBlock,
        EventKind::ServerStateOp,
        EventKind::SyncOps,
        EventKind::Reinject,
        EventKind::Emit,
    ] {
        assert!(t.has(kind), "missing {kind:?}:\n{}", report.render_text());
    }
    // The NAT insert synced replicated state, so the packet was held for
    // output commit (§4.3.3) and the hold shows up in the trace.
    assert!(t.has(EventKind::HoldForCommit));
    // seq strictly increases within the trace (emission order is exact).
    for w in t.records.windows(2) {
        assert!(w[0].event.seq < w[1].event.seq);
    }

    // Rendered text names the journey and resolves tables/states.
    let text = report.render_text();
    assert!(text.contains("trace 0: switch.pre -> transfer -> server -> transfer -> switch.post"));
    assert!(text.contains("to_server"));
    assert!(
        text.contains("state "),
        "state ops resolve to names:\n{text}"
    );
    assert!(text.contains("table "), "lookups resolve to names:\n{text}");

    // And the JSON form carries the same structure.
    let json = report.to_json();
    assert!(json.contains("\"trace_id\": 0"));
    assert!(json.contains("\"kind\": \"server.rx\""));
    assert!(json.contains("\"hop\": \"switch.post\""));
}

#[test]
fn fast_path_trace_is_switch_only() {
    let mut d = nat_deployment();
    d.inject(nat_pkt(TcpFlags::SYN)).unwrap(); // warm: install mapping
    d.enable_flight_recorder(1, 1024);
    d.inject(nat_pkt(TcpFlags::ACK)).unwrap();
    assert_eq!(d.stats.fast_path, 1);

    let report = d.trace_report().unwrap();
    let t = report.trace(0).unwrap();
    assert_eq!(t.hop_path(), vec![Hop::SwitchPre], "never left the switch");
    assert!(t.has(EventKind::TableHit), "warm NAT lookup hits");
    assert!(t.has(EventKind::Emit));
    assert!(!t.has(EventKind::ToServer));
    assert!(!t.has(EventKind::ServerRx));
}

#[test]
fn sampling_period_and_stage_histograms() {
    let mut d = nat_deployment();
    d.inject(nat_pkt(TcpFlags::SYN)).unwrap(); // warm before recording
    let rec = d.enable_flight_recorder(4, 1024);
    for _ in 0..10 {
        d.inject(nat_pkt(TcpFlags::ACK)).unwrap();
    }
    // Deterministic 1-in-4: packets 0, 4, 8 of the recorded window.
    assert_eq!(rec.sampled(), 3);
    let report = d.trace_report().unwrap();
    let ids: Vec<u32> = report.traces.iter().map(|t| t.trace_id).collect();
    assert_eq!(ids, vec![0, 1, 2], "dense trace ids");

    let snap = d.telemetry_snapshot();
    assert_eq!(snap.counter(names::TRACE_SAMPLED), Some(3));
    assert_eq!(snap.counter(names::TRACE_RING_CAPACITY), Some(1024));
    assert!(snap.counter(names::TRACE_EVENTS).unwrap() > 0);
    // Stage histograms record sampled packets only: all ten were warm
    // fast path, three were sampled.
    let fast = snap.histogram(names::STAGE_FAST_PATH_NS).unwrap();
    assert_eq!(fast.count, 3);
    // Empty histograms are omitted from snapshots: nothing went slow.
    assert!(snap.histogram(names::STAGE_SERVER_NS).is_none());
}

#[test]
fn slow_path_stages_are_timed() {
    let mut d = nat_deployment();
    d.enable_flight_recorder(1, 1024);
    d.inject(nat_pkt(TcpFlags::SYN)).unwrap(); // slow, sampled
    d.inject(nat_pkt(TcpFlags::ACK)).unwrap(); // fast, sampled
    let snap = d.telemetry_snapshot();
    for (name, want) in [
        (names::STAGE_FAST_PATH_NS, 1),
        (names::STAGE_SWITCH_PRE_NS, 1),
        (names::STAGE_TRANSFER_NS, 1),
        (names::STAGE_SERVER_NS, 1),
        (names::STAGE_REINJECT_NS, 1),
    ] {
        assert_eq!(snap.histogram(name).map(|h| h.count), Some(want), "{name}");
    }
}

#[test]
fn recorder_disabled_is_invisible() {
    let mut d = nat_deployment();
    d.inject(nat_pkt(TcpFlags::SYN)).unwrap();
    d.inject(nat_pkt(TcpFlags::ACK)).unwrap();
    assert!(d.trace_report().is_none());
    let snap = d.telemetry_snapshot();
    assert_eq!(snap.counter(names::TRACE_SAMPLED), None);
    // Stage histograms record nothing without sampling (and empty
    // histograms are omitted from snapshots entirely).
    assert!(snap.histogram(names::STAGE_FAST_PATH_NS).is_none());

    // And a recorder can be turned off again.
    let rec = d.enable_flight_recorder(1, 1024);
    d.inject(nat_pkt(TcpFlags::ACK)).unwrap();
    assert_eq!(rec.sampled(), 1);
    d.disable_flight_recorder();
    d.inject(nat_pkt(TcpFlags::ACK)).unwrap();
    assert_eq!(rec.sampled(), 1, "no sampling after disable");
}

/// A switch-marked drop (firewall deny) lands in exactly one typed drop
/// counter and shows up in the sampled trace with its reason.
#[test]
fn marked_drop_attributed_and_traced() {
    let fw = firewall::firewall();
    let compiled = compile(&fw.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let allowed = FiveTuple {
        saddr: 0x0A00_0001,
        daddr: 0x0808_0808,
        sport: 5000,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    d.configure(|s| fw.allow(s, &allowed)).unwrap();
    d.enable_flight_recorder(1, 1024);

    let mut denied = allowed;
    denied.dport = 80;
    let pass = d
        .inject(
            PacketBuilder::tcp(allowed, TcpFlags(TcpFlags::ACK), 100).build(PortId(INTERNAL_PORT)),
        )
        .unwrap();
    assert_eq!(pass.len(), 1);
    let drop = d
        .inject(
            PacketBuilder::tcp(denied, TcpFlags(TcpFlags::ACK), 100).build(PortId(INTERNAL_PORT)),
        )
        .unwrap();
    assert!(drop.is_empty(), "denied flow emits nothing");

    let snap = d.telemetry_snapshot();
    let drops: Vec<u64> = [
        names::DROP_SWITCH_MARKED,
        names::DROP_SWITCH_MALFORMED_ENCAP,
        names::DROP_SERVER_PROGRAM,
        names::DROP_DEPLOY_SERVER_ERROR,
        names::DROP_DEPLOY_SYNC_REJECTED,
        names::DROP_DEPLOY_POST_LOOP,
    ]
    .iter()
    .map(|n| snap.counter(n).unwrap_or(0))
    .collect();
    assert_eq!(snap.counter(names::DROP_SWITCH_MARKED), Some(1));
    assert_eq!(
        drops.iter().sum::<u64>(),
        1,
        "exactly one reason: {drops:?}"
    );

    let report = d.trace_report().unwrap();
    let t = report.trace(1).unwrap();
    let dropped: Vec<_> = t
        .records
        .iter()
        .filter(|r| r.event.kind == EventKind::Drop)
        .collect();
    assert_eq!(dropped.len(), 1);
    assert_eq!(dropped[0].event.hop, Hop::SwitchPre);
    assert_eq!(dropped[0].detail, "reason marked");
    // The allowed packet's trace has no drop.
    assert!(!report.trace(0).unwrap().has(EventKind::Drop));
}

/// A control-plane sync rejection (table full during write-back) is
/// attributed to `drop.sync_rejected` and traced at the transfer hop.
#[test]
fn sync_rejected_drop_attributed_and_traced() {
    // MiniLB with a 2-entry replicated map: the third distinct flow's
    // write-back insert is rejected by the control plane.
    let mut b = FuncBuilder::new("minilb_tiny");
    let map = b.decl_map("map", vec![16], vec![32], Some(2));
    let backends = b.decl_vector("backends", 32, 16);
    let saddr = b.read_field(HeaderField::IpSaddr);
    let daddr = b.read_field(HeaderField::IpDaddr);
    let hash32 = b.bin(BinOp::Xor, saddr, daddr);
    let mask = b.cnst(0xFFFF, 32);
    let low = b.bin(BinOp::And, hash32, mask);
    let key = b.cast(low, 16);
    let res = b.map_get(map, vec![key]);
    let null = b.is_null(res);
    let hit = b.new_block();
    let miss = b.new_block();
    b.branch(null, miss, hit);
    b.switch_to(hit);
    let bk = b.extract(res, 0);
    b.write_field(HeaderField::IpDaddr, bk);
    b.send();
    b.ret();
    b.switch_to(miss);
    let len = b.vec_len(backends);
    let idx = b.bin(BinOp::Mod, hash32, len);
    let bk2 = b.vec_get(backends, idx);
    b.write_field(HeaderField::IpDaddr, bk2);
    b.map_put(map, vec![key], vec![bk2]);
    b.send();
    b.ret();
    let prog = b.finish().unwrap();

    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    d.configure(|s| {
        let backends = compiled.staged.prog.state_by_name("backends").unwrap();
        s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002])
            .unwrap();
    })
    .unwrap();
    d.enable_flight_recorder(1, 1024);

    let flow = |i: u32| {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A00_0001 + i,
                daddr: 0x0A00_00FE,
                sport: 40000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            120,
        )
        .build(PortId(1))
    };
    d.inject(flow(0)).unwrap();
    d.inject(flow(1)).unwrap();
    let err = d.inject(flow(2)).unwrap_err();
    assert!(matches!(err, DeployError::Control(_)), "got {err:?}");

    assert_eq!(d.stats.drop_sync_rejected, 1);
    assert_eq!(d.stats.drop_server_error, 0);
    assert_eq!(d.stats.drop_post_loop, 0);
    let snap = d.telemetry_snapshot();
    assert_eq!(snap.counter(names::DROP_DEPLOY_SYNC_REJECTED), Some(1));

    let report = d.trace_report().unwrap();
    let t = report.trace(2).unwrap();
    let dropped: Vec<_> = t
        .records
        .iter()
        .filter(|r| r.event.kind == EventKind::Drop)
        .collect();
    assert_eq!(dropped.len(), 1);
    assert_eq!(dropped[0].event.hop, Hop::Transfer);
    assert_eq!(dropped[0].detail, "reason sync_rejected");
}

/// Flight-recorder semantics under pressure: the ring keeps the newest
/// events and counts what it lost.
#[test]
fn ring_overwrites_keep_newest_traces() {
    let mut d = nat_deployment();
    let rec = d.enable_flight_recorder(1, 16); // minimum ring
    for i in 0..40u32 {
        let p = PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A00_0000 + i,
                daddr: 0x0808_0404,
                sport: 50_000,
                dport: 443,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            96,
        )
        .build(PortId(INTERNAL_PORT));
        d.inject(p).unwrap();
    }
    assert_eq!(rec.sampled(), 40);
    assert!(rec.overwritten() > 0);
    let report = d.trace_report().unwrap();
    // Whatever survives is the newest tail, and ids are still coherent.
    assert!(!report.traces.is_empty());
    let max_id = report.traces.iter().map(|t| t.trace_id).max().unwrap();
    assert_eq!(max_id, 39, "newest trace survives overwrites");
}

/// PR 8 regression: the fused `BuildKeyProbe` superinstruction (which
/// absorbs the key-building `SetMeta` run into the table probe) must emit
/// exactly one table hop event per *logical* lookup — not one per fused
/// micro-op, and not zero — and the fused plan's whole trace stream must
/// match the unfused statement-per-op lowering event for event.
#[test]
fn fused_probe_emits_one_table_event_per_lookup() {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut fused =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let unfused_cfg = SwitchConfig {
        plan_fusion: false,
        ..SwitchConfig::default()
    };
    let mut unfused = Deployment::new(&compiled, unfused_cfg, CostModel::calibrated()).unwrap();

    let mut streams = Vec::new();
    for d in [&mut fused, &mut unfused] {
        d.inject(nat_pkt(TcpFlags::SYN)).unwrap(); // warm: install mapping
        d.enable_flight_recorder(1, 1024);

        // Count data-plane lookups across the traced injection via the
        // per-table hit/miss counters.
        let table_names: Vec<String> = d
            .switch
            .program()
            .tables
            .iter()
            .map(|t| t.name.clone())
            .collect();
        let lookups = |d: &Deployment| -> u64 {
            table_names
                .iter()
                .map(|n| {
                    let s = &d.switch.table(n).unwrap().stats;
                    s.hits.get() + s.misses.get()
                })
                .sum()
        };
        let before = lookups(d);
        d.inject(nat_pkt(TcpFlags::ACK)).unwrap();
        let performed = lookups(d) - before;
        assert_eq!(d.stats.fast_path, 1, "warm ACK stays on the switch");

        let report = d.trace_report().unwrap();
        let t = report.trace(0).unwrap().clone();
        let table_events = t
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.event.kind,
                    EventKind::TableHit | EventKind::TableMiss | EventKind::CacheMiss
                )
            })
            .count() as u64;
        assert_eq!(
            table_events, performed,
            "one trace event per logical table lookup"
        );
        assert!(t.has(EventKind::TableHit), "warm NAT lookup hits");

        streams.push(
            t.records
                .iter()
                .map(|r| (r.event.hop, r.event.kind, r.event.arg))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        streams[0], streams[1],
        "fused and unfused trace streams diverge"
    );
}
