//! Targeted coverage for two paths no evaluated middlebox exercises:
//! φ-nodes lowered into P4 (copies in predecessor nodes) and the
//! Constraint-4 metadata-budget refinement.

use gallium::core::{compile, Deployment};
use gallium::mir::interp::read_header_field;
use gallium::mir::{BinOp, FuncBuilder, HeaderField, Interpreter, Program, StateStore, ValueId};
use gallium::prelude::*;

/// A stateless middlebox with a diamond and a φ: classify by dport, pick a
/// DSCP-ish TTL per class, write it after the merge.
fn phi_program() -> Program {
    let mut b = FuncBuilder::new("phi_mb");
    let dport = b.read_field(HeaderField::DstPort);
    let https = b.cnst(443, 16);
    let is_https = b.bin(BinOp::Eq, dport, https);
    let t = b.new_block();
    let e = b.new_block();
    let m = b.new_block();
    b.branch(is_https, t, e);
    b.switch_to(t);
    let hi = b.cnst(200, 8);
    b.jump(m);
    b.switch_to(e);
    let lo = b.cnst(100, 8);
    b.jump(m);
    b.switch_to(m);
    let ttl = b.phi(vec![(t, hi), (e, lo)]);
    b.write_field(HeaderField::IpTtl, ttl);
    b.update_checksum();
    b.send();
    b.ret();
    b.finish().unwrap()
}

fn pkt(dport: u16) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 1,
            daddr: 2,
            sport: 3,
            dport,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::ACK),
        100,
    )
    .build(PortId(1))
}

#[test]
fn phi_runs_entirely_on_the_switch() {
    let prog = phi_program();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    assert!(compiled.staged.fully_offloaded(), "φ is P4-expressible");
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let out = d.inject(pkt(443)).unwrap();
    assert_eq!(read_header_field(out[0].1.bytes(), HeaderField::IpTtl), 200);
    let out = d.inject(pkt(80)).unwrap();
    assert_eq!(read_header_field(out[0].1.bytes(), HeaderField::IpTtl), 100);
    assert_eq!(d.stats.slow_path, 0);
}

#[test]
fn phi_matches_reference_on_random_ports() {
    let prog = phi_program();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let mut store = StateStore::new(&prog.states);
    let interp = Interpreter::new(&prog);
    for dport in [0u16, 1, 80, 442, 443, 444, 65535] {
        let p = pkt(dport);
        let mut rp = p.clone();
        let r = interp.run(&mut rp, &mut store, 0).unwrap();
        let got = d.inject(p).unwrap();
        assert_eq!(got[0].1.bytes(), r.sent().unwrap().bytes(), "dport {dport}");
    }
}

/// A wide fan of independent long-lived values: with a tiny metadata
/// budget, Constraint 4 must push work to the server while preserving
/// behaviour.
fn wide_program(n: usize) -> Program {
    let mut b = FuncBuilder::new("wide");
    let mut vals = Vec::new();
    let s = b.read_field(HeaderField::IpSaddr);
    for i in 0..n {
        let c = b.cnst(0x1000 + i as u64, 32);
        let x = b.bin(BinOp::Xor, s, c);
        vals.push(x);
    }
    // All become live simultaneously here (a single reduction at the end).
    let mut acc = vals[0];
    for v in &vals[1..] {
        acc = b.bin(BinOp::Add, acc, *v);
    }
    b.write_field(HeaderField::IpDaddr, acc);
    b.send();
    b.ret();
    b.finish().unwrap()
}

#[test]
fn metadata_budget_forces_retreat_but_preserves_behaviour() {
    let prog = wide_program(12);
    let roomy = SwitchModel::tofino_like();
    let tight = SwitchModel::tiny(16, usize::MAX / 2, 96, 20); // 96 bits of scratchpad

    let full = compile(&prog, &roomy).unwrap();
    let squeezed = compile(&prog, &tight).unwrap();
    assert!(full.staged.fully_offloaded());
    assert!(
        squeezed.staged.offloaded_count() < full.staged.offloaded_count(),
        "tight metadata must shrink the offload ({} vs {})",
        squeezed.staged.offloaded_count(),
        full.staged.offloaded_count()
    );

    // Both deployments behave identically to the reference.
    let mut store = StateStore::new(&prog.states);
    let interp = Interpreter::new(&prog);
    for compiled in [&full, &squeezed] {
        let cfg = SwitchConfig {
            model: if std::ptr::eq(compiled, &squeezed) {
                tight
            } else {
                roomy
            },
            ..Default::default()
        };
        let mut d = Deployment::new(compiled, cfg, CostModel::calibrated()).unwrap();
        let p = pkt(5000);
        let mut rp = p.clone();
        let r = interp.run(&mut rp, &mut store, 0).unwrap();
        let got = d.inject(p).unwrap();
        assert_eq!(got[0].1.bytes(), r.sent().unwrap().bytes());
    }
}

#[test]
fn offloaded_phi_appears_as_predecessor_copies_in_p4() {
    let prog = phi_program();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    // The φ result's metadata field is assigned in *both* arm nodes.
    let phi_v = (0..prog.func.len() as u32)
        .map(ValueId)
        .find(|v| matches!(prog.func.inst(*v).op, gallium::mir::Op::Phi { .. }))
        .unwrap();
    let field = format!("v{}", phi_v.0);
    let assignments = compiled
        .p4
        .pre_nodes
        .iter()
        .flat_map(|n| n.stmts.iter())
        .filter(|s| matches!(s, gallium::p4::P4Stmt::SetMeta(name, _) if *name == field))
        .count();
    assert_eq!(assignments, 2, "one copy per incoming edge");
}
