//! Property tests for the packet substrate: header-view round-trips,
//! transfer-header bit packing, checksums, and five-tuple encodings.

use gallium::mir::interp::{read_header_field, write_header_field};
use gallium::mir::types::mask_to_width;
use gallium::mir::HeaderField;
use gallium::net::builder::extract_five_tuple;
use gallium::net::checksum::{checksum, incremental_update, ones_complement_sum};
use gallium::net::transfer::{TransferField, TransferHeaderLayout, TransferValues};
use gallium::prelude::*;
use proptest::prelude::*;

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(IpProtocol::Tcp), Just(IpProtocol::Udp)],
    )
        .prop_map(|(saddr, daddr, sport, dport, proto)| FiveTuple {
            saddr,
            daddr,
            sport,
            dport,
            proto,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn built_packets_parse_back(t in arb_tuple(), frame in 54usize..1500) {
        let pkt = match t.proto {
            IpProtocol::Udp => PacketBuilder::udp(t, frame.max(42)).build(PortId(0)),
            _ => PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), frame).build(PortId(0)),
        };
        prop_assert_eq!(extract_five_tuple(&pkt), Some(t));
    }

    #[test]
    fn header_field_write_read_roundtrip(t in arb_tuple(), val in any::<u64>()) {
        prop_assume!(t.proto == IpProtocol::Tcp);
        let mut pkt = PacketBuilder::tcp(t, TcpFlags::default(), 128).build(PortId(0));
        for field in HeaderField::ALL {
            if field == HeaderField::EthType {
                continue; // changing the ethertype re-types the packet
            }
            let v = mask_to_width(val, field.bits());
            write_header_field(pkt.bytes_mut(), field, v);
            prop_assert_eq!(read_header_field(pkt.bytes(), field), v);
        }
    }

    #[test]
    fn five_tuple_word_encoding_roundtrips(t in arb_tuple()) {
        prop_assert_eq!(FiveTuple::from_words(t.to_words()), t);
        prop_assert_eq!(t.reversed().reversed(), t);
    }

    #[test]
    fn transfer_layout_roundtrips(widths in proptest::collection::vec(1u16..=64, 1..8),
                                  values in proptest::collection::vec(any::<u64>(), 8),
                                  ethertype in any::<u16>(),
                                  flags in any::<u8>()) {
        let fields: Vec<TransferField> = widths
            .iter()
            .enumerate()
            .map(|(i, w)| TransferField::new(format!("f{i}"), *w))
            .collect();
        let layout = TransferHeaderLayout::new(fields.clone()).unwrap();
        let mut vals = TransferValues::default();
        for (i, f) in fields.iter().enumerate() {
            vals.set(&f.name, values[i % values.len()]);
        }
        let bytes = layout.encode(ethertype, flags, &vals);
        prop_assert_eq!(bytes.len(), layout.wire_bytes());
        let (et, fl, out) = layout.decode(&bytes).unwrap();
        prop_assert_eq!(et, ethertype);
        prop_assert_eq!(fl, flags);
        for (i, f) in fields.iter().enumerate() {
            let expect = mask_to_width(values[i % values.len()], f.bits.min(64) as u8);
            prop_assert_eq!(out.get(&f.name), Some(expect), "field {}", f.name);
        }
    }

    #[test]
    fn transfer_attach_detach_identity(t in arb_tuple(),
                                       widths in proptest::collection::vec(1u16..=32, 1..6),
                                       flags in 1u8..255) {
        prop_assume!(t.proto == IpProtocol::Tcp);
        let fields: Vec<TransferField> = widths
            .iter()
            .enumerate()
            .map(|(i, w)| TransferField::new(format!("f{i}"), *w))
            .collect();
        let layout = TransferHeaderLayout::new(fields).unwrap();
        let original = PacketBuilder::tcp(t, TcpFlags(TcpFlags::SYN), 200).build(PortId(3));
        let mut pkt = original.clone();
        layout.attach(&mut pkt, flags, &TransferValues::default()).unwrap();
        prop_assert_eq!(pkt.len(), original.len() + layout.wire_bytes());
        let (fl, _) = layout.detach(&mut pkt).unwrap();
        prop_assert_eq!(fl, flags);
        prop_assert_eq!(pkt.bytes(), original.bytes());
    }

    #[test]
    fn checksum_verifies_and_incremental_agrees(data in proptest::collection::vec(any::<u8>(), 2..128),
                                                at in 0usize..64,
                                                new_word in any::<u16>()) {
        // Filling in the checksum makes the buffer verify. (Only defined
        // for even-length buffers: an odd tail byte would re-pair with the
        // appended checksum's high byte.)
        let mut buf = data.clone();
        if buf.len() % 2 == 1 {
            buf.push(0);
        }
        let c = checksum(&buf);
        buf.extend_from_slice(&c.to_be_bytes());
        prop_assert_eq!(ones_complement_sum(&buf), 0xFFFF);

        // Incremental update equals full recomputation.
        let mut d = data.clone();
        if d.len() % 2 == 1 { d.push(0); }
        let at = (at * 2) % d.len();
        let before = checksum(&d);
        let old_word = u16::from_be_bytes([d[at], d[at + 1]]);
        d[at..at + 2].copy_from_slice(&new_word.to_be_bytes());
        prop_assert_eq!(checksum(&d), incremental_update(before, old_word, new_word));
    }
}
