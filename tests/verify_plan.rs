//! Translation-validator acceptance suite.
//!
//! Two halves:
//!
//! 1. **Miscompile injection**: build a synthetic program exercising
//!    every committed plan op shape, seed each of the eight realistic
//!    compiler bugs from [`gallium::switchsim::plan_testing`] into its
//!    committed plan, and assert [`check_plan`] rejects every one with
//!    the *expected* typed error — not merely "some" error.
//! 2. **Clean programs prove**: every packaged middlebox (plus MiniLB)
//!    passes symbolic validation fused and unfused, both through
//!    [`gallium::verify::verify_plan`] and through the load-time hook
//!    (`SwitchConfig::validate_plan`).

use gallium::mir::{BinOp, HeaderField, StateId};
use gallium::net::{TransferField, TransferHeaderLayout};
use gallium::p4::{
    BlockNode, MetaField, NodeNext, P4Expr, P4Program, P4Register, P4Stmt, P4Table, TableMatchKind,
};
use gallium::prelude::*;
use gallium::switchsim::plan_testing::{apply, Mutation, ALL_MUTATIONS};
use gallium::switchsim::{check_plan, ExecPlan, PlanOptions, SymCheckError};

fn bin(op: BinOp, a: P4Expr, b: P4Expr) -> P4Expr {
    P4Expr::Bin(op, Box::new(a), Box::new(b))
}

fn meta(name: &str) -> P4Expr {
    P4Expr::Meta(name.to_string())
}

/// A two-traversal program covering every committed op shape: metadata
/// arithmetic with masking, a hash, a fused two-key table probe,
/// register ops, a computed branch, jumps, and pinned transfer stores —
/// so every seeded mutation has a site to land on.
fn synthetic() -> P4Program {
    let mf = |name: &str, bits: u16| MetaField {
        name: name.to_string(),
        bits,
    };
    let set = |name: &str, e: P4Expr| P4Stmt::SetMeta(name.to_string(), e);
    let n0 = BlockNode {
        stmts: vec![
            set("a", P4Expr::Header(HeaderField::IpSaddr)),
            set(
                "k0",
                bin(
                    BinOp::Add,
                    P4Expr::Header(HeaderField::IpSaddr),
                    P4Expr::Const(7, 8),
                ),
            ),
            set(
                "k1",
                P4Expr::Cast(
                    Box::new(bin(
                        BinOp::Add,
                        P4Expr::Header(HeaderField::IpDaddr),
                        meta("a"),
                    )),
                    16,
                ),
            ),
            set(
                "sum",
                bin(BinOp::Add, P4Expr::Const(2, 8), P4Expr::Const(3, 8)),
            ),
            set(
                "hh",
                P4Expr::Hash(vec![meta("a"), P4Expr::Header(HeaderField::IpDaddr)], 16),
            ),
            P4Stmt::TableLookup {
                table: 0,
                keys: vec![meta("k0"), meta("k1")],
                hit_meta: "t_hit".to_string(),
                value_metas: vec!["t_v0".to_string()],
            },
            set("out", bin(BinOp::Add, meta("t_v0"), meta("a"))),
            set("cond", bin(BinOp::Eq, meta("t_hit"), P4Expr::Const(1, 1))),
        ],
        has_foreign_work: false,
        next: NodeNext::Cond {
            meta: "cond".to_string(),
            then_n: 1,
            else_n: 2,
        },
    };
    let n1 = BlockNode {
        stmts: vec![
            P4Stmt::RegFetchAdd {
                reg: 0,
                dst: "cnt_old".to_string(),
                delta: P4Expr::Const(1, 8),
            },
            P4Stmt::RegWrite {
                reg: 0,
                src: meta("out"),
            },
            P4Stmt::SetHeader(
                HeaderField::IpTtl,
                bin(BinOp::Xor, meta("t_v0"), meta("hh")),
            ),
            P4Stmt::UpdateChecksum,
        ],
        has_foreign_work: false,
        next: NodeNext::Jump(3),
    };
    let n2 = BlockNode {
        stmts: vec![P4Stmt::MarkDrop],
        has_foreign_work: false,
        next: NodeNext::Jump(3),
    };
    let n3 = BlockNode {
        stmts: vec![
            P4Stmt::RegRead {
                reg: 0,
                dst: "rr".to_string(),
            },
            P4Stmt::EmitCopy,
        ],
        has_foreign_work: false,
        next: NodeNext::End,
    };
    let header_to_server = TransferHeaderLayout::new(vec![
        TransferField::new("sum".to_string(), 64),
        TransferField::new("out".to_string(), 64),
    ])
    .expect("layout");
    let header_to_switch = TransferHeaderLayout::new(vec![]).expect("layout");
    P4Program {
        name: "__verify_plan_synthetic".to_string(),
        metadata: vec![
            mf("a", 16),
            mf("k0", 32),
            mf("k1", 32),
            mf("sum", 64),
            mf("hh", 16),
            mf("t_hit", 1),
            mf("t_v0", 32),
            mf("out", 64),
            mf("cond", 1),
            mf("cnt_old", 64),
            mf("rr", 64),
        ],
        tables: vec![P4Table {
            name: "t".to_string(),
            state: StateId(0),
            key_widths: vec![32, 32],
            value_widths: vec![32],
            size: 16,
            match_kind: TableMatchKind::Exact,
        }],
        registers: vec![P4Register {
            name: "r".to_string(),
            state: StateId(1),
            width: 32,
        }],
        pre_nodes: vec![n0, n1, n2, n3],
        post_nodes: vec![BlockNode {
            stmts: vec![],
            has_foreign_work: false,
            next: NodeNext::End,
        }],
        entry: 0,
        header_to_server,
        header_to_switch,
        to_server_fields: vec!["sum".to_string(), "out".to_string()],
    }
}

/// Which error family a seeded miscompile must be reported as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Effect,
    Store,
    MissingStore,
    Exit,
    /// Structurally unsound plan sections (e.g. a stale prefetch
    /// projection) are rejected as `Malformed` before any semantic
    /// comparison can be phrased.
    Malformed,
}

fn family_of(e: &SymCheckError) -> Option<Family> {
    match e {
        SymCheckError::EffectMismatch { .. } | SymCheckError::EffectCountMismatch { .. } => {
            Some(Family::Effect)
        }
        SymCheckError::StoreMismatch { .. } | SymCheckError::SpuriousStore { .. } => {
            Some(Family::Store)
        }
        SymCheckError::MissingStore { .. } => Some(Family::MissingStore),
        SymCheckError::ExitMismatch { .. } => Some(Family::Exit),
        SymCheckError::Malformed { .. } => Some(Family::Malformed),
        _ => None,
    }
}

fn expected_family(m: Mutation) -> Family {
    match m {
        // Corrupted computation feeding an effect (probe key, register
        // op, header write) surfaces as the first diverging effect — the
        // synthetic program's first binary op and first mask both feed
        // the fused table probe's key words...
        Mutation::SwapBinOp | Mutation::DropMask | Mutation::ReorderKeyWord => Family::Effect,
        // ...while corrupted pure dataflow surfaces at the store that
        // publishes it.
        Mutation::StaleCseReuse | Mutation::WrongFoldConstant => Family::Store,
        Mutation::DeadStorePinned => Family::MissingStore,
        Mutation::OffByOneJump | Mutation::WrongBranchReg => Family::Exit,
        // A stale pipelining projection fails the re-derivation check.
        Mutation::StalePrefetchProbe => Family::Malformed,
    }
}

#[test]
fn every_seeded_miscompile_is_rejected_with_the_expected_error() {
    let prog = synthetic();
    for m in ALL_MUTATIONS {
        let mut plan = ExecPlan::build(&prog).expect("synthetic program builds");
        assert!(apply(&mut plan, m), "mutation {m:?} found no site");
        let err = check_plan(&prog, &plan).expect_err(&format!("mutation {m:?} must be rejected"));
        let got = family_of(&err);
        assert_eq!(
            got,
            Some(expected_family(m)),
            "mutation {m:?} rejected with unexpected error: {err}"
        );
    }
}

#[test]
fn clean_synthetic_program_proves_fused_and_unfused() {
    let prog = synthetic();
    for fuse in [true, false] {
        let plan = ExecPlan::build_with(&prog, PlanOptions { fuse }).expect("builds");
        let proof = check_plan(&prog, &plan).expect("clean plan proves");
        assert!(proof.nodes >= 5, "all pre + post nodes checked");
        assert!(proof.terms > 0, "proof materialized symbolic terms");
    }
}

#[test]
fn all_packaged_middleboxes_prove_clean() {
    let model = SwitchModel::tofino_like();
    let mut programs = gallium::middleboxes::all_evaluated();
    programs.push(("MiniLB", gallium::middleboxes::minilb::minilb().prog));
    for (name, prog) in &programs {
        let compiled = compile(prog, &model).expect("compiles");
        let report = gallium::verify::verify_plan(&compiled.p4);
        assert!(
            report.is_clean(),
            "{name}: symbolic validation failed:\n{}",
            report.render_text()
        );
        assert!(report.proved_nodes > 0, "{name}: no nodes proved");
    }
}

#[test]
fn load_time_hook_accepts_clean_plans() {
    let model = SwitchModel::tofino_like();
    let nat = gallium::middleboxes::mazunat::mazunat();
    let compiled = compile(&nat.prog, &model).expect("compiles");
    for fusion in [true, false] {
        let cfg = SwitchConfig {
            plan_fusion: fusion,
            validate_plan: true,
            ..SwitchConfig::default()
        };
        Deployment::new(&compiled, cfg, CostModel::calibrated()).expect("validated load succeeds");
    }
}
