//! End-to-end coverage of the §7 LPM extension: the prefix router
//! compiles to a fully offloaded program with a native `lpm` match-kind
//! table, the routes are pushed through the control plane, and the
//! deployed pipeline matches the reference interpreter on mixed traffic.

use gallium::core::{compile, Deployment};
use gallium::middleboxes::router::prefix_router;
use gallium::mir::interp::read_header_field;
use gallium::mir::{HeaderField, Interpreter, StateStore};
use gallium::net::ipv4::parse_addr;
use gallium::p4::TableMatchKind;
use gallium::prelude::*;

fn pkt(daddr: u32) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0001,
            daddr,
            sport: 7,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::ACK),
        100,
    )
    .build(PortId(1))
}

#[test]
fn router_fully_offloaded_with_lpm_table() {
    let r = prefix_router();
    let compiled = compile(&r.prog, &SwitchModel::tofino_like()).unwrap();
    assert!(compiled.staged.fully_offloaded(), "LPM lookup runs in P4");
    assert_eq!(compiled.p4.tables.len(), 1);
    assert_eq!(compiled.p4.tables[0].match_kind, TableMatchKind::Lpm);
    assert!(compiled.p4_source.contains("lpm /* bit<32> */"));
}

#[test]
fn deployed_router_matches_reference() {
    let r = prefix_router();
    let compiled = compile(&r.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let r2 = r.clone();
    d.configure(move |s| {
        r2.add_route(s, parse_addr("10.0.0.0").unwrap(), 8, 0xAA);
        r2.add_route(s, parse_addr("10.1.0.0").unwrap(), 16, 0xBB);
        r2.add_route(s, parse_addr("10.1.2.0").unwrap(), 24, 0xCC);
    })
    .unwrap();

    let mut ref_store = StateStore::new(&r.prog.states);
    r.add_route(&mut ref_store, parse_addr("10.0.0.0").unwrap(), 8, 0xAA);
    r.add_route(&mut ref_store, parse_addr("10.1.0.0").unwrap(), 16, 0xBB);
    r.add_route(&mut ref_store, parse_addr("10.1.2.0").unwrap(), 24, 0xCC);
    let interp = Interpreter::new(&r.prog);

    for dst in [
        "10.9.9.9",
        "10.1.9.9",
        "10.1.2.3",
        "10.1.2.255",
        "192.168.1.1", // no route: dropped
        "10.255.0.1",
    ] {
        let p = pkt(parse_addr(dst).unwrap());
        let mut rp = p.clone();
        let ref_out = interp.run(&mut rp, &mut ref_store, 0).unwrap();
        let got = d.inject(p).unwrap();
        match ref_out.sent() {
            Some(expected) => {
                assert_eq!(got.len(), 1, "dst {dst}");
                assert_eq!(got[0].1.bytes(), expected.bytes(), "dst {dst}");
            }
            None => assert!(got.is_empty(), "dst {dst} should drop"),
        }
    }
    // Everything ran in the data plane.
    assert_eq!(d.stats.slow_path, 0);
    assert_eq!(d.fast_path_fraction(), 1.0);
}

#[test]
fn longest_prefix_resolution_on_switch() {
    let r = prefix_router();
    let compiled = compile(&r.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let r2 = r.clone();
    d.configure(move |s| {
        r2.add_route(s, 0, 0, 0x11); // default route
        r2.add_route(s, parse_addr("10.1.0.0").unwrap(), 16, 0x22);
    })
    .unwrap();
    let out = d.inject(pkt(parse_addr("10.1.5.5").unwrap())).unwrap();
    assert_eq!(
        read_header_field(out[0].1.bytes(), HeaderField::EthDst),
        0x22,
        "/16 beats the default route"
    );
    let out = d.inject(pkt(parse_addr("4.4.4.4").unwrap())).unwrap();
    assert_eq!(
        read_header_field(out[0].1.bytes(), HeaderField::EthDst),
        0x11,
        "default route catches the rest"
    );
}

#[test]
fn lpm_textual_roundtrip() {
    let r = prefix_router();
    let text = gallium::mir::printer::print_program(&r.prog);
    assert!(text.contains("state routes : lpm<u32 -> u48> max 4096"));
    assert!(text.contains("lpmget routes"));
    // The parser numbers values by textual appearance, so the round trip
    // is identity up to α-renaming; one normalization round reaches the
    // canonical form, which is then a parse/print fixpoint.
    let back = gallium::mir::parser::parse_program(&text).unwrap();
    let canonical = gallium::mir::printer::print_program(&back);
    let again = gallium::mir::parser::parse_program(&canonical).unwrap();
    assert_eq!(gallium::mir::printer::print_program(&again), canonical);
    // And the renamed program still behaves identically (same block
    // structure, same instruction count).
    assert_eq!(back.func.len(), r.prog.func.len());
    assert_eq!(back.func.blocks.len(), r.prog.func.blocks.len());
}

#[test]
fn unannotated_lpm_stays_on_server() {
    use gallium::mir::FuncBuilder;
    let mut b = FuncBuilder::new("t");
    let rib = b.decl_lpm("rib", 32, vec![8], None); // no size annotation
    let d = b.read_field(HeaderField::IpDaddr);
    let hit = b.lpm_get(rib, d);
    let null = b.is_null(hit);
    let t = b.new_block();
    let e = b.new_block();
    b.branch(null, t, e);
    b.switch_to(t);
    b.drop_pkt();
    b.ret();
    b.switch_to(e);
    b.send();
    b.ret();
    let prog = b.finish().unwrap();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    assert!(!compiled.staged.fully_offloaded());
    assert!(compiled.p4.tables.is_empty());
}
