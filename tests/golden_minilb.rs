//! Golden-structure checks for the MiniLB compilation — the paper's worked
//! example, pinned end to end: Figure 4's partition, Figure 5's transfer
//! header, Figure 6's P4 objects, and the §4.3.1 ingress dispatch.

use gallium::core::compile;
use gallium::middleboxes::minilb::minilb;
use gallium::p4::{NodeNext, P4Stmt};
use gallium::prelude::*;

#[test]
fn figure5_transfer_header_fields() {
    let lb = minilb();
    let c = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    // Switch → server: hash32 (v2, 32 bits), the map key (v5, 16 bits),
    // and the miss bit (v7, 1 bit). Paper Figure 5a carries the branch bit
    // and hash32; our compiler also ships the key the server's insert
    // consumes explicitly.
    let names: Vec<(&str, u16)> = c
        .staged
        .header_to_server
        .fields()
        .iter()
        .map(|f| (f.name.as_str(), f.bits))
        .collect();
    assert_eq!(names, vec![("v2", 32), ("v5", 16), ("v7", 1)]);
    assert_eq!(c.staged.header_to_server.wire_bytes(), 3 + 7); // preamble + ceil(49/8)

    // Server → switch: the chosen backend (v13, 32 bits) and the branch
    // bit (v7) — Figure 5b exactly.
    let names: Vec<(&str, u16)> = c
        .staged
        .header_to_switch
        .fields()
        .iter()
        .map(|f| (f.name.as_str(), f.bits))
        .collect();
    assert_eq!(names, vec![("v7", 1), ("v13", 32)]);
}

#[test]
fn figure6_p4_objects() {
    let lb = minilb();
    let c = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    // Map → match-action table (sized by the annotation); temporaries →
    // metadata fields; no registers in MiniLB.
    assert_eq!(c.p4.tables.len(), 1);
    assert_eq!(c.p4.tables[0].name, "map");
    assert_eq!(c.p4.tables[0].size, 65536);
    assert!(c.p4.registers.is_empty());
    let meta: Vec<&str> = c.p4.metadata.iter().map(|m| m.name.as_str()).collect();
    for required in ["v2", "v5", "v6.hit", "v6.0", "v7", "v8", "v13"] {
        assert!(meta.contains(&required), "metadata field {required}");
    }

    // Pre entry node: reads, hash computation, lookup, null check — then a
    // branch on the null bit.
    let entry = &c.p4.pre_nodes[c.p4.entry];
    assert!(matches!(
        &entry.next,
        NodeNext::Cond { meta, .. } if meta == "v7"
    ));
    assert!(entry
        .stmts
        .iter()
        .any(|s| matches!(s, P4Stmt::TableLookup { hit_meta, .. } if hit_meta == "v6.hit")));

    // The listing carries the §4.3.1 ingress-interface dispatch and the
    // write-back machinery.
    assert!(c.p4_source.contains("ingress_port == SERVER_PORT"));
    assert!(c.p4_source.contains("writeback_active"));
    assert!(c.p4_source.contains("table map_wb"));
}

#[test]
fn server_listing_is_the_miss_arm_only() {
    let lb = minilb();
    let c = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let s = &c.server_source;
    // The server keeps: backends vector, idx = hash % size, backends[idx],
    // and the replicated insert.
    assert!(s.contains("Vector<uint32_t> backends;"));
    assert!(s.contains("% "), "the mod survives on the server");
    assert!(s.contains("sync.map.insert"));
    // It does NOT contain the offloaded hash computation or header writes.
    assert!(!s.contains('^'));
    assert!(!s.contains("ip_hdr->daddr ="));
}
