//! The operator pattern for the load balancer's idle-timeout GC (§6.1):
//! the sweep runs out-of-band on the server's authoritative state, and the
//! resulting deletions are pushed to the switch through the control plane
//! so the replicated connection table stays consistent.

use gallium::core::{compile, Deployment};
use gallium::middleboxes::lb::{load_balancer, IDLE_TIMEOUT_NS};
use gallium::p4::ControlPlaneOp;
use gallium::prelude::*;
use gallium::switchsim::ControlPlane;

fn tcp(sport: u16, flags: u8) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0001,
            daddr: 0x0A00_00FE,
            sport,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(flags),
        120,
    )
    .build(PortId(1))
}

#[test]
fn idle_sweep_propagates_to_the_switch() {
    let lb = load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![1, 2]).unwrap();
    })
    .unwrap();

    // Two connections: one at t=0, one at t≈timeout.
    d.set_time_ns(0);
    d.inject(tcp(1000, TcpFlags::SYN)).unwrap();
    d.set_time_ns(IDLE_TIMEOUT_NS);
    d.inject(tcp(2000, TcpFlags::SYN)).unwrap();
    assert_eq!(d.switch.table("conn").unwrap().len(), 2);

    // Operator sweep just past the first flow's deadline: the helper
    // removes from the authoritative store and reports the keys; pushing
    // the deletions through the control plane is the operator's (or the
    // runtime's timer thread's) job.
    let removed = lb.gc_expired(d.server.store_mut(), IDLE_TIMEOUT_NS + 1_000);
    assert_eq!(removed.len(), 1);
    let mut total_latency = 0u64;
    for key in removed {
        total_latency += d
            .switch
            .control(&ControlPlaneOp::TableDelete {
                table: "conn".into(),
                key,
            })
            .unwrap();
    }
    assert!(total_latency >= 131_300, "Table 3 delete latency applies");

    // The switch mirrors the post-sweep state; the survivor still works.
    assert_eq!(d.switch.table("conn").unwrap().len(), 1);
    assert!(d.replicated_consistent());
    let before = d.stats.slow_path;
    d.inject(tcp(2000, TcpFlags::ACK)).unwrap();
    assert_eq!(d.stats.slow_path, before, "survivor stays on the fast path");

    // The expired flow's next packet re-enters as a new connection.
    d.inject(tcp(1000, TcpFlags::ACK)).unwrap();
    assert_eq!(d.stats.slow_path, before + 1, "expired flow reassigned");
    assert_eq!(d.switch.table("conn").unwrap().len(), 2);
    assert!(d.replicated_consistent());
}
