//! Workspace-level end-to-end tests exercising the public facade: author →
//! compile → deploy → traffic, across middleboxes and switch models.

use gallium::middleboxes::{firewall, lb, mazunat, minilb, proxy};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::mir::interp::read_header_field;
use gallium::mir::HeaderField;
use gallium::prelude::*;

fn tcp(t: FiveTuple, flags: u8, ingress: u16) -> Packet {
    PacketBuilder::tcp(t, TcpFlags(flags), 128).build(PortId(ingress))
}

#[test]
fn all_five_compile_and_load_for_tofino() {
    for (name, prog) in gallium::middleboxes::all_evaluated() {
        let compiled =
            compile(&prog, &SwitchModel::tofino_like()).unwrap_or_else(|e| panic!("{name}: {e}"));
        // The generated program must load into a switch built with the
        // same model (invariant 3).
        gallium::switchsim::load_check(&compiled.p4, &SwitchModel::tofino_like())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // And the artifacts must be non-trivial.
        assert!(compiled.p4_loc() > 20, "{name}");
        assert!(compiled.server_loc() > 5, "{name}");
    }
}

#[test]
fn all_five_compile_under_squeezed_models() {
    // Whatever the model, partitioning must succeed (the server can always
    // absorb everything) and the output must load.
    let models = [
        SwitchModel::tiny(4, 1 << 20, 400, 12),
        SwitchModel::tiny(2, 1 << 10, 100, 6),
        SwitchModel::tiny(16, usize::MAX / 2, 800, 20),
    ];
    for model in models {
        for (name, prog) in gallium::middleboxes::all_evaluated() {
            let compiled =
                compile(&prog, &model).unwrap_or_else(|e| panic!("{name} @ {model:?}: {e}"));
            gallium::switchsim::load_check(&compiled.p4, &model)
                .unwrap_or_else(|e| panic!("{name} @ {model:?}: {e}"));
        }
    }
}

#[test]
fn nat_full_conversation() {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();

    let t = FiveTuple {
        saddr: 0x0A00_0009,
        daddr: 0x0808_0404,
        sport: 50_123,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    // Handshake out.
    let syn_out = d.inject(tcp(t, TcpFlags::SYN, INTERNAL_PORT)).unwrap();
    let ext_port = read_header_field(syn_out[0].1.bytes(), HeaderField::SrcPort) as u16;
    // Handshake back.
    let reply = FiveTuple {
        saddr: 0x0808_0404,
        daddr: mazunat::NAT_EXTERNAL_IP,
        sport: 443,
        dport: ext_port,
        proto: IpProtocol::Tcp,
    };
    let synack_out = d
        .inject(tcp(reply, TcpFlags::SYN | TcpFlags::ACK, EXTERNAL_PORT))
        .unwrap();
    assert_eq!(
        read_header_field(synack_out[0].1.bytes(), HeaderField::IpDaddr),
        0x0A00_0009
    );
    // Steady-state data: both directions fast.
    let before = d.stats.slow_path;
    for _ in 0..20 {
        d.inject(tcp(t, TcpFlags::ACK, INTERNAL_PORT)).unwrap();
        d.inject(tcp(reply, TcpFlags::ACK, EXTERNAL_PORT)).unwrap();
    }
    assert_eq!(d.stats.slow_path, before, "steady state is switch-only");
    assert!(d.replicated_consistent());
}

#[test]
fn lb_gc_pushes_deletions_to_switch() {
    let lb = lb::load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![1, 2, 3]).unwrap();
    })
    .unwrap();
    let t = FiveTuple {
        saddr: 7,
        daddr: 8,
        sport: 9,
        dport: 80,
        proto: IpProtocol::Tcp,
    };
    d.inject(tcp(t, TcpFlags::SYN, 1)).unwrap();
    assert_eq!(d.switch.table("conn").unwrap().len(), 1);
    d.inject(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 1)).unwrap();
    assert_eq!(d.switch.table("conn").unwrap().len(), 0, "GC replicated");
    assert!(d.replicated_consistent());
}

#[test]
fn firewall_and_proxy_never_touch_server() {
    let fw = firewall::firewall();
    let allowed = FiveTuple {
        saddr: 1,
        daddr: 2,
        sport: 3,
        dport: 4,
        proto: IpProtocol::Tcp,
    };
    let compiled = compile(&fw.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let fw2 = fw.clone();
    d.configure(move |s| fw2.allow(s, &allowed)).unwrap();
    for _ in 0..50 {
        d.inject(tcp(allowed, TcpFlags::ACK, INTERNAL_PORT))
            .unwrap();
        d.inject(tcp(allowed.reversed(), TcpFlags::ACK, EXTERNAL_PORT))
            .unwrap();
    }
    assert_eq!(d.stats.slow_path, 0);

    let px = proxy::proxy(0xDEAD_BEEF, 8080);
    let compiled = compile(&px.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let px2 = px.clone();
    d.configure(move |s| px2.intercept(s, 80)).unwrap();
    for dport in [80u16, 81, 443] {
        let t = FiveTuple {
            saddr: 5,
            daddr: 6,
            sport: 7,
            dport,
            proto: IpProtocol::Tcp,
        };
        d.inject(tcp(t, TcpFlags::SYN, 1)).unwrap();
    }
    assert_eq!(d.stats.slow_path, 0);
}

#[test]
fn routes_steer_emissions() {
    let lb = minilb::minilb();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![0xC0A8_0001]).unwrap();
    })
    .unwrap();
    d.switch.add_route(0xC0A8_0001, PortId(9));
    let t = FiveTuple {
        saddr: 1,
        daddr: 2,
        sport: 3,
        dport: 4,
        proto: IpProtocol::Tcp,
    };
    d.inject(tcp(t, TcpFlags::SYN, 1)).unwrap();
    let out = d.inject(tcp(t, TcpFlags::ACK, 1)).unwrap();
    assert_eq!(out[0].0, PortId(9), "fast-path emission follows the route");
}

#[test]
fn facade_doc_example_works() {
    // Mirror of the crate-level doc example, kept as a real test.
    let lb = minilb::minilb();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    assert!(compiled.p4_source.contains("table map"));
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    d.configure(|store| lb.configure(store, &[0xC0A8_0001, 0xC0A8_0002]))
        .unwrap();
    let pkt = PacketBuilder::tcp(
        FiveTuple {
            saddr: 1,
            daddr: 2,
            sport: 3,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::SYN),
        100,
    )
    .build(PortId(1));
    let out = d.inject(pkt).unwrap();
    assert_eq!(out.len(), 1);
}
