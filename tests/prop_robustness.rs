//! Robustness properties: the textual parser never panics on corrupted
//! input, the canonical form is a parse/print fixpoint, the switch ALU and
//! the reference interpreter agree operator-by-operator, and malformed
//! wire input never crashes the data plane.

use gallium::mir::types::mask_to_width;
use gallium::mir::{parser::parse_program, printer::print_program, BinOp};
use gallium::prelude::*;
use proptest::prelude::*;

const VALID: &str = r#"
program sample {
  state map : map<u16 -> u32> max 65536
  state backends : vec<u32> cap 16
  state rib : lpm<u32 -> u48> max 128
  state ctr : reg<u16>
  b0:
    v0 = readfield ip.saddr
    v1 = readfield ip.daddr
    v2 = xor v0, v1
    v3 = const 0xFFFF : u32
    v4 = and v2, v3
    v5 = cast v4 : u16
    v6 = mapget map, [v5]
    v7 = isnull v6
    br v7, b2, b1
  b1:
    v8 = extract v6, 0
    writefield ip.daddr, v8
    v10 = lpmget rib, v8
    v11 = isnull v10
    send
    ret
  b2:
    v13 = veclen backends
    v14 = mod v2, v13
    v15 = vecget backends, v14
    v16 = const 1 : u16
    v17 = regfetchadd ctr, v16
    writefield ip.daddr, v15
    mapput map, [v5], [v15]
    v20 = payloadmatch "GET \x00"
    send
    ret
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Randomly corrupting a valid program must produce a clean error or a
    /// valid parse — never a panic (the harness would abort on panic).
    #[test]
    fn parser_never_panics_on_corruption(
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8)
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        for (pos, byte) in edits {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_program(&text); // Ok or Err are both fine
        }
    }

    /// Deleting random lines must also never panic.
    #[test]
    fn parser_never_panics_on_deletion(drop_lines in proptest::collection::vec(any::<usize>(), 1..6)) {
        let lines: Vec<&str> = VALID.lines().collect();
        let dropped: std::collections::HashSet<usize> =
            drop_lines.iter().map(|i| i % lines.len()).collect();
        let text: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped.contains(i))
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = parse_program(&text);
    }

    /// The switch's expression evaluator and the interpreter share one
    /// `BinOp::eval`; this pins the semantics both rely on: masking,
    /// wrapping, shift saturation, division-by-zero-is-zero.
    #[test]
    fn alu_semantics_pinned(a in any::<u64>(), b in any::<u64>(), width in 1u8..=64) {
        for op in [
            BinOp::Add, BinOp::Sub, BinOp::And, BinOp::Or, BinOp::Xor,
            BinOp::Shl, BinOp::Shr, BinOp::Eq, BinOp::Ne, BinOp::Lt,
            BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Mul, BinOp::Div, BinOp::Mod,
        ] {
            let am = mask_to_width(a, width);
            let bm = mask_to_width(b, width);
            let r = op.eval(am, bm, width);
            if op.is_comparison() {
                prop_assert!(r <= 1, "{op:?} returned non-boolean {r}");
            } else if !matches!(op, BinOp::Shr | BinOp::Div | BinOp::Mod) {
                prop_assert_eq!(r, mask_to_width(r, width), "{:?} escaped width", op);
            }
            // Algebraic anchors.
            match op {
                BinOp::Xor => prop_assert_eq!(op.eval(am, am, width), 0),
                BinOp::Sub => prop_assert_eq!(op.eval(am, am, width), 0),
                BinOp::Div | BinOp::Mod => prop_assert_eq!(op.eval(am, 0, width), 0),
                BinOp::Eq => prop_assert_eq!(op.eval(am, am, width), 1),
                _ => {}
            }
        }
    }

    /// Any parse of corrupted text that *succeeds* must then survive the
    /// whole compile pipeline without panicking: partitioning, codegen,
    /// and the loader either accept the program or return a typed
    /// `CompileError` — never abort.
    #[test]
    fn compile_never_panics_on_corrupted_programs(
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..10)
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        for (pos, byte) in edits {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok(prog) = parse_program(&text) {
                let _ = compile(&prog, &SwitchModel::tofino_like());
            }
        }
    }

    /// Compile + load across randomized switch models: arbitrary (even
    /// degenerate) resource budgets must yield `Ok` or a typed error,
    /// never a panic, and whatever compiles must then pass `load_check`
    /// against the same model it was compiled for.
    #[test]
    fn compile_and_load_never_panic_across_models(
        depth in 0usize..40,
        mem_kib in 0usize..4096,
        meta_bits in 0usize..2048,
        budget in 0usize..64,
    ) {
        let lb = gallium::middleboxes::minilb::minilb();
        let model = SwitchModel::tiny(depth, mem_kib * 1024, meta_bits, budget);
        match compile(&lb.prog, &model) {
            Ok(compiled) => {
                let res = gallium::switchsim::load_check(&compiled.p4, &model);
                if depth > 0 && meta_bits > 0 {
                    prop_assert!(res.is_ok(), "must load on its own sane model: {res:?}");
                } else {
                    // Degenerate models are rejected up front by the loader
                    // even when partitioning routed everything to the server.
                    prop_assert!(matches!(
                        res,
                        Err(gallium::switchsim::LoadError::InvalidModel { .. })
                    ));
                }
            }
            Err(e) => {
                // The error must render (exercises every Display path).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Random LPM control traffic: inserts with arbitrary prefixes and
    /// lengths against a small table must evict (cache mode) or reject
    /// with a typed `TableError` — never panic, and never exceed capacity.
    #[test]
    fn lpm_tables_never_panic_under_random_inserts(
        ops in proptest::collection::vec((any::<u64>(), any::<u8>(), any::<bool>()), 1..64),
        cache in any::<bool>(),
    ) {
        use gallium::switchsim::{RtTable, TableError};
        let mut t = RtTable::new(8);
        t.make_lpm(32);
        if cache {
            t.make_cache(8);
        }
        for (prefix, len, wide) in ops {
            let value = if wide { vec![prefix, 1] } else { vec![prefix] };
            match t.lpm_insert(prefix, len, value) {
                Ok(evicted) => {
                    prop_assert!(evicted.is_empty() || cache, "only caches evict");
                }
                Err(TableError::PrefixTooLong { len: l, key_width }) => {
                    prop_assert!(l > key_width);
                }
                Err(TableError::CapacityExceeded { capacity }) => {
                    prop_assert!(!cache, "cache mode evicts instead");
                    prop_assert_eq!(capacity, 8);
                }
                Err(e) => return Err(TestCaseError::Fail(format!("unexpected: {e}"))),
            }
            prop_assert!(t.len() <= 8, "capacity invariant");
            // Lookups on whatever state resulted must not panic either.
            let _ = t.lookup(&[prefix], false);
        }
    }

    /// Garbage frames (random bytes, random ingress) must never panic the
    /// deployed pipeline — they parse as best-effort and flow through or
    /// get dropped.
    #[test]
    fn switch_survives_garbage_frames(data in proptest::collection::vec(any::<u8>(), 14..200),
                                      ingress in any::<u16>()) {
        let lb = gallium::middleboxes::minilb::minilb();
        let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
        let mut d = Deployment::new(&compiled, SwitchConfig::default(),
                                    CostModel::calibrated()).unwrap();
        let backends = lb.backends;
        d.configure(|s| { s.vec_set_all(backends, vec![1]).unwrap(); }).unwrap();
        let pkt = Packet::from_vec(data, PortId(ingress));
        // Frames "from the server" without a valid transfer header are
        // dropped; network frames always process.
        let _ = d.inject(pkt);
    }
}

#[test]
fn canonical_form_is_fixpoint() {
    let p = parse_program(VALID).unwrap();
    let canon = print_program(&p);
    let p2 = parse_program(&canon).unwrap();
    assert_eq!(print_program(&p2), canon);
    assert_eq!(p, p2);
}
