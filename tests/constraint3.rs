//! Constraint 3 (§4.2.2): "each element of the global state maintained on
//! the switch can only be accessed once during packet processing."
//!
//! The label-removing rules 3/4 only separate accesses connected by a
//! dependency chain; two lookups of the same table in *disjoint branches*
//! slip past them, and the paper handles those with an exhaustive
//! placement search. This test builds exactly that shape and checks the
//! outcome: at most one access offloaded per traversal, the packet still
//! processed correctly, and the search picking a placement that maximizes
//! the offloaded statement count.

use gallium::core::{compile, Deployment};
use gallium::mir::{
    BinOp, FuncBuilder, HeaderField, Interpreter, Op, Program, StateStore, ValueId,
};
use gallium::partition::Partition;
use gallium::prelude::*;

/// Two disjoint branches, each doing a lookup in the SAME map: a service
/// table consulted by dport for TCP and by sport for UDP.
fn double_lookup() -> Program {
    let mut b = FuncBuilder::new("double");
    let m = b.decl_map("svc", vec![16], vec![32], Some(1024));
    let proto = b.read_field(HeaderField::IpProto);
    let tcp = b.cnst(6, 8);
    let is_tcp = b.bin(BinOp::Eq, proto, tcp);
    let t = b.new_block();
    let u = b.new_block();
    b.branch(is_tcp, t, u);

    for (bb, field) in [(t, HeaderField::DstPort), (u, HeaderField::SrcPort)] {
        b.switch_to(bb);
        let k = b.read_field(field);
        let r = b.map_get(m, vec![k]);
        let null = b.is_null(r);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let val = b.extract(r, 0);
        b.write_field(HeaderField::IpDaddr, val);
        b.send();
        b.ret();
        b.switch_to(miss);
        b.drop_pkt();
        b.ret();
    }
    b.finish().unwrap()
}

fn lookups(prog: &Program) -> Vec<ValueId> {
    (0..prog.func.len() as u32)
        .map(ValueId)
        .filter(|v| matches!(prog.func.inst(*v).op, Op::MapGet { .. }))
        .collect()
}

#[test]
fn at_most_one_access_per_traversal() {
    let prog = double_lookup();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    let gets = lookups(&prog);
    assert_eq!(gets.len(), 2);
    let offloaded: Vec<_> = gets
        .iter()
        .filter(|v| compiled.staged.partition_of(**v) == Partition::Pre)
        .collect();
    assert_eq!(
        offloaded.len(),
        1,
        "exactly one of the two same-table lookups may run in pre-processing"
    );
    // The switch program exposes the table once.
    assert_eq!(compiled.p4.tables.len(), 1);
}

#[test]
fn both_branches_still_correct_end_to_end() {
    let prog = double_lookup();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let svc = prog.state_by_name("svc").unwrap();
    d.configure(|s| {
        s.map_put(svc, vec![80], vec![0xAAAA]).unwrap();
        s.map_put(svc, vec![53], vec![0xBBBB]).unwrap();
    })
    .unwrap();

    let mut ref_store = StateStore::new(&prog.states);
    ref_store.map_put(svc, vec![80], vec![0xAAAA]).unwrap();
    ref_store.map_put(svc, vec![53], vec![0xBBBB]).unwrap();
    let interp = Interpreter::new(&prog);

    let cases = [
        (IpProtocol::Tcp, 1000u16, 80u16), // TCP: dport hit
        (IpProtocol::Tcp, 1000, 9999),     // TCP: dport miss → drop
        (IpProtocol::Udp, 53, 7777),       // UDP: sport hit
        (IpProtocol::Udp, 54, 7777),       // UDP: sport miss → drop
    ];
    for (proto, sport, dport) in cases {
        let t = FiveTuple {
            saddr: 1,
            daddr: 2,
            sport,
            dport,
            proto,
        };
        let p = match proto {
            IpProtocol::Udp => PacketBuilder::udp(t, 80).build(PortId(1)),
            _ => PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 80).build(PortId(1)),
        };
        let mut rp = p.clone();
        let r = interp.run(&mut rp, &mut ref_store, 0).unwrap();
        let got = d.inject(p).unwrap();
        match r.sent() {
            Some(e) => {
                assert_eq!(got.len(), 1, "{proto:?} {sport}->{dport}");
                assert_eq!(got[0].1.bytes(), e.bytes());
            }
            None => assert!(got.is_empty(), "{proto:?} {sport}->{dport} drops"),
        }
    }
}

#[test]
fn search_prefers_the_larger_branch() {
    // Make one branch much heavier: keeping its lookup offloaded saves
    // more statements, so the exhaustive search must choose it.
    let mut b = FuncBuilder::new("asym");
    let m = b.decl_map("svc", vec![16], vec![32], Some(1024));
    let proto = b.read_field(HeaderField::IpProto);
    let tcp = b.cnst(6, 8);
    let is_tcp = b.bin(BinOp::Eq, proto, tcp);
    let heavy = b.new_block();
    let light = b.new_block();
    b.branch(is_tcp, heavy, light);

    // Heavy branch: lookup plus a pile of dependent ALU work.
    b.switch_to(heavy);
    let k = b.read_field(HeaderField::DstPort);
    let r = b.map_get(m, vec![k]);
    let null = b.is_null(r);
    let hit = b.new_block();
    let miss = b.new_block();
    b.branch(null, miss, hit);
    b.switch_to(hit);
    let mut acc = b.extract(r, 0);
    for i in 0..6 {
        let c = b.cnst(i, 32);
        acc = b.bin(BinOp::Xor, acc, c);
    }
    b.write_field(HeaderField::IpDaddr, acc);
    b.send();
    b.ret();
    b.switch_to(miss);
    b.drop_pkt();
    b.ret();

    // Light branch: lookup, null-check, send.
    b.switch_to(light);
    let k2 = b.read_field(HeaderField::SrcPort);
    let r2 = b.map_get(m, vec![k2]);
    let null2 = b.is_null(r2);
    let h2 = b.new_block();
    let m2 = b.new_block();
    b.branch(null2, m2, h2);
    b.switch_to(h2);
    b.send();
    b.ret();
    b.switch_to(m2);
    b.drop_pkt();
    b.ret();

    let prog = b.finish().unwrap();
    let compiled = compile(&prog, &SwitchModel::tofino_like()).unwrap();
    let gets = lookups(&prog);
    let heavy_get = gets[0];
    assert_eq!(
        compiled.staged.partition_of(heavy_get),
        Partition::Pre,
        "the search keeps the lookup whose branch offloads more statements"
    );
}
