//! Property-based testing of the packet flight recorder.
//!
//! Two families of properties over random packet streams:
//!
//! * **Trace/outcome consistency** — for every packaged middlebox, a
//!   1-in-1-sampled deployment's per-packet trace must agree with the
//!   packet's observable outcome: the traced `emit` ports equal the real
//!   emissions in order, boundary events (`to_server`, `server.rx`)
//!   appear iff the packet took the slow path, a `drop` event appears iff
//!   a drop counter moved, and every trace opens with `ingress`.
//! * **Sampling exactness** — a 1-in-N recorder over P packets samples
//!   exactly ⌈P/N⌉ of them, with dense deterministic trace ids.

use gallium::middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::prelude::*;
use gallium::telemetry::trace::{EventKind, Hop};
use proptest::prelude::*;

/// One generated packet: indices into small pools, so streams mix
/// repeated flows (hits) with fresh ones (misses/inserts).
type Desc = (u32, u32, u16, usize, usize, u8);

const DPORTS: [u16; 7] = [22, 21, 80, 80, 443, 6667, 3128];
const FLAGS: [u8; 5] = [
    TcpFlags::SYN,
    TcpFlags::ACK,
    TcpFlags::ACK,
    TcpFlags::FIN | TcpFlags::ACK,
    TcpFlags::RST,
];

fn desc() -> impl Strategy<Value = Desc> {
    (0u32..9, 0u32..5, 0u16..4, 0usize..7, 0usize..5, 0u8..8)
}

fn stream(max: usize) -> impl Strategy<Value = Vec<Desc>> {
    proptest::collection::vec(desc(), 1..max)
}

fn packet(d: &Desc) -> Packet {
    let &(s, da, sp, dp, fl, misc) = d;
    if misc == 7 {
        return PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0808_0404,
                daddr: mazunat::NAT_EXTERNAL_IP,
                sport: 443,
                dport: mazunat::NAT_PORT_BASE + sp,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            96,
        )
        .build(PortId(EXTERNAL_PORT));
    }
    let ingress = if misc & 1 == 0 {
        INTERNAL_PORT
    } else {
        EXTERNAL_PORT
    };
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0000 + s,
            daddr: 0x0B00_0000 + da,
            sport: 1024 + sp,
            dport: DPORTS[dp],
            proto: IpProtocol::Tcp,
        },
        TcpFlags(FLAGS[fl]),
        64 + 8 * usize::from(misc),
    )
    .build(PortId(ingress))
}

/// Deploy `prog`, record every packet (1-in-1), and check each packet's
/// trace against what the deployment observably did with it.
fn assert_trace_consistent(
    prog: &Program,
    configure: impl Fn(&mut StateStore),
    descs: &[Desc],
) -> Result<(), TestCaseError> {
    let compiled = compile(prog, &SwitchModel::tofino_like()).expect("compiles");
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    d.configure(|s| configure(s)).unwrap();
    // Ring sized so no event of this stream is ever overwritten.
    d.enable_flight_recorder(1, 16384);
    let server_port = SwitchConfig::default().server_port;

    for (i, desc) in descs.iter().enumerate() {
        let p = packet(desc);
        let ingress = u64::from(p.ingress.0);
        let slow0 = d.stats.slow_path;
        let marked0 = d.switch.stats.drop_marked;
        let server_drops0 = d.server.stats.drops_program;
        let out = d.inject(p).unwrap();

        let report = d.trace_report().unwrap();
        let t = report
            .trace(i as u32)
            .expect("1-in-1 sampling: every packet has a trace");

        // Every trace opens at the switch with the real ingress port.
        prop_assert_eq!(t.records[0].event.kind, EventKind::Ingress, "pkt {}", i);
        prop_assert_eq!(t.records[0].event.hop, Hop::SwitchPre, "pkt {}", i);
        prop_assert_eq!(t.records[0].event.arg, ingress, "pkt {}: ingress port", i);

        // Traced emissions (excluding the internal server port, which the
        // deployment diverts) equal the real ones, in order.
        let traced_ports: Vec<u64> = t
            .records
            .iter()
            .filter(|r| r.event.kind == EventKind::Emit)
            .map(|r| r.event.arg)
            .filter(|&p| p != u64::from(server_port.0))
            .collect();
        let real_ports: Vec<u64> = out.iter().map(|(p, _)| u64::from(p.0)).collect();
        prop_assert_eq!(traced_ports, real_ports, "pkt {}: emit ports", i);

        // Boundary events appear iff the packet left the data plane.
        let went_slow = d.stats.slow_path > slow0;
        prop_assert_eq!(
            t.has(EventKind::ToServer),
            went_slow,
            "pkt {}: to_server",
            i
        );
        prop_assert_eq!(
            t.has(EventKind::ServerRx),
            went_slow,
            "pkt {}: server.rx",
            i
        );
        prop_assert_eq!(
            t.hop_path().contains(&Hop::Server),
            went_slow,
            "pkt {}: server hop",
            i
        );

        // A drop event appears iff a drop counter moved — and the trace
        // of a dropped packet carries exactly one drop.
        let dropped =
            d.switch.stats.drop_marked > marked0 || d.server.stats.drops_program > server_drops0;
        let drop_events = t
            .records
            .iter()
            .filter(|r| r.event.kind == EventKind::Drop)
            .count();
        prop_assert_eq!(drop_events, usize::from(dropped), "pkt {}: drop events", i);
        if dropped {
            prop_assert!(out.is_empty(), "pkt {}: dropped packets emit nothing", i);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mazunat_traces_match_outcomes(descs in stream(30)) {
        let nat = mazunat::mazunat();
        assert_trace_consistent(&nat.prog, |_| {}, &descs)?;
    }

    #[test]
    fn lb_traces_match_outcomes(descs in stream(30)) {
        let l = lb::load_balancer();
        let backends = l.backends;
        assert_trace_consistent(
            &l.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003]).unwrap(),
            &descs,
        )?;
    }

    #[test]
    fn firewall_traces_match_outcomes(descs in stream(30)) {
        let fw = firewall::firewall();
        let cfg = fw.clone();
        assert_trace_consistent(
            &fw.prog,
            move |s| {
                for saddr in 0..4u32 {
                    for daddr in 0..5u32 {
                        for sport in 0..4u16 {
                            cfg.allow(s, &FiveTuple {
                                saddr: 0x0A00_0000 + saddr,
                                daddr: 0x0B00_0000 + daddr,
                                sport: 1024 + sport,
                                dport: 80,
                                proto: IpProtocol::Tcp,
                            });
                        }
                    }
                }
            },
            &descs,
        )?;
    }

    #[test]
    fn proxy_traces_match_outcomes(descs in stream(30)) {
        let px = proxy::proxy(0x0A09_0909, 3128);
        let cfg = px.clone();
        assert_trace_consistent(&px.prog, move |s| cfg.intercept(s, 80), &descs)?;
    }

    #[test]
    fn trojan_traces_match_outcomes(descs in stream(30)) {
        let tr = trojan::trojan_detector();
        assert_trace_consistent(&tr.prog, |_| {}, &descs)?;
    }

    #[test]
    fn minilb_traces_match_outcomes(descs in stream(30)) {
        let ml = minilb::minilb();
        let backends = ml.backends;
        assert_trace_consistent(
            &ml.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002]).unwrap(),
            &descs,
        )?;
    }

    /// 1-in-N sampling over P packets yields exactly ⌈P/N⌉ traces with
    /// dense ids 0..⌈P/N⌉, regardless of the stream's contents.
    #[test]
    fn sampling_is_exact_for_any_stream(descs in stream(40), n in 1u64..8) {
        let nat = mazunat::mazunat();
        let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
        let mut d =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        let rec = d.enable_flight_recorder(n, 16384);
        for desc in &descs {
            d.inject(packet(desc)).unwrap();
        }
        let expect = (descs.len() as u64).div_ceil(n);
        prop_assert_eq!(rec.sampled(), expect, "P={} N={}", descs.len(), n);
        let report = d.trace_report().unwrap();
        let ids: Vec<u32> = report.traces.iter().map(|t| t.trace_id).collect();
        let want: Vec<u32> = (0..expect as u32).collect();
        prop_assert_eq!(ids, want, "dense deterministic trace ids");
    }
}
