//! The §7 "reducing memory usage" extension: the switch stores only a
//! fraction of a table; cache misses replay on the server. The invariant
//! that must survive arbitrary eviction pressure is *semantic equivalence
//! with the uncached deployment* — for the load balancer, connection
//! consistency even when the cache is far smaller than the live
//! connection count.

use gallium::core::{compile, Deployment};
use gallium::middleboxes::lb::load_balancer;
use gallium::middleboxes::minilb::minilb;
use gallium::mir::interp::read_header_field;
use gallium::mir::{HeaderField, Interpreter, PacketAction, StateStore};
use gallium::prelude::*;

fn tcp(saddr: u32, sport: u16, flags: u8) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr,
            daddr: 0x0A00_00FE,
            sport,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(flags),
        120,
    )
    .build(PortId(1))
}

fn cached_lb(cache_entries: usize) -> (Deployment, gallium::middleboxes::lb::LoadBalancer) {
    let lb = load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &[(lb.conn, cache_entries)],
    )
    .unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
            .unwrap();
    })
    .unwrap();
    (d, lb)
}

#[test]
fn cache_hit_stays_on_fast_path() {
    let (mut d, _) = cached_lb(8);
    // First packet: replay (conn unknown anywhere).
    let out1 = d.inject(tcp(1, 1000, TcpFlags::SYN)).unwrap();
    assert_eq!(out1.len(), 1);
    assert_eq!(d.switch.stats.cache_misses, 1);
    // Second packet: the fill made it a pure switch hit.
    let before = d.stats.slow_path;
    let out2 = d.inject(tcp(1, 1000, TcpFlags::ACK)).unwrap();
    assert_eq!(out2.len(), 1);
    assert_eq!(d.stats.slow_path, before, "hit is switch-only");
    // Both chose the same backend.
    assert_eq!(
        read_header_field(out1[0].1.bytes(), HeaderField::IpDaddr),
        read_header_field(out2[0].1.bytes(), HeaderField::IpDaddr)
    );
}

#[test]
fn connection_consistency_survives_eviction_thrash() {
    // Cache of 4 entries, 32 live connections: every flow keeps its
    // backend across rounds even though its cache entry is regularly
    // evicted and re-filled.
    let (mut d, _lb) = cached_lb(4);
    let mut assigned = std::collections::HashMap::new();
    for round in 0..3 {
        for i in 0..32u16 {
            let out = d
                .inject(tcp(0x0A00_0000 + u32::from(i), 2000 + i, TcpFlags::ACK))
                .unwrap();
            assert_eq!(out.len(), 1, "round {round} flow {i}");
            let backend = read_header_field(out[0].1.bytes(), HeaderField::IpDaddr);
            match assigned.get(&i) {
                None => {
                    assigned.insert(i, backend);
                }
                Some(prev) => assert_eq!(
                    *prev, backend,
                    "round {round} flow {i}: backend changed after eviction"
                ),
            }
        }
        assert!(d.replicated_consistent(), "round {round}");
    }
    // The cache never exceeded its capacity.
    assert!(d.switch.table("conn").unwrap().len() <= 4);
    // The authoritative map holds all 32 connections.
    assert_eq!(d.server.store.map_len(_lb.conn).unwrap(), 32);
    // Eviction produced real cache misses beyond the first-touch ones.
    assert!(d.switch.stats.cache_misses > 32);
}

#[test]
fn cached_equals_uncached_equals_reference() {
    // Drive identical traffic through (a) the reference interpreter,
    // (b) the normal deployment, (c) a 2-entry cached deployment; all
    // three must emit identical packets.
    let lb = load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let backends = lb.backends;

    let mut plain =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    plain
        .configure(|s| {
            s.vec_set_all(backends, vec![11, 22, 33]).unwrap();
        })
        .unwrap();
    let mut cached = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &[(lb.conn, 2)],
    )
    .unwrap();
    cached
        .configure(|s| {
            s.vec_set_all(backends, vec![11, 22, 33]).unwrap();
        })
        .unwrap();
    let mut ref_store = StateStore::new(&lb.prog.states);
    ref_store.vec_set_all(backends, vec![11, 22, 33]).unwrap();
    let interp = Interpreter::new(&lb.prog);

    for i in 0..40u16 {
        let flags = if i % 7 == 6 {
            TcpFlags::FIN | TcpFlags::ACK
        } else {
            TcpFlags::ACK
        };
        let p = tcp(u32::from(i % 9), 3000 + (i % 5), flags);
        let mut rp = p.clone();
        let r = interp.run(&mut rp, &mut ref_store, 0).unwrap();
        let expected: Vec<_> = r
            .actions
            .iter()
            .filter_map(|a| match a {
                PacketAction::Send(s) => Some(s.clone()),
                PacketAction::Drop => None,
            })
            .collect();
        for (which, d) in [("plain", &mut plain), ("cached", &mut cached)] {
            let got = d.inject(p.clone()).unwrap();
            assert_eq!(got.len(), expected.len(), "{which} pkt {i}");
            for ((_, g), e) in got.iter().zip(&expected) {
                assert_eq!(g.bytes(), e.bytes(), "{which} pkt {i}");
            }
        }
    }
    // All three converged to identical connection state.
    assert_eq!(
        plain.server.store.map_entries(lb.conn).unwrap(),
        ref_store.map_entries(lb.conn).unwrap()
    );
    assert_eq!(
        cached.server.store.map_entries(lb.conn).unwrap(),
        ref_store.map_entries(lb.conn).unwrap()
    );
    assert!(cached.replicated_consistent());
}

#[test]
fn fin_removes_from_cache_and_authority() {
    let (mut d, lb) = cached_lb(8);
    d.inject(tcp(5, 4000, TcpFlags::SYN)).unwrap();
    assert_eq!(d.switch.table("conn").unwrap().len(), 1);
    d.inject(tcp(5, 4000, TcpFlags::FIN | TcpFlags::ACK))
        .unwrap();
    assert_eq!(d.server.store.map_len(lb.conn).unwrap(), 0);
    assert_eq!(d.switch.table("conn").unwrap().len(), 0, "cache entry gone");
    assert!(d.replicated_consistent());
}

#[test]
fn minilb_cache_mode_works_too() {
    let lb = minilb();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &[(lb.map, 2)],
    )
    .unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![7, 8, 9]).unwrap();
    })
    .unwrap();
    let mut first = std::collections::HashMap::new();
    for round in 0..2 {
        for i in 0..10u32 {
            let out = d.inject(tcp(100 + i, 500, TcpFlags::ACK)).unwrap();
            let b = read_header_field(out[0].1.bytes(), HeaderField::IpDaddr);
            match first.get(&i) {
                None => {
                    first.insert(i, b);
                }
                Some(prev) => assert_eq!(*prev, b, "round {round} flow {i}"),
            }
        }
    }
    assert!(d.switch.table("map").unwrap().len() <= 2);
}

#[test]
fn cache_mode_rejected_for_switch_only_registers() {
    // MazuNAT's port counter is a switch-only register: replay on the
    // server would re-allocate differently, so cache mode must refuse.
    let nat = gallium::middleboxes::mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let err = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &[(nat.nat_out, 16)],
    )
    .expect_err("must refuse");
    assert!(
        matches!(&err, gallium::core::DeployError::CacheUnavailable { state } if state == "port_ctr"),
        "err: {err}"
    );
}
