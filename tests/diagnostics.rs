//! Fault-injection suite for the typed diagnostics layer: every malformed
//! input — MIR text, builder call sequences, table configurations, runtime
//! updates — must be rejected with a *specific, span-bearing* error, never
//! a panic.

use gallium::core::{compile, CompileError, DeployError, Deployment};
use gallium::mir::parser::parse_program;
use gallium::mir::{BinOp, FuncBuilder, MirError, StateStore};
use gallium::net::TransferValues;
use gallium::p4::ControlPlaneOp;
use gallium::partition::{partition_program, StatePlacement, SwitchModel};
use gallium::server::{execute_server_partition, CostModel, ExecError};
use gallium::switchsim::{
    load_check, ControlError, ControlPlane, LoadError, RtTable, Switch, SwitchConfig, TableError,
};

fn minilb_compiled() -> gallium::core::CompiledMiddlebox {
    let lb = gallium::middleboxes::minilb::minilb();
    compile(&lb.prog, &SwitchModel::tofino_like()).expect("minilb compiles")
}

// --- 1. Malformed MIR text: unknown mnemonic, exact line and column -----

#[test]
fn parse_unknown_mnemonic_reports_line_and_column() {
    let src = "program bad {\n  b0:\n    v0 = readfield ip.saddr\n    v1 = frobnicate v0\n    send\n    ret\n}\n";
    let err = parse_program(src).expect_err("must reject");
    assert_eq!(
        err,
        MirError::Parse {
            line: 4,
            col: 10,
            msg: "unknown mnemonic `frobnicate`".into(),
        }
    );
    // The Display form carries the span for the user.
    assert_eq!(
        err.to_string(),
        "parse error at line 4, column 10: unknown mnemonic `frobnicate`"
    );
}

// --- 2. Malformed MIR text: reference to an undefined value -------------

#[test]
fn parse_undefined_value_reports_span() {
    let src = "program bad {\n  b0:\n    v0 = not v9\n    ret\n}\n";
    let err = parse_program(src).expect_err("must reject");
    let MirError::Parse { line, col, msg } = &err else {
        unreachable!("wrong error kind: {err:?}");
    };
    assert_eq!(*line, 3);
    assert!(*col > 0);
    assert_eq!(msg, "unknown value `v9`");
}

// --- 3. Malformed MIR text: branch to a block that does not exist -------

#[test]
fn parse_unknown_block_reports_span() {
    let src = "program bad {\n  b0:\n    v0 = const 1 : u8\n    br v0, b1, b9\n  b1:\n    ret\n}\n";
    let err = parse_program(src).expect_err("must reject");
    let MirError::Parse { line, msg, .. } = &err else {
        unreachable!("wrong error kind: {err:?}");
    };
    assert_eq!(*line, 4);
    assert_eq!(msg, "unknown block `b9`");
}

// --- 4. Ill-typed builder sequence: operand width mismatch --------------

#[test]
fn builder_width_mismatch_reports_instruction() {
    let mut b = FuncBuilder::new("bad");
    let a = b.cnst(1, 32);
    let c = b.cnst(2, 16);
    let _ = b.bin(BinOp::Add, a, c); // 32-bit + 16-bit: ill-typed
    b.ret();
    let err = b.finish().expect_err("must reject");
    let MirError::Build { inst, msg } = &err else {
        unreachable!("wrong error kind: {err:?}");
    };
    assert_eq!(*inst, 2, "error anchored at the offending add");
    assert!(msg.contains("widths differ"), "msg: {msg}");
}

// --- 5. Ill-formed builder sequence: wrong state kind -------------------

#[test]
fn builder_wrong_state_kind_reports_instruction() {
    let mut b = FuncBuilder::new("bad");
    let map = b.decl_map("m", vec![16], vec![32], Some(16));
    let idx = b.cnst(0, 32);
    let _ = b.vec_get(map, idx); // map used as vector
    b.ret();
    let err = b.finish().expect_err("must reject");
    assert!(matches!(err, MirError::Build { .. }), "got {err:?}");
    assert!(err.to_string().contains("non-vector"), "got {err}");
}

// --- 6. Ill-formed builder sequence: terminating twice ------------------

#[test]
fn builder_double_terminate_reports_instruction() {
    let mut b = FuncBuilder::new("bad");
    b.ret();
    b.ret();
    let err = b.finish().expect_err("must reject");
    assert!(matches!(err, MirError::Build { .. }), "got {err:?}");
    assert!(err.to_string().contains("terminated"), "got {err}");
}

// --- 7. Over-capacity table config: LPM insert into a full table --------

#[test]
fn lpm_table_over_capacity_rejected_with_capacity() {
    let mut t = RtTable::new(1);
    t.make_lpm(32);
    t.lpm_insert(0x0a00_0000, 8, vec![1]).expect("first fits");
    assert_eq!(
        t.lpm_insert(0x0b00_0000, 8, vec![2]),
        Err(TableError::CapacityExceeded { capacity: 1 })
    );
}

// --- 8. Bad table config: prefix longer than the key width --------------

#[test]
fn lpm_prefix_longer_than_key_rejected() {
    let mut t = RtTable::new(8);
    t.make_lpm(24);
    let err = t.lpm_insert(0, 32, vec![1]).expect_err("must reject");
    assert_eq!(
        err,
        TableError::PrefixTooLong {
            len: 32,
            key_width: 24
        }
    );
    assert_eq!(err.to_string(), "prefix length 32 exceeds key width 24");
}

// --- 9. Control plane: operation on an undeclared table -----------------

#[test]
fn control_plane_unknown_table_rejected() {
    let compiled = minilb_compiled();
    let mut sw = Switch::load(compiled.p4.clone(), SwitchConfig::default()).expect("loads");
    let err = sw
        .control(&ControlPlaneOp::TableInsert {
            table: "nosuch".into(),
            key: vec![1],
            value: vec![2],
        })
        .expect_err("must reject");
    assert_eq!(err, ControlError::UnknownTable("nosuch".into()));
}

// --- 10. Loader: program referencing an undeclared table ----------------

#[test]
fn loader_rejects_dangling_table_reference() {
    let compiled = minilb_compiled();
    let mut p4 = compiled.p4.clone();
    let bogus = p4.tables.len() + 1;
    p4.pre_nodes[0]
        .stmts
        .push(gallium::p4::P4Stmt::TableLookup {
            table: bogus,
            keys: vec![],
            hit_meta: "h".into(),
            value_metas: vec![],
        });
    assert_eq!(
        load_check(&p4, &SwitchModel::tofino_like()),
        Err(LoadError::UnknownTable {
            index: bogus,
            declared: compiled.p4.tables.len(),
        })
    );
}

// --- 11. Loader: degenerate switch model --------------------------------

#[test]
fn loader_rejects_degenerate_model() {
    let compiled = minilb_compiled();
    let err =
        load_check(&compiled.p4, &SwitchModel::tiny(0, 1 << 20, 800, 20)).expect_err("must reject");
    assert!(matches!(err, LoadError::InvalidModel { .. }), "got {err:?}");
    assert!(err.to_string().contains("pipeline depth"), "got {err}");
}

// --- 12. Bad runtime update: server mutating switch-only state ----------

#[test]
fn executor_rejects_update_to_switch_only_state() {
    let lb = gallium::middleboxes::minilb::minilb();
    let mut staged = partition_program(&lb.prog, &SwitchModel::tofino_like()).expect("partitions");
    let map = staged.prog.state_by_name("map").expect("declared");
    staged.placements[map.0 as usize] = StatePlacement::SwitchOnly;

    let mut store = StateStore::new(&staged.prog.states);
    store
        .vec_set_all(
            staged.prog.state_by_name("backends").expect("declared"),
            vec![1],
        )
        .expect("fits");
    let mut in_values = TransferValues::default();
    in_values.set("v7", 1); // miss path: the server will try map_put
    in_values.set("v2", 0);
    in_values.set("v5", 0);
    let mut pkt = gallium::net::PacketBuilder::tcp(
        gallium::net::FiveTuple {
            saddr: 1,
            daddr: 2,
            sport: 3,
            dport: 4,
            proto: gallium::net::IpProtocol::Tcp,
        },
        gallium::net::TcpFlags(gallium::net::TcpFlags::SYN),
        100,
    )
    .build(gallium::net::PortId::SERVER);

    let err = execute_server_partition(&staged, &mut store, &mut pkt, &in_values, 0)
        .expect_err("must reject");
    let ExecError::UnexpectedUpdate { state, .. } = &err else {
        unreachable!("wrong error kind: {err:?}");
    };
    assert_eq!(state, "map");
    assert_eq!(store.map_len(map).expect("declared"), 0, "store untouched");
}

// --- 13. The stage-tagged CompileError wrappers -------------------------

#[test]
fn compile_error_display_carries_stage_and_span() {
    let parse_err =
        parse_program("program x {\n  b0:\n    v0 = bogus\n    ret\n}\n").expect_err("must reject");
    let wrapped: CompileError = parse_err.into();
    let shown = wrapped.to_string();
    assert!(
        shown.starts_with("mir: parse error at line 3"),
        "got {shown}"
    );

    let load: CompileError = LoadError::Memory {
        needed: 10,
        available: 5,
    }
    .into();
    assert_eq!(load.to_string(), "load: table memory: need 10 bits, have 5");
}

// --- Display / From / source-chain coverage for every new variant -------

#[test]
fn table_and_control_error_display_forms() {
    assert_eq!(
        TableError::NotLpm.to_string(),
        "LPM operation on exact-match table"
    );
    assert_eq!(
        TableError::CapacityExceeded { capacity: 4 }.to_string(),
        "table full (4 entries)"
    );
    assert_eq!(
        ControlError::UnknownRegister("ctr".into()).to_string(),
        "no register `ctr`"
    );
    assert_eq!(
        ControlError::TableFull {
            table: "conn".into()
        }
        .to_string(),
        "table `conn` full"
    );
    // The LPM wrapper both renders and exposes its cause via source().
    let err = ControlError::Lpm {
        table: "rib".into(),
        source: TableError::PrefixTooLong {
            len: 40,
            key_width: 32,
        },
    };
    assert_eq!(
        err.to_string(),
        "LPM table `rib` rejected the entry: prefix length 40 exceeds key width 32"
    );
    let src = std::error::Error::source(&err).expect("chained");
    assert_eq!(src.to_string(), "prefix length 40 exceeds key width 32");
}

#[test]
fn load_error_display_forms() {
    assert_eq!(
        LoadError::UnknownRegister {
            index: 3,
            declared: 1
        }
        .to_string(),
        "statement references register #3, but only 1 declared"
    );
    assert_eq!(
        LoadError::InvalidModel {
            reason: "metadata budget is zero".into()
        }
        .to_string(),
        "invalid switch model: metadata budget is zero"
    );
}

#[test]
fn exec_error_display_and_from_mir() {
    assert_eq!(
        ExecError::Decap {
            reason: "short header".into()
        }
        .to_string(),
        "decapsulation failed: short header"
    );
    assert_eq!(
        ExecError::Encap {
            reason: "budget".into()
        }
        .to_string(),
        "encapsulation failed: budget"
    );
    assert_eq!(
        ExecError::UnexpectedUpdate {
            value: gallium::mir::ValueId(9),
            state: "conn".into()
        }
        .to_string(),
        "v9: unexpected update to switch-only state `conn`"
    );
    let wrapped: ExecError = MirError::Fault("missing transfer value".into()).into();
    assert_eq!(
        wrapped.to_string(),
        "server execution: runtime fault: missing transfer value"
    );
    assert!(std::error::Error::source(&wrapped).is_some());
}

#[test]
fn deploy_error_display_and_from_chain() {
    let from_load: DeployError = LoadError::PipelineDepth {
        needed: 20,
        available: 12,
    }
    .into();
    assert_eq!(
        from_load.to_string(),
        "load: pipeline depth: need 20 stages, have 12"
    );
    let from_control: DeployError = ControlError::UnknownTable("x".into()).into();
    assert_eq!(from_control.to_string(), "control plane: no table `x`");
    let from_exec: DeployError = ExecError::Encap {
        reason: "over budget".into(),
    }
    .into();
    assert_eq!(
        from_exec.to_string(),
        "server: encapsulation failed: over budget"
    );
    assert!(std::error::Error::source(&from_exec).is_some());
    assert_eq!(
        DeployError::MissingTable {
            state: gallium::mir::StateId(2)
        }
        .to_string(),
        "state s2 has no switch table"
    );
    assert_eq!(
        DeployError::PostLoop.to_string(),
        "post-processing looped back to the server"
    );
}

// --- 14. Deployment-level propagation of control-plane rejections -------

#[test]
fn deployment_propagates_typed_control_errors() {
    let compiled = minilb_compiled();
    let mut d = Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated())
        .expect("deploys");
    // Inject a control op against a table the program never declared.
    let err = d
        .switch
        .control(&ControlPlaneOp::TableDelete {
            table: "ghost".into(),
            key: vec![0],
        })
        .map_err(DeployError::from)
        .expect_err("must reject");
    assert_eq!(
        err.to_string(),
        "control plane: no table `ghost`",
        "stage-tagged Display"
    );
}
