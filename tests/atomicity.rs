//! Run-to-completion semantics under adversarial interleavings (§3.1,
//! §4.3.3): observer packets interleaved at *every* point of the
//! write-back protocol see either all or none of a packet's updates, and
//! causally-dependent packets see all of them.

use gallium::core::compile;
use gallium::middleboxes::mazunat::{mazunat, NAT_EXTERNAL_IP, NAT_PORT_BASE};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::prelude::*;
use gallium::switchsim::ControlPlane;
use gallium_p4::ControlPlaneOp;

fn tcp(t: FiveTuple, flags: u8, ingress: u16) -> Packet {
    PacketBuilder::tcp(t, TcpFlags(flags), 100).build(PortId(ingress))
}

/// Build a loaded MazuNAT switch plus the sync batch its first connection
/// produces (captured from a real server run).
fn switch_and_batch() -> (Switch, Vec<ControlPlaneOp>, FiveTuple) {
    let nat = mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut server =
        gallium::server::MiddleboxServer::new(compiled.staged.clone(), CostModel::calibrated());
    let mut sw = Switch::load(compiled.p4.clone(), SwitchConfig::default()).unwrap();

    let t = FiveTuple {
        saddr: 0x0A00_0042,
        daddr: 0x0808_0808,
        sport: 45_000,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    // Run the SYN through the switch and the server to harvest the batch.
    let out = sw.process(tcp(t, TcpFlags::SYN, INTERNAL_PORT));
    let mut frame = out
        .into_iter()
        .find(|(p, _)| *p == PortId::SERVER)
        .unwrap()
        .1;
    frame.ingress = PortId::SERVER;
    let server_out = server.process(frame, 0).unwrap();
    assert!(!server_out.sync_ops.is_empty());
    (sw, server_out.sync_ops, t)
}

/// The observer: the causally-dependent SYN-ACK. Returns whether the NAT
/// translated it (true) or dropped it (false).
fn probe_reply(sw: &mut Switch, alloc_port: u16) -> bool {
    let reply = FiveTuple {
        saddr: 0x0808_0808,
        daddr: NAT_EXTERNAL_IP,
        sport: 443,
        dport: alloc_port,
        proto: IpProtocol::Tcp,
    };
    let out = sw.process(tcp(reply, TcpFlags::SYN | TcpFlags::ACK, EXTERNAL_PORT));
    out.iter().any(|(p, _)| *p != PortId::SERVER)
}

/// The second observer: the *forward-direction* view. Checks whether an
/// internal packet of the same flow hits the existing mapping (fast path,
/// no second allocation) or misses.
fn probe_forward_hits(sw: &mut Switch, t: FiveTuple) -> bool {
    let before = sw.register("port_ctr").unwrap();
    let out = sw.process(tcp(t, TcpFlags::ACK, INTERNAL_PORT));
    let after = sw.register("port_ctr").unwrap();
    // A miss re-enters the allocation path and bumps the counter.
    let hit = before == after;
    let _ = out;
    hit
}

#[test]
fn observer_sees_all_or_nothing_at_every_interleaving_point() {
    let (_, batch, _) = switch_and_batch();
    let n = batch.len();
    // Interleave the observer after each prefix of the protocol.
    for cut in 0..=n {
        let (mut sw, batch, _t) = switch_and_batch();
        for op in &batch[..cut] {
            sw.control(op).unwrap();
        }
        let translated = probe_reply(&mut sw, NAT_PORT_BASE);
        // Find whether the updates are *visible* at this cut: after the
        // first SetWriteBackBit(true) and before SetWriteBackBit(false)
        // the staged entries show; after the fold they show regardless.
        let flip_on = batch
            .iter()
            .position(|o| matches!(o, ControlPlaneOp::SetWriteBackBit(true)))
            .unwrap()
            + 1;
        let expected_visible = cut >= flip_on;
        assert_eq!(
            translated, expected_visible,
            "cut {cut}: observer must see all ({expected_visible}) — torn state observed"
        );
    }
}

#[test]
fn updates_atomic_across_both_tables() {
    // The NAT batch updates two tables (nat_out and nat_in). At every
    // interleaving point, the forward and reverse observers must agree:
    // both see the connection, or neither does.
    let (_, batch, _) = switch_and_batch();
    for cut in 0..=batch.len() {
        let (mut sw, batch, t) = switch_and_batch();
        for op in &batch[..cut] {
            sw.control(op).unwrap();
        }
        let reverse_sees = probe_reply(&mut sw, NAT_PORT_BASE);
        let forward_sees = probe_forward_hits(&mut sw, t);
        assert_eq!(
            reverse_sees, forward_sees,
            "cut {cut}: directions disagree — the two tables were torn"
        );
    }
}

#[test]
fn output_commit_orders_causal_packets() {
    // Through the full Deployment (which applies the batch before
    // releasing the packet), the causally-dependent reply always works —
    // for many connections in a row.
    let nat = mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    for i in 0..30u16 {
        let t = FiveTuple {
            saddr: 0x0A00_0100 + u32::from(i),
            daddr: 0x0808_0808,
            sport: 46_000 + i,
            dport: 443,
            proto: IpProtocol::Tcp,
        };
        let out = d.inject(tcp(t, TcpFlags::SYN, INTERNAL_PORT)).unwrap();
        assert_eq!(out.len(), 1, "conn {i}: SYN forwarded");
        let reply = FiveTuple {
            saddr: 0x0808_0808,
            daddr: NAT_EXTERNAL_IP,
            sport: 443,
            dport: NAT_PORT_BASE + i,
            proto: IpProtocol::Tcp,
        };
        let out = d
            .inject(tcp(reply, TcpFlags::SYN | TcpFlags::ACK, EXTERNAL_PORT))
            .unwrap();
        assert_eq!(
            out.len(),
            1,
            "conn {i}: causally-dependent reply translated"
        );
    }
    assert!(d.replicated_consistent());
}

#[test]
fn write_back_shadow_never_leaks_after_clear() {
    // After the full protocol, the shadow is empty and the bit is off, so
    // subsequent batches start clean.
    let (mut sw, batch, _) = switch_and_batch();
    for op in &batch {
        sw.control(op).unwrap();
    }
    assert!(!sw.write_back_active());
    assert_eq!(sw.table("nat_out").unwrap().shadow_len(), 0);
    assert_eq!(sw.table("nat_in").unwrap().shadow_len(), 0);
    assert_eq!(sw.table("nat_out").unwrap().len(), 1);
    assert_eq!(sw.table("nat_in").unwrap().len(), 1);
}
