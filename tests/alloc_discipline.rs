//! Allocation discipline of the warm dataplane fast path.
//!
//! The PR 6 contract: once a deployment is warm — flow state installed,
//! every scratch/emission buffer grown to size — injecting a burst of
//! uniquely-owned packets performs **zero heap allocations**. Inline table
//! keys keep lookups off the heap, the copy-on-write [`Packet`] makes
//! emission a refcount bump, and `inject_batch_into` threads one reusable
//! buffer through switch → server → switch.
//!
//! Verified the blunt way: this test binary installs a counting global
//! allocator and asserts the allocation counter does not move across the
//! warm burst.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gallium::middleboxes::mazunat;
use gallium::middleboxes::INTERNAL_PORT;
use gallium::prelude::*;

/// System allocator wrapper that counts every allocation (not frees:
/// dropping consumed packets is allowed — what must never happen on the
/// warm path is *acquiring* memory).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BURST: usize = 256;

fn warm_nat_deployment() -> (Deployment, Packet) {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let t = FiveTuple {
        saddr: 0x0A00_0009,
        daddr: 0x0808_0404,
        sport: 50_123,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    let syn = PacketBuilder::tcp(t, TcpFlags(TcpFlags::SYN), 200).build(PortId(INTERNAL_PORT));
    d.inject(syn).unwrap();
    let probe = PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 200).build(PortId(INTERNAL_PORT));
    let before = d.stats.slow_path;
    d.inject(probe.clone()).unwrap();
    assert_eq!(d.stats.slow_path, before, "probe must stay on the switch");
    (d, probe)
}

#[test]
fn warm_fast_path_is_allocation_free() {
    let (mut d, probe) = warm_nat_deployment();

    // Pre-build a burst of uniquely-owned packets (`deep_clone`: refcount
    // 1, so in-place header rewrites never trigger a copy-on-write
    // detach) and an emissions buffer outside the measured region.
    let build_burst = || -> Vec<Packet> { (0..BURST).map(|_| probe.deep_clone()).collect() };
    let mut out: Vec<(PortId, Packet)> = Vec::with_capacity(BURST * 2);

    // Warm every lazily-grown buffer (emission vec, plan scratch, switch
    // internals) with a throwaway burst.
    let done = d.inject_batch_into(build_burst(), &mut out).unwrap();
    assert_eq!(done, BURST);
    assert_eq!(out.len(), BURST, "one emission per warm NAT packet");

    // Measured burst: the counter must not move at all.
    let burst = build_burst();
    out.clear();
    let before = ALLOCS.load(Ordering::SeqCst);
    let done = d.inject_batch_into(burst, &mut out).unwrap();
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(done, BURST);
    assert_eq!(out.len(), BURST);
    assert_eq!(
        after - before,
        0,
        "warm fast path allocated {} times over a {BURST}-packet burst",
        after - before
    );
    assert_eq!(d.stats.slow_path, 1, "only the initial SYN left the switch");

    // Sanity: the emissions are real NAT rewrites, not pass-throughs.
    for (port, pkt) in &out {
        assert_ne!(*port, PortId(INTERNAL_PORT));
        assert_eq!(pkt.len(), 200);
    }
}

#[test]
fn warm_fast_path_with_recorder_is_allocation_free() {
    // The flight-recorder contract: sampling every packet (1-in-1) into
    // the preallocated ring is lock-free and alloc-free, so the warm
    // fast path stays at zero allocations with tracing fully on.
    let (mut d, probe) = warm_nat_deployment();
    d.enable_flight_recorder(1, 4096);

    let build_burst = || -> Vec<Packet> { (0..BURST).map(|_| probe.deep_clone()).collect() };
    let mut out: Vec<(PortId, Packet)> = Vec::with_capacity(BURST * 2);

    // Warm pass with the recorder installed.
    let done = d.inject_batch_into(build_burst(), &mut out).unwrap();
    assert_eq!(done, BURST);

    let burst = build_burst();
    out.clear();
    let before = ALLOCS.load(Ordering::SeqCst);
    let done = d.inject_batch_into(burst, &mut out).unwrap();
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(done, BURST);
    assert_eq!(
        after - before,
        0,
        "traced warm fast path allocated {} times over a {BURST}-packet burst",
        after - before
    );
    // The burst really was recorded: every packet sampled, events ringed.
    let rec = d.recorder().unwrap();
    assert_eq!(rec.sampled(), 2 * BURST as u64);
    assert!(rec.events() >= 2 * BURST as u64);
}

#[test]
fn rebuilt_layout_lookups_are_allocation_free() {
    // The PR 10 contract: control-plane churn buffers into the delta
    // overlay and is folded into a fresh perfect-hash layout by
    // `flush_layout`; once rebuilt, the lookup path (prefetch + probe)
    // acquires no memory at all — rebuild cost lives entirely on the
    // control-plane side.
    use gallium::switchsim::RtTable;

    let mut t = RtTable::new(64);
    for i in 0..48u64 {
        t.insert_main(vec![i, i ^ 0xdead], vec![i * 3]).unwrap();
    }
    // Churn past the overlay threshold so at least one incremental
    // rebuild fires, then flush to fold the remainder.
    for i in 0..16u64 {
        t.delete_main(&[i, i ^ 0xdead]);
    }
    for i in 0..8u64 {
        t.insert_main(vec![i, i ^ 0xdead], vec![i * 5]).unwrap();
    }
    t.flush_layout();
    assert!(t.layout_active(), "inline keys must serve from the layout");
    assert_eq!(t.pending_delta(), 0, "flush folds the whole overlay");

    let keys: Vec<Vec<u64>> = (0..48u64).map(|i| vec![i, i ^ 0xdead]).collect();
    let mut hits = 0u64;
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..64 {
        for k in &keys {
            t.prefetch(k);
            if t.lookup_ref(k, false).is_some() {
                hits += 1;
            }
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "rebuilt-layout lookups allocated {} times",
        after - before
    );
    // 48 inserted − 16 deleted + 8 reinserted ⇒ 40 resident per pass.
    assert_eq!(hits, 64 * 40, "sweep really hit the resident set");
}

#[test]
fn shared_packets_detach_instead_of_corrupting() {
    // The counterpart guarantee: when the injected packet *is* shared
    // (refcount > 1), copy-on-write pays one detach copy rather than
    // mutating the caller's buffer behind its back.
    let (mut d, probe) = warm_nat_deployment();
    let original = probe.bytes().to_vec();
    let out = d.inject(probe.clone()).unwrap();
    assert_eq!(out.len(), 1);
    assert_ne!(out[0].1.bytes(), original.as_slice(), "NAT rewrote headers");
    assert_eq!(
        probe.bytes(),
        original.as_slice(),
        "caller's copy untouched"
    );
}
