//! Negative tests for the independent verifier: tamper with the
//! compiler's output in specific ways and assert the verifier reports the
//! specific typed error; plus the clean-bill check for every packaged
//! middlebox.

use gallium::middleboxes::{self, minilb::minilb};
use gallium::mir::{FuncBuilder, HeaderField, ValueId};
use gallium::net::TransferHeaderLayout;
use gallium::prelude::*;
use gallium::verify::{verify, Boundary, LintKind, VerifyError};

fn compiled_minilb() -> CompiledMiddlebox {
    compile_with(
        &minilb().prog,
        &SwitchModel::tofino_like(),
        CompileOptions { verify: true },
    )
    .expect("minilb compiles clean")
}

#[test]
fn tampered_phase1_label_is_a_label_disagreement() {
    let mut c = compiled_minilb();
    // v15 is MiniLB's `map_put` — P4 cannot express it, so the derived
    // phase-1 labels are {non_off}. Claiming it kept `pre` must be caught.
    assert!(!c.staged.phase1_labels[15].pre);
    c.staged.phase1_labels[15].pre = true;
    let report = verify(&c.staged, &c.p4, &SwitchModel::tofino_like());
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            VerifyError::LabelDisagreement { value, compiler_pre: true, derived_pre: false, .. }
                if *value == ValueId(15)
        )),
        "expected a LabelDisagreement on v15, got {:?}",
        report.errors
    );
}

#[test]
fn dropped_transfer_value_is_a_missing_transfer() {
    let mut c = compiled_minilb();
    // The branch bit (v7) must cross to the server; silently dropping it
    // from the transfer set loses the miss/hit decision.
    let v7 = ValueId(7);
    assert!(c.staged.to_server_values.contains(&v7));
    c.staged.to_server_values.retain(|v| *v != v7);
    let report = verify(&c.staged, &c.p4, &SwitchModel::tofino_like());
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            VerifyError::MissingTransfer { value, boundary: Boundary::ToServer }
                if *value == v7
        )),
        "expected a MissingTransfer for v7, got {:?}",
        report.errors
    );
}

#[test]
fn shrunk_header_is_a_layout_mismatch() {
    let mut c = compiled_minilb();
    c.staged.header_to_switch = TransferHeaderLayout::new(vec![]).unwrap();
    let report = verify(&c.staged, &c.p4, &SwitchModel::tofino_like());
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            VerifyError::LayoutMismatch {
                boundary: Boundary::ToSwitch,
                actual_bits: 0,
                ..
            }
        )),
        "expected a LayoutMismatch on the to-switch header, got {:?}",
        report.errors
    );
}

#[test]
fn inflated_table_is_a_memory_error() {
    let mut c = compiled_minilb();
    // 48 bits/entry × 10^8 entries blows the 160 Mb tofino_like budget.
    c.p4.tables[0].size = 100_000_000;
    let report = verify(&c.staged, &c.p4, &SwitchModel::tofino_like());
    assert!(
        report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::TableMemoryExceeded { .. })),
        "expected TableMemoryExceeded, got {:?}",
        report.errors
    );
}

#[test]
fn degenerate_model_short_circuits() {
    let c = compiled_minilb();
    let broken = SwitchModel::tiny(0, 1024, 800, 20);
    let report = verify(&c.staged, &c.p4, &broken);
    assert_eq!(report.errors.len(), 1);
    assert!(matches!(report.errors[0], VerifyError::Model(_)));
    assert!(report.resources.is_none());
}

#[test]
fn dead_code_and_unused_state_are_linted() {
    let mut b = FuncBuilder::new("linty");
    let _unused_reg = b.decl_register("never_touched", 32);
    let saddr = b.read_field(HeaderField::IpSaddr); // v0, used
    let dead = b.cnst(42, 32); // v1, never consumed
    b.write_field(HeaderField::IpDaddr, saddr); // v2
    b.send(); // v3
    b.ret();
    let prog = b.finish().unwrap();
    let _ = dead;

    let c = compile_with(
        &prog,
        &SwitchModel::tofino_like(),
        CompileOptions { verify: true },
    )
    .unwrap();
    let report = c.verify.expect("verification requested");
    assert!(report.is_clean(), "lints are warnings, not errors");
    assert!(report
        .lints
        .iter()
        .any(|l| l.kind == LintKind::DeadInstruction));
    assert!(report.lints.iter().any(|l| l.kind == LintKind::UnusedState));
}

#[test]
fn overwritten_header_write_is_linted() {
    let mut b = FuncBuilder::new("shadowed");
    let a = b.cnst(1, 32); // v0
    let c2 = b.cnst(2, 32); // v1
    b.write_field(HeaderField::IpDaddr, a); // v2: shadowed before any read
    b.write_field(HeaderField::IpDaddr, c2); // v3: observed by send
    b.send(); // v4
    b.ret();
    let prog = b.finish().unwrap();
    let c = compile_with(
        &prog,
        &SwitchModel::tofino_like(),
        CompileOptions { verify: true },
    )
    .unwrap();
    let report = c.verify.unwrap();
    let shadowed: Vec<_> = report
        .lints
        .iter()
        .filter(|l| l.kind == LintKind::WriteNeverRead)
        .collect();
    assert_eq!(
        shadowed.len(),
        1,
        "exactly the shadowed write: {shadowed:?}"
    );
}

#[test]
fn all_middleboxes_verify_clean_with_resource_reports() {
    let model = SwitchModel::tofino_like();
    let mut programs = middleboxes::all_evaluated();
    programs.push(("MiniLB", minilb().prog));
    for (name, prog) in programs {
        let c = compile_with(&prog, &model, CompileOptions { verify: true })
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let report = c.verify.expect("verification requested");
        assert!(
            report.is_clean(),
            "{name} has verifier errors: {:?}",
            report.errors
        );
        let resources = report.resources.as_ref().expect("resource audit ran");
        assert!(resources.depth_used <= resources.depth_budget);
        assert!(!resources.stages.is_empty(), "{name} uses at least 1 stage");
        let text = report.render_text();
        assert!(text.contains("resources:"), "report renders the audit");
        let json = report.to_json();
        assert!(json.contains("\"clean\": true"));
    }
}

#[test]
fn verify_off_skips_the_report() {
    let c = compile_with(
        &minilb().prog,
        &SwitchModel::tofino_like(),
        CompileOptions { verify: false },
    )
    .unwrap();
    assert!(c.verify.is_none());
}
