//! Property-based differential testing of the compiled dataplane plan.
//!
//! The PR 3 plan compiler ([`gallium::switchsim::ExecPlan`]) lowers the
//! loaded P4 program into a flat opcode stream at load time; this suite is
//! the correctness contract behind making it the default path. For random
//! packet streams over random flow mixes, a deployment on the compiled
//! plan and one on the reference AST interpreter must be observationally
//! identical for every packaged middlebox:
//!
//! * emitted packets — egress ports and exact bytes, in order;
//! * deployment / switch / server counters (fast vs slow path, drops,
//!   cache misses);
//! * per-table telemetry hit/miss/eviction counters;
//! * the final authoritative state store and switch-replicated state;
//! * cache mode (§7): FIFO eviction order and replay behaviour under a
//!   deliberately thrashed 2-entry cache.

use gallium::middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::mir::StateId;
use gallium::prelude::*;
use proptest::prelude::*;

/// One generated packet: indices into small pools, so streams mix
/// repeated flows (hits) with fresh ones (misses/inserts).
type Desc = (u32, u32, u16, usize, usize, u8);

const DPORTS: [u16; 7] = [22, 21, 80, 80, 443, 6667, 3128];
const FLAGS: [u8; 5] = [
    TcpFlags::SYN,
    TcpFlags::ACK,
    TcpFlags::ACK,
    TcpFlags::FIN | TcpFlags::ACK,
    TcpFlags::RST,
];

fn desc() -> impl Strategy<Value = Desc> {
    (0u32..9, 0u32..5, 0u16..4, 0usize..7, 0usize..5, 0u8..8)
}

fn stream(max: usize) -> impl Strategy<Value = Vec<Desc>> {
    proptest::collection::vec(desc(), 1..max)
}

fn packet(d: &Desc) -> Packet {
    let &(s, da, sp, dp, fl, misc) = d;
    // One descriptor pattern in eight probes the NAT's external mapping
    // range from the outside; the rest are forward-direction traffic from
    // either network.
    if misc == 7 {
        return PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0808_0404,
                daddr: mazunat::NAT_EXTERNAL_IP,
                sport: 443,
                dport: mazunat::NAT_PORT_BASE + sp,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            96,
        )
        .build(PortId(EXTERNAL_PORT));
    }
    let ingress = if misc & 1 == 0 {
        INTERNAL_PORT
    } else {
        EXTERNAL_PORT
    };
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0000 + s,
            daddr: 0x0B00_0000 + da,
            sport: 1024 + sp,
            dport: DPORTS[dp],
            proto: IpProtocol::Tcp,
        },
        TcpFlags(FLAGS[fl]),
        64 + 8 * usize::from(misc),
    )
    .build(PortId(ingress))
}

/// Stand up plan + interpreter deployments of `prog` (optionally in cache
/// mode), drive the identical stream through both, and assert every
/// observable artifact matches.
fn assert_equiv(
    prog: &Program,
    configure: impl Fn(&mut StateStore),
    caches: &[(StateId, usize)],
    descs: &[Desc],
) -> TestCaseResult {
    let compiled = compile(prog, &SwitchModel::tofino_like()).expect("compiles");
    let (mut plan, mut interp) = if caches.is_empty() {
        (
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap(),
            Deployment::new_interpreter(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
            )
            .unwrap(),
        )
    } else {
        (
            Deployment::new_cached(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
                caches,
            )
            .unwrap(),
            Deployment::new_cached_interpreter(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
                caches,
            )
            .unwrap(),
        )
    };
    prop_assert!(plan.switch.uses_plan(), "plan deployment compiled a plan");
    prop_assert!(!interp.switch.uses_plan(), "interpreter stayed on the AST");
    plan.configure(|s| configure(s)).unwrap();
    interp.configure(|s| configure(s)).unwrap();

    for (i, d) in descs.iter().enumerate() {
        let p = packet(d);
        let a = plan.inject(p.clone());
        let b = interp.inject(p);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.len(), b.len(), "pkt {}: emission count", i);
                for (j, ((pa, fa), (pb, fb))) in a.iter().zip(&b).enumerate() {
                    prop_assert_eq!(pa, pb, "pkt {} emission {}: egress port", i, j);
                    prop_assert_eq!(fa.bytes(), fb.bytes(), "pkt {} emission {}: bytes", i, j);
                }
            }
            (Err(ea), Err(eb)) => {
                prop_assert_eq!(
                    ea.to_string(),
                    eb.to_string(),
                    "pkt {}: both errored but differently",
                    i
                );
            }
            (a, b) => {
                prop_assert!(
                    false,
                    "pkt {}: one engine errored (plan ok={}, interp ok={})",
                    i,
                    a.is_ok(),
                    b.is_ok()
                );
            }
        }
    }

    prop_assert_eq!(plan.stats, interp.stats, "deployment stats");
    prop_assert_eq!(plan.switch.stats, interp.switch.stats, "switch stats");
    prop_assert_eq!(plan.server.stats, interp.server.stats, "server stats");
    prop_assert!(
        plan.server.store == interp.server.store,
        "authoritative state stores diverge"
    );
    // Per-table telemetry counters must agree: the plan's lookup path and
    // the interpreter's must count the same hits/misses/evictions.
    let table_names: Vec<String> = plan
        .switch
        .program()
        .tables
        .iter()
        .map(|t| t.name.clone())
        .collect();
    for name in &table_names {
        let a = &plan.switch.table(name).unwrap().stats;
        let b = &interp.switch.table(name).unwrap().stats;
        prop_assert_eq!(a.hits.get(), b.hits.get(), "table {}: hits", name);
        prop_assert_eq!(a.misses.get(), b.misses.get(), "table {}: misses", name);
        prop_assert_eq!(
            a.evictions.get(),
            b.evictions.get(),
            "table {}: evictions",
            name
        );
    }
    prop_assert_eq!(
        plan.switch.drain_evictions(),
        interp.switch.drain_evictions(),
        "eviction queues"
    );
    prop_assert!(plan.replicated_consistent(), "plan replicated state");
    prop_assert!(interp.replicated_consistent(), "interp replicated state");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mazunat_plan_equals_interpreter(descs in stream(40)) {
        let nat = mazunat::mazunat();
        assert_equiv(&nat.prog, |_| {}, &[], &descs)?;
    }

    #[test]
    fn lb_plan_equals_interpreter(descs in stream(40)) {
        let l = lb::load_balancer();
        let backends = l.backends;
        assert_equiv(
            &l.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003]).unwrap(),
            &[],
            &descs,
        )?;
    }

    #[test]
    fn firewall_plan_equals_interpreter(descs in stream(40)) {
        let fw = firewall::firewall();
        let cfg = fw.clone();
        assert_equiv(
            &fw.prog,
            move |s| {
                // Whitelist part of the generator's flow space so streams
                // mix passes with drops.
                for saddr in 0..4u32 {
                    for daddr in 0..5u32 {
                        for sport in 0..4u16 {
                            cfg.allow(s, &FiveTuple {
                                saddr: 0x0A00_0000 + saddr,
                                daddr: 0x0B00_0000 + daddr,
                                sport: 1024 + sport,
                                dport: 80,
                                proto: IpProtocol::Tcp,
                            });
                        }
                    }
                }
            },
            &[],
            &descs,
        )?;
    }

    #[test]
    fn proxy_plan_equals_interpreter(descs in stream(40)) {
        let px = proxy::proxy(0x0A09_0909, 3128);
        let cfg = px.clone();
        assert_equiv(&px.prog, move |s| cfg.intercept(s, 80), &[], &descs)?;
    }

    #[test]
    fn trojan_plan_equals_interpreter(descs in stream(40)) {
        let tr = trojan::trojan_detector();
        assert_equiv(&tr.prog, |_| {}, &[], &descs)?;
    }

    #[test]
    fn minilb_plan_equals_interpreter(descs in stream(40)) {
        let ml = minilb::minilb();
        let backends = ml.backends;
        assert_equiv(
            &ml.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002]).unwrap(),
            &[],
            &descs,
        )?;
    }

    /// The inline-key table ([`TableKey`]'s `[u64; 4]` fast path plus the
    /// spilled fallback for wider keys) must be observationally identical
    /// to a plain `Vec<u64>`-keyed map with an explicit FIFO queue — the
    /// exact data structure it replaced. Random op streams over a small
    /// key domain (widths 1..=6, so both representations are exercised)
    /// drive a 3-entry cache-mode table and the model side by side.
    #[test]
    fn inline_key_table_equals_vec_keyed_model(
        ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(0u64..4, 1..=6), 0u64..100),
            1..120,
        )
    ) {
        use std::collections::{HashMap, VecDeque};

        const CAP: usize = 3;
        let mut table = gallium::switchsim::RtTable::new(CAP);
        table.make_cache(CAP);

        let mut model: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
        let mut order: VecDeque<Vec<u64>> = VecDeque::new();

        for (i, (op, key, val)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let evicted = table
                        .insert_main(key.clone(), vec![*val])
                        .expect("cache-mode insert cannot fail");
                    // Model: FIFO position fixed at first insert.
                    let mut model_evicted = Vec::new();
                    if !model.contains_key(key) {
                        while model.len() >= CAP {
                            let old = order.pop_front().unwrap();
                            model.remove(&old);
                            model_evicted.push(old);
                        }
                        order.push_back(key.clone());
                    }
                    model.insert(key.clone(), vec![*val]);
                    prop_assert_eq!(&evicted, &model_evicted, "op {}: evictions", i);
                }
                1 => {
                    let got = table.lookup_ref(key, false);
                    prop_assert_eq!(
                        got,
                        model.get(key).map(Vec::as_slice),
                        "op {}: lookup", i
                    );
                }
                _ => {
                    table.delete_main(key);
                    model.remove(key);
                    order.retain(|k| k != key);
                }
            }
            prop_assert_eq!(table.len(), model.len(), "op {}: len", i);
        }

        let mut got: Vec<_> = table.entries();
        let mut want: Vec<_> = model.into_iter().collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "final entry sets");
    }

    /// `inject_batch_into` must be observationally identical to calling
    /// `inject` per packet: same emissions (ports and bytes, in order),
    /// same counters, same authoritative state. The batch side is driven
    /// in chunks through one reused buffer to exercise the append (not
    /// clear) contract across calls.
    #[test]
    fn inject_batch_equals_per_packet_inject(descs in stream(40)) {
        let nat = mazunat::mazunat();
        let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
        let mut seq =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        let mut bat =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();

        let mut expected = Vec::new();
        for d in &descs {
            expected.extend(seq.inject(packet(d)).unwrap());
        }

        let mut out = Vec::new();
        let mut done = 0;
        for chunk in descs.chunks(8) {
            done += bat
                .inject_batch_into(chunk.iter().map(packet), &mut out)
                .unwrap();
        }
        prop_assert_eq!(done, descs.len(), "all packets processed");
        prop_assert_eq!(out.len(), expected.len(), "emission count");
        for (i, ((pa, fa), (pb, fb))) in out.iter().zip(&expected).enumerate() {
            prop_assert_eq!(pa, pb, "emission {}: egress port", i);
            prop_assert_eq!(fa.bytes(), fb.bytes(), "emission {}: bytes", i);
        }
        prop_assert_eq!(seq.stats, bat.stats, "deployment stats");
        prop_assert_eq!(seq.switch.stats, bat.switch.stats, "switch stats");
        prop_assert_eq!(seq.server.stats, bat.server.stats, "server stats");
        prop_assert!(seq.server.store == bat.server.store, "state stores diverge");
        prop_assert!(bat.replicated_consistent(), "batch replicated state");
    }

    /// Cache mode (§7): a 2-entry FIFO cache on the LB connection table.
    /// Any stream with ≥3 distinct flows thrashes it, exercising eviction
    /// on the control-plane fill path and cache-miss→replay on the data
    /// path — both must match the interpreter event for event.
    #[test]
    fn lb_cached_eviction_and_replay(descs in stream(60)) {
        let l = lb::load_balancer();
        let backends = l.backends;
        let caches = [(l.conn, 2usize)];
        assert_equiv(
            &l.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003]).unwrap(),
            &caches,
            &descs,
        )?;
    }
}
