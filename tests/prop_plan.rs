//! Property-based differential testing of the compiled dataplane plan.
//!
//! The PR 3 plan compiler ([`gallium::switchsim::ExecPlan`]) lowers the
//! loaded P4 program into a flat opcode stream at load time; this suite is
//! the correctness contract behind making it the default path. For random
//! packet streams over random flow mixes, a deployment on the compiled
//! plan and one on the reference AST interpreter must be observationally
//! identical for every packaged middlebox:
//!
//! * emitted packets — egress ports and exact bytes, in order;
//! * deployment / switch / server counters (fast vs slow path, drops,
//!   cache misses);
//! * per-table telemetry hit/miss/eviction counters;
//! * the final authoritative state store and switch-replicated state;
//! * cache mode (§7): FIFO eviction order and replay behaviour under a
//!   deliberately thrashed 2-entry cache.

use gallium::middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::mir::StateId;
use gallium::prelude::*;
use proptest::prelude::*;

/// One generated packet: indices into small pools, so streams mix
/// repeated flows (hits) with fresh ones (misses/inserts).
type Desc = (u32, u32, u16, usize, usize, u8);

const DPORTS: [u16; 7] = [22, 21, 80, 80, 443, 6667, 3128];
const FLAGS: [u8; 5] = [
    TcpFlags::SYN,
    TcpFlags::ACK,
    TcpFlags::ACK,
    TcpFlags::FIN | TcpFlags::ACK,
    TcpFlags::RST,
];

fn desc() -> impl Strategy<Value = Desc> {
    (0u32..9, 0u32..5, 0u16..4, 0usize..7, 0usize..5, 0u8..8)
}

fn stream(max: usize) -> impl Strategy<Value = Vec<Desc>> {
    proptest::collection::vec(desc(), 1..max)
}

fn packet(d: &Desc) -> Packet {
    let &(s, da, sp, dp, fl, misc) = d;
    // One descriptor pattern in eight probes the NAT's external mapping
    // range from the outside; the rest are forward-direction traffic from
    // either network.
    if misc == 7 {
        return PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0808_0404,
                daddr: mazunat::NAT_EXTERNAL_IP,
                sport: 443,
                dport: mazunat::NAT_PORT_BASE + sp,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            96,
        )
        .build(PortId(EXTERNAL_PORT));
    }
    let ingress = if misc & 1 == 0 {
        INTERNAL_PORT
    } else {
        EXTERNAL_PORT
    };
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0000 + s,
            daddr: 0x0B00_0000 + da,
            sport: 1024 + sp,
            dport: DPORTS[dp],
            proto: IpProtocol::Tcp,
        },
        TcpFlags(FLAGS[fl]),
        64 + 8 * usize::from(misc),
    )
    .build(PortId(ingress))
}

/// Stand up plan + interpreter deployments of `prog` (optionally in cache
/// mode), drive the identical stream through both, and assert every
/// observable artifact matches.
fn assert_equiv(
    prog: &Program,
    configure: impl Fn(&mut StateStore),
    caches: &[(StateId, usize)],
    descs: &[Desc],
) -> TestCaseResult {
    let compiled = compile(prog, &SwitchModel::tofino_like()).expect("compiles");
    let (mut plan, mut interp) = if caches.is_empty() {
        (
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap(),
            Deployment::new_interpreter(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
            )
            .unwrap(),
        )
    } else {
        (
            Deployment::new_cached(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
                caches,
            )
            .unwrap(),
            Deployment::new_cached_interpreter(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
                caches,
            )
            .unwrap(),
        )
    };
    prop_assert!(plan.switch.uses_plan(), "plan deployment compiled a plan");
    prop_assert!(!interp.switch.uses_plan(), "interpreter stayed on the AST");
    plan.configure(|s| configure(s)).unwrap();
    interp.configure(|s| configure(s)).unwrap();
    assert_observably_equal(&mut plan, &mut interp, descs)
}

/// Drive the identical stream through two deployments and assert every
/// observable artifact matches: emissions (ports and exact bytes), all
/// counter families, per-table telemetry, eviction queues, the
/// authoritative state store, and switch-replicated state. Used both for
/// plan ≡ interpreter and for fused ≡ unfused plan comparisons.
fn assert_observably_equal(
    plan: &mut Deployment,
    interp: &mut Deployment,
    descs: &[Desc],
) -> TestCaseResult {
    for (i, d) in descs.iter().enumerate() {
        let p = packet(d);
        let a = plan.inject(p.clone());
        let b = interp.inject(p);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.len(), b.len(), "pkt {}: emission count", i);
                for (j, ((pa, fa), (pb, fb))) in a.iter().zip(&b).enumerate() {
                    prop_assert_eq!(pa, pb, "pkt {} emission {}: egress port", i, j);
                    prop_assert_eq!(fa.bytes(), fb.bytes(), "pkt {} emission {}: bytes", i, j);
                }
            }
            (Err(ea), Err(eb)) => {
                prop_assert_eq!(
                    ea.to_string(),
                    eb.to_string(),
                    "pkt {}: both errored but differently",
                    i
                );
            }
            (a, b) => {
                prop_assert!(
                    false,
                    "pkt {}: one engine errored (plan ok={}, interp ok={})",
                    i,
                    a.is_ok(),
                    b.is_ok()
                );
            }
        }
    }

    prop_assert_eq!(plan.stats, interp.stats, "deployment stats");
    prop_assert_eq!(plan.switch.stats, interp.switch.stats, "switch stats");
    prop_assert_eq!(plan.server.stats, interp.server.stats, "server stats");
    prop_assert!(
        plan.server.store == interp.server.store,
        "authoritative state stores diverge"
    );
    // Per-table telemetry counters must agree: the plan's lookup path and
    // the interpreter's must count the same hits/misses/evictions.
    let table_names: Vec<String> = plan
        .switch
        .program()
        .tables
        .iter()
        .map(|t| t.name.clone())
        .collect();
    for name in &table_names {
        let a = &plan.switch.table(name).unwrap().stats;
        let b = &interp.switch.table(name).unwrap().stats;
        prop_assert_eq!(a.hits.get(), b.hits.get(), "table {}: hits", name);
        prop_assert_eq!(a.misses.get(), b.misses.get(), "table {}: misses", name);
        prop_assert_eq!(
            a.evictions.get(),
            b.evictions.get(),
            "table {}: evictions",
            name
        );
    }
    prop_assert_eq!(
        plan.switch.drain_evictions(),
        interp.switch.drain_evictions(),
        "eviction queues"
    );
    prop_assert!(plan.replicated_consistent(), "plan replicated state");
    prop_assert!(interp.replicated_consistent(), "interp replicated state");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mazunat_plan_equals_interpreter(descs in stream(40)) {
        let nat = mazunat::mazunat();
        assert_equiv(&nat.prog, |_| {}, &[], &descs)?;
    }

    #[test]
    fn lb_plan_equals_interpreter(descs in stream(40)) {
        let l = lb::load_balancer();
        let backends = l.backends;
        assert_equiv(
            &l.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003]).unwrap(),
            &[],
            &descs,
        )?;
    }

    #[test]
    fn firewall_plan_equals_interpreter(descs in stream(40)) {
        let fw = firewall::firewall();
        let cfg = fw.clone();
        assert_equiv(
            &fw.prog,
            move |s| {
                // Whitelist part of the generator's flow space so streams
                // mix passes with drops.
                for saddr in 0..4u32 {
                    for daddr in 0..5u32 {
                        for sport in 0..4u16 {
                            cfg.allow(s, &FiveTuple {
                                saddr: 0x0A00_0000 + saddr,
                                daddr: 0x0B00_0000 + daddr,
                                sport: 1024 + sport,
                                dport: 80,
                                proto: IpProtocol::Tcp,
                            });
                        }
                    }
                }
            },
            &[],
            &descs,
        )?;
    }

    #[test]
    fn proxy_plan_equals_interpreter(descs in stream(40)) {
        let px = proxy::proxy(0x0A09_0909, 3128);
        let cfg = px.clone();
        assert_equiv(&px.prog, move |s| cfg.intercept(s, 80), &[], &descs)?;
    }

    #[test]
    fn trojan_plan_equals_interpreter(descs in stream(40)) {
        let tr = trojan::trojan_detector();
        assert_equiv(&tr.prog, |_| {}, &[], &descs)?;
    }

    #[test]
    fn minilb_plan_equals_interpreter(descs in stream(40)) {
        let ml = minilb::minilb();
        let backends = ml.backends;
        assert_equiv(
            &ml.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002]).unwrap(),
            &[],
            &descs,
        )?;
    }

    /// The inline-key table ([`TableKey`]'s `[u64; 4]` fast path plus the
    /// spilled fallback for wider keys) must be observationally identical
    /// to a plain `Vec<u64>`-keyed map with an explicit FIFO queue — the
    /// exact data structure it replaced. Random op streams over a small
    /// key domain (widths 1..=6, so both representations are exercised)
    /// drive a 3-entry cache-mode table and the model side by side.
    #[test]
    fn inline_key_table_equals_vec_keyed_model(
        ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(0u64..4, 1..=6), 0u64..100),
            1..120,
        )
    ) {
        use std::collections::{HashMap, VecDeque};

        const CAP: usize = 3;
        let mut table = gallium::switchsim::RtTable::new(CAP);
        table.make_cache(CAP);

        let mut model: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
        let mut order: VecDeque<Vec<u64>> = VecDeque::new();

        for (i, (op, key, val)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let evicted = table
                        .insert_main(key.clone(), vec![*val])
                        .expect("cache-mode insert cannot fail");
                    // Model: FIFO position fixed at first insert.
                    let mut model_evicted = Vec::new();
                    if !model.contains_key(key) {
                        while model.len() >= CAP {
                            let old = order.pop_front().unwrap();
                            model.remove(&old);
                            model_evicted.push(old);
                        }
                        order.push_back(key.clone());
                    }
                    model.insert(key.clone(), vec![*val]);
                    prop_assert_eq!(&evicted, &model_evicted, "op {}: evictions", i);
                }
                1 => {
                    let got = table.lookup_ref(key, false);
                    prop_assert_eq!(
                        got,
                        model.get(key).map(Vec::as_slice),
                        "op {}: lookup", i
                    );
                }
                _ => {
                    table.delete_main(key);
                    model.remove(key);
                    order.retain(|k| k != key);
                }
            }
            prop_assert_eq!(table.len(), model.len(), "op {}: len", i);
        }

        let mut got: Vec<_> = table.entries();
        let mut want: Vec<_> = model.into_iter().collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "final entry sets");
    }

    /// `inject_batch_into` must be observationally identical to calling
    /// `inject` per packet: same emissions (ports and bytes, in order),
    /// same counters, same authoritative state. The batch side is driven
    /// in chunks through one reused buffer to exercise the append (not
    /// clear) contract across calls.
    #[test]
    fn inject_batch_equals_per_packet_inject(descs in stream(40)) {
        let nat = mazunat::mazunat();
        let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
        let mut seq =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        let mut bat =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();

        let mut expected = Vec::new();
        for d in &descs {
            expected.extend(seq.inject(packet(d)).unwrap());
        }

        let mut out = Vec::new();
        let mut done = 0;
        for chunk in descs.chunks(8) {
            done += bat
                .inject_batch_into(chunk.iter().map(packet), &mut out)
                .unwrap();
        }
        prop_assert_eq!(done, descs.len(), "all packets processed");
        prop_assert_eq!(out.len(), expected.len(), "emission count");
        for (i, ((pa, fa), (pb, fb))) in out.iter().zip(&expected).enumerate() {
            prop_assert_eq!(pa, pb, "emission {}: egress port", i);
            prop_assert_eq!(fa.bytes(), fb.bytes(), "emission {}: bytes", i);
        }
        prop_assert_eq!(seq.stats, bat.stats, "deployment stats");
        prop_assert_eq!(seq.switch.stats, bat.switch.stats, "switch stats");
        prop_assert_eq!(seq.server.stats, bat.server.stats, "server stats");
        prop_assert!(seq.server.store == bat.server.store, "state stores diverge");
        prop_assert!(bat.replicated_consistent(), "batch replicated state");
    }

    /// The PR 10 read-optimized layout: a plain (non-cache) table serving
    /// exact-match lookups through the hash-and-displace perfect-hash
    /// layout — with its delta overlay, epoch tracking, and incremental
    /// rebuilds — must stay bit-identical to a `HashMap` model under
    /// random insert/delete/lookup/flush interleavings. Widths 1..=6
    /// exercise both the inline fast path and the spilled fallback that
    /// deactivates the layout (and its reactivation once the spilled key
    /// is deleted and the layout rebuilt).
    #[test]
    fn perfect_hash_layout_equals_map_model(
        ops in proptest::collection::vec(
            (0u8..4, proptest::collection::vec(0u64..4, 1..=6), 0u64..100),
            1..160,
        )
    ) {
        use std::collections::HashMap;

        const CAP: usize = 16;
        let mut table = gallium::switchsim::RtTable::new(CAP);
        let mut model: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();

        for (i, (op, key, val)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let full = model.len() >= CAP && !model.contains_key(key);
                    let got = table.insert_main(key.clone(), vec![*val]);
                    if full {
                        // Plain tables error at capacity; nothing mutates.
                        prop_assert!(got.is_err(), "op {}: full insert must fail", i);
                    } else {
                        prop_assert_eq!(
                            got.expect("in-capacity insert"),
                            Vec::<Vec<u64>>::new(),
                            "op {}: plain tables never evict", i
                        );
                        model.insert(key.clone(), vec![*val]);
                    }
                }
                1 => {
                    let got = table.lookup_ref(key, false);
                    prop_assert_eq!(
                        got,
                        model.get(key).map(Vec::as_slice),
                        "op {}: lookup", i
                    );
                }
                2 => {
                    table.delete_main(key);
                    model.remove(key);
                }
                _ => {
                    // Force a rebuild mid-stream: afterwards the layout
                    // serves iff every resident key fits inline, and the
                    // delta overlay is folded in either way.
                    table.flush_layout();
                    let all_inline = model
                        .keys()
                        .all(|k| k.len() <= gallium::switchsim::INLINE_KEY_WORDS);
                    prop_assert_eq!(
                        table.layout_active(),
                        all_inline,
                        "op {}: layout activity", i
                    );
                    prop_assert_eq!(table.pending_delta(), 0, "op {}: delta folded", i);
                }
            }
            prop_assert_eq!(table.len(), model.len(), "op {}: len", i);
        }

        // Final rebuild, then a full sweep: every resident key and a
        // displaced probe set of absent keys must answer bit-identically
        // through the freshly built layout.
        table.flush_layout();
        for (k, v) in &model {
            prop_assert_eq!(table.lookup_ref(k, false), Some(v.as_slice()), "final hit sweep");
        }
        for k in model.keys() {
            let mut absent = k.clone();
            absent[0] ^= 0x8000_0000_0000_0000;
            prop_assert_eq!(
                table.lookup_ref(&absent, false),
                model.get(&absent).map(Vec::as_slice),
                "final miss sweep"
            );
        }
        let got: Vec<_> = table.entries();
        let mut want: Vec<_> = model.into_iter().collect();
        want.sort();
        prop_assert_eq!(got, want, "final entry sets");
    }

    /// Cache mode (§7): a 2-entry FIFO cache on the LB connection table.
    /// Any stream with ≥3 distinct flows thrashes it, exercising eviction
    /// on the control-plane fill path and cache-miss→replay on the data
    /// path — both must match the interpreter event for event.
    #[test]
    fn lb_cached_eviction_and_replay(descs in stream(60)) {
        let l = lb::load_balancer();
        let backends = l.backends;
        let caches = [(l.conn, 2usize)];
        assert_equiv(
            &l.prog,
            move |s| s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003]).unwrap(),
            &caches,
            &descs,
        )?;
    }
}

// ---- PR 8: register-allocating expression compiler ------------------------

use gallium::mir::{BinOp, HeaderField};
use gallium::p4::P4Expr;
use gallium::switchsim::expr_check;

/// Metadata pool available to generated expressions: mixed declared
/// widths, including sub-word slots whose seeds may exceed the width
/// (mirroring how table values land in slots unmasked at runtime).
const META_DECLS: [(&str, u16); 4] = [("m0", 8), ("m1", 16), ("m2", 32), ("m3", 64)];

fn expr_metas(seeds: [u64; 4]) -> Vec<(String, u16, u64)> {
    META_DECLS
        .iter()
        .zip(seeds)
        .map(|((name, bits), v)| (name.to_string(), *bits, v))
        .collect()
}

/// Self-contained splitmix64 driving the recursive expression generator
/// (the vendored proptest stub has no recursive strategy combinator, so
/// the strategy supplies one seed and the tree unfolds deterministically).
struct XRng(u64);

impl XRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const GEN_OPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

const GEN_HEADERS: [HeaderField; 4] = [
    HeaderField::IpSaddr,
    HeaderField::IpDaddr,
    HeaderField::SrcPort,
    HeaderField::DstPort,
];

/// Random expression tree. Leaves are weighted toward the constants the
/// compiler folds aggressively (0, 1, MAX, small shift counts ≥ 64) so
/// div/mod-by-zero, shift-out-of-range, and algebraic-identity paths are
/// hit constantly; interior nodes cover every operator including the
/// non-P4 Mul/Div/Mod.
fn gen_expr(r: &mut XRng, depth: u32) -> P4Expr {
    if depth == 0 || r.below(4) == 0 {
        return match r.below(8) {
            0 => P4Expr::Const(r.next(), 64),
            1 => P4Expr::Const(r.below(3), 8),
            2 => P4Expr::Const(u64::MAX, 64),
            3 => P4Expr::Const(60 + r.below(10), 8),
            4 | 5 => P4Expr::Meta(format!("m{}", r.below(4))),
            6 => P4Expr::Header(GEN_HEADERS[r.below(4) as usize]),
            _ => P4Expr::IngressPort,
        };
    }
    match r.below(8) {
        0..=4 => {
            let op = GEN_OPS[r.below(16) as usize];
            P4Expr::Bin(
                op,
                Box::new(gen_expr(r, depth - 1)),
                Box::new(gen_expr(r, depth - 1)),
            )
        }
        5 => P4Expr::Not(Box::new(gen_expr(r, depth - 1))),
        6 => P4Expr::Cast(Box::new(gen_expr(r, depth - 1)), (r.below(64) + 1) as u8),
        _ => {
            let n = 1 + r.below(3) as usize;
            let parts = (0..n).map(|_| gen_expr(r, depth - 1)).collect();
            P4Expr::Hash(parts, (r.below(64) + 1) as u8)
        }
    }
}

/// Deterministic edge cases the random generator covers only
/// probabilistically: div/mod by zero, shifts ≥ 64, narrowing cast
/// chains, and self-referential operands (which the compiler folds).
#[test]
fn compiled_expr_edge_cases() {
    let metas = expr_metas([0xFFFF_FFFF_FFFF_FFFF, 0x1234, 7, 0]);
    let pkt = packet(&(1, 2, 1, 2, 1, 0));
    let m = |n: &str| Box::new(P4Expr::Meta(n.to_string()));
    let c = |v: u64| Box::new(P4Expr::Const(v, 64));
    let cases = [
        P4Expr::Bin(BinOp::Div, m("m0"), c(0)),
        P4Expr::Bin(BinOp::Mod, m("m0"), c(0)),
        P4Expr::Bin(BinOp::Div, m("m0"), m("m3")),
        P4Expr::Bin(BinOp::Mod, m("m2"), m("m3")),
        P4Expr::Bin(BinOp::Shl, m("m0"), c(64)),
        P4Expr::Bin(BinOp::Shr, m("m0"), c(65)),
        P4Expr::Bin(BinOp::Shl, m("m0"), m("m1")),
        P4Expr::Bin(BinOp::Sub, m("m1"), m("m1")),
        P4Expr::Bin(BinOp::Xor, m("m0"), m("m0")),
        P4Expr::Cast(Box::new(P4Expr::Cast(m("m0"), 48)), 12),
        P4Expr::Cast(m("m0"), 64),
        P4Expr::Not(c(0)),
        P4Expr::Hash(vec![P4Expr::Const(1, 64), P4Expr::Const(2, 64)], 16),
        P4Expr::Hash(vec![P4Expr::Meta("m0".into()), P4Expr::IngressPort], 32),
        // Sub-width slot seeded past its declared width: reads must see
        // the raw value, not a re-masked one.
        P4Expr::Bin(BinOp::Add, m("m0"), c(1)),
    ];
    for (i, e) in cases.iter().enumerate() {
        let want = expr_check::reference_eval(e, &metas, &pkt);
        let fused = expr_check::compiled_eval(e, &metas, &pkt, true).expect("fused compiles");
        let unfused = expr_check::compiled_eval(e, &metas, &pkt, false).expect("unfused compiles");
        assert_eq!(fused, want, "case {i}: fused");
        assert_eq!(unfused, want, "case {i}: unfused");
    }
}

/// A middlebox program paired with its standard state configuration.
type ConfiguredProgram = (Program, Box<dyn Fn(&mut StateStore)>);

/// All six packaged middleboxes with their standard state configuration,
/// for properties that sweep the whole program suite.
fn all_middleboxes() -> Vec<ConfiguredProgram> {
    let mut out: Vec<ConfiguredProgram> = Vec::new();
    let nat = mazunat::mazunat();
    out.push((nat.prog, Box::new(|_| {})));
    let l = lb::load_balancer();
    let backends = l.backends;
    out.push((
        l.prog,
        Box::new(move |s| {
            s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
                .unwrap()
        }),
    ));
    let fw = firewall::firewall();
    let cfg = fw.clone();
    out.push((
        fw.prog,
        Box::new(move |s| {
            for saddr in 0..3u32 {
                for sport in 0..3u16 {
                    cfg.allow(
                        s,
                        &FiveTuple {
                            saddr: 0x0A00_0000 + saddr,
                            daddr: 0x0B00_0000,
                            sport: 1024 + sport,
                            dport: 80,
                            proto: IpProtocol::Tcp,
                        },
                    );
                }
            }
        }),
    ));
    let px = proxy::proxy(0x0A09_0909, 3128);
    let pcfg = px.clone();
    out.push((px.prog, Box::new(move |s| pcfg.intercept(s, 80))));
    let tr = trojan::trojan_detector();
    out.push((tr.prog, Box::new(|_| {})));
    let ml = minilb::minilb();
    let mbackends = ml.backends;
    out.push((
        ml.prog,
        Box::new(move |s| {
            s.vec_set_all(mbackends, vec![0xC0A8_0001, 0xC0A8_0002])
                .unwrap()
        }),
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The register-allocating expression compiler (fused and unfused)
    /// must agree bit-for-bit with the AST interpreter's evaluator on
    /// random expression trees — including width masking, div/mod by
    /// zero, oversized shifts, and unmasked metadata seeds.
    #[test]
    fn compiled_expr_equals_reference(
        seed in any::<u64>(),
        s0 in any::<u64>(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        s3 in any::<u64>(),
        d in desc(),
    ) {
        let mut r = XRng(seed);
        let expr = gen_expr(&mut r, 4);
        let metas = expr_metas([s0, s1, s2, s3]);
        let pkt = packet(&d);
        let want = expr_check::reference_eval(&expr, &metas, &pkt);
        let fused = expr_check::compiled_eval(&expr, &metas, &pkt, true)
            .expect("fused compiles");
        let unfused = expr_check::compiled_eval(&expr, &metas, &pkt, false)
            .expect("unfused compiles");
        prop_assert_eq!(fused, want, "fused vs reference");
        prop_assert_eq!(unfused, want, "unfused vs reference");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fused plan (`BuildKeyProbe` superinstructions, CSE across
    /// statements, dead-store elimination, folded branches) must be
    /// observationally identical to the unfused statement-per-op lowering
    /// for every packaged middlebox.
    #[test]
    fn fused_probe_equals_unfused_sequence(descs in stream(24)) {
        for (prog, configure) in all_middleboxes() {
            let compiled = compile(&prog, &SwitchModel::tofino_like()).expect("compiles");
            let mut fused = Deployment::new(
                &compiled,
                SwitchConfig::default(),
                CostModel::calibrated(),
            )
            .unwrap();
            let unfused_cfg = SwitchConfig {
                plan_fusion: false,
                ..SwitchConfig::default()
            };
            let mut unfused = Deployment::new(
                &compiled,
                unfused_cfg,
                CostModel::calibrated(),
            )
            .unwrap();
            fused.configure(|s| configure(s)).unwrap();
            unfused.configure(|s| configure(s)).unwrap();
            assert_observably_equal(&mut fused, &mut unfused, &descs)?;
        }
    }
}
