//! plan_check — symbolically validate the compiled dataplane plan for
//! every packaged middlebox (plus MiniLB), then run a deterministic
//! differential check, and exit nonzero if anything diverges.
//!
//! Three layers, each independent evidence that the micro-op compiler is
//! faithful:
//!
//! 1. **Translation validation** ([`gallium::verify::verify_plan`]):
//!    prove the fused and unfused `ExecPlan` micro-op streams equal to
//!    the P4 AST node by node over symbolic terms, and report
//!    abstract-interpretation lints (dead branches, constant guards,
//!    degenerate key words, unobservable stores).
//! 2. **Load-time hook**: stand up deployments with
//!    `SwitchConfig::validate_plan` forced on — the same check release
//!    builds can opt into — for both the fused and unfused compiler
//!    configurations.
//! 3. **Deterministic differential**: drive an identical fixed packet
//!    stream through the plan and the reference AST interpreter and
//!    require byte-identical emissions and equal counters.
//!
//! ```text
//! cargo run --release --bin plan_check
//! ```

use gallium::middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::prelude::*;

/// One packet of the fixed stream: indices into small pools, so the
/// stream mixes repeated flows (hits) with fresh ones (misses/inserts).
type Desc = (u32, u32, u16, usize, usize, u8);

const DPORTS: [u16; 7] = [22, 21, 80, 80, 443, 6667, 3128];
const FLAGS: [u8; 5] = [
    TcpFlags::SYN,
    TcpFlags::ACK,
    TcpFlags::ACK,
    TcpFlags::FIN | TcpFlags::ACK,
    TcpFlags::RST,
];

/// Deterministic xorshift64* so every run checks the identical stream.
struct XRng(u64);

impl XRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn stream(len: usize) -> Vec<Desc> {
    let mut r = XRng(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            (
                r.below(9) as u32,
                r.below(5) as u32,
                r.below(4) as u16,
                r.below(7) as usize,
                r.below(5) as usize,
                r.below(8) as u8,
            )
        })
        .collect()
}

fn packet(d: &Desc) -> Packet {
    let (s, da, sp, dp, fl, misc) = *d;
    // Occasionally probe the NAT external mapping range, like real
    // return traffic would.
    if misc == 7 {
        return PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0B00_0000 + da,
                daddr: mazunat::NAT_EXTERNAL_IP,
                sport: 9000 + sp,
                dport: mazunat::NAT_PORT_BASE + u16::from(misc),
                proto: IpProtocol::Tcp,
            },
            TcpFlags(FLAGS[fl]),
            96,
        )
        .build(PortId(EXTERNAL_PORT));
    }
    let ingress = if misc & 1 == 0 {
        INTERNAL_PORT
    } else {
        EXTERNAL_PORT
    };
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0000 + s,
            daddr: 0x0B00_0000 + da,
            sport: 1024 + sp,
            dport: DPORTS[dp],
            proto: IpProtocol::Tcp,
        },
        TcpFlags(FLAGS[fl]),
        64 + 8 * usize::from(misc),
    )
    .build(PortId(ingress))
}

/// A middlebox program paired with its standard state configuration.
type ConfiguredProgram = (&'static str, Program, Box<dyn Fn(&mut StateStore)>);

fn all_programs() -> Vec<ConfiguredProgram> {
    let mut out: Vec<ConfiguredProgram> = Vec::new();
    let nat = mazunat::mazunat();
    out.push(("MazuNAT", nat.prog, Box::new(|_| {})));
    let l = lb::load_balancer();
    let backends = l.backends;
    out.push((
        "LoadBalancer",
        l.prog,
        Box::new(move |s| {
            s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
                .unwrap()
        }),
    ));
    let fw = firewall::firewall();
    let cfg = fw.clone();
    out.push((
        "Firewall",
        fw.prog,
        Box::new(move |s| {
            for saddr in 0..3u32 {
                for sport in 0..3u16 {
                    cfg.allow(
                        s,
                        &FiveTuple {
                            saddr: 0x0A00_0000 + saddr,
                            daddr: 0x0B00_0000,
                            sport: 1024 + sport,
                            dport: 80,
                            proto: IpProtocol::Tcp,
                        },
                    );
                }
            }
        }),
    ));
    let px = proxy::proxy(0x0A09_0909, 3128);
    let pcfg = px.clone();
    out.push((
        "WebProxy",
        px.prog,
        Box::new(move |s| pcfg.intercept(s, 80)),
    ));
    let tr = trojan::trojan_detector();
    out.push(("TrojanDetector", tr.prog, Box::new(|_| {})));
    let ml = minilb::minilb();
    let mbackends = ml.backends;
    out.push((
        "MiniLB",
        ml.prog,
        Box::new(move |s| {
            s.vec_set_all(mbackends, vec![0xC0A8_0001, 0xC0A8_0002])
                .unwrap()
        }),
    ));
    out
}

/// Build a deployment with the load-time symbolic validator forced on.
fn deploy(compiled: &CompiledMiddlebox, fusion: bool, plan: bool) -> Result<Deployment, String> {
    let cfg = SwitchConfig {
        plan_fusion: fusion,
        validate_plan: true,
        ..SwitchConfig::default()
    };
    let r = if plan {
        Deployment::new(compiled, cfg, CostModel::calibrated())
    } else {
        Deployment::new_interpreter(compiled, cfg, CostModel::calibrated())
    };
    r.map_err(|e| e.to_string())
}

/// One packet's observable outcome, flattened for comparison.
type Outcome = Result<Vec<(PortId, Vec<u8>)>, String>;

fn outcome(d: &mut Deployment, p: Packet) -> Outcome {
    d.inject(p)
        .map(|em| {
            em.into_iter()
                .map(|(port, frame)| (port, frame.bytes().to_vec()))
                .collect()
        })
        .map_err(|e| e.to_string())
}

/// Single-pass three-way differential: every deployment sees the
/// identical stream, and each packet's outcome is compared against the
/// reference (the first deployment). Counts mismatches.
fn differential(engines: &mut [(&'static str, &mut Deployment)], descs: &[Desc]) -> usize {
    let mut bad = 0usize;
    for (i, d) in descs.iter().enumerate() {
        let p = packet(d);
        let outs: Vec<Outcome> = engines
            .iter_mut()
            .map(|(_, e)| outcome(e, p.clone()))
            .collect();
        for (j, o) in outs.iter().enumerate().skip(1) {
            if o != &outs[0] {
                println!(
                    "  DIVERGENCE pkt {i}: {} disagrees with {}",
                    engines[j].0, engines[0].0
                );
                bad += 1;
            }
        }
    }
    for j in 1..engines.len() {
        if engines[j].1.stats != engines[0].1.stats {
            println!(
                "  DIVERGENCE: deployment stats differ ({} vs {})",
                engines[j].0, engines[0].0
            );
            bad += 1;
        }
        if engines[j].1.switch.stats != engines[0].1.switch.stats {
            println!(
                "  DIVERGENCE: switch stats differ ({} vs {})",
                engines[j].0, engines[0].0
            );
            bad += 1;
        }
    }
    bad
}

fn main() {
    let model = SwitchModel::tofino_like();
    let descs = stream(64);
    let mut failures = 0usize;

    for (name, prog, configure) in all_programs() {
        let compiled = match compile(&prog, &model) {
            Ok(c) => c,
            Err(e) => {
                println!("plan-verify: {name} — COMPILE FAILED: {e}");
                failures += 1;
                continue;
            }
        };

        // Layer 1: symbolic translation validation + abstract
        // interpretation lints, fused and unfused.
        let report = gallium::verify::verify_plan(&compiled.p4);
        print!("{}", report.render_text());
        if !report.is_clean() {
            failures += report.errors.len();
        }

        // Layer 2: the load-time hook, both compiler configurations.
        let mut loaded = Vec::new();
        for fusion in [true, false] {
            match deploy(&compiled, fusion, true) {
                Ok(d) => loaded.push((fusion, d)),
                Err(e) => {
                    println!(
                        "  LOAD FAILED ({}): {e}",
                        if fusion { "fused" } else { "unfused" }
                    );
                    failures += 1;
                }
            }
        }

        // Layer 3: deterministic three-way differential — the reference
        // AST interpreter against the fused and unfused plans, over the
        // identical fixed stream.
        if loaded.len() == 2 {
            let mut it = loaded.into_iter();
            let (_, mut fused) = it.next().unwrap();
            let (_, mut unfused) = it.next().unwrap();
            let mut interp = match deploy(&compiled, true, false) {
                Ok(d) => d,
                Err(e) => {
                    println!("  INTERPRETER LOAD FAILED: {e}");
                    failures += 1;
                    println!();
                    continue;
                }
            };
            assert!(fused.switch.uses_plan(), "{name}: plan deployment on plan");
            assert!(!interp.switch.uses_plan(), "{name}: interp stayed on AST");
            fused.configure(|s| configure(s)).unwrap();
            unfused.configure(|s| configure(s)).unwrap();
            interp.configure(|s| configure(s)).unwrap();
            let bad = differential(
                &mut [
                    ("interpreter", &mut interp),
                    ("fused plan", &mut fused),
                    ("unfused plan", &mut unfused),
                ],
                &descs,
            );
            if bad == 0 {
                println!(
                    "  differential: ok ({} packets, interp≡fused≡unfused)",
                    descs.len()
                );
            }
            failures += bad;
        }
        println!();
    }

    let snapshot = gallium::telemetry::global().snapshot();
    println!("=== telemetry snapshot (json) ===");
    print!("{}", snapshot.to_json());

    if failures > 0 {
        eprintln!("plan_check: {failures} failures");
        std::process::exit(1);
    }
}
