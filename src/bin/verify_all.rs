//! verify_all — compile every packaged middlebox (plus MiniLB) with the
//! independent verifier forced on, print each program's verification
//! verdict and per-stage resource audit, and exit nonzero if any
//! error-severity finding (or compile failure) occurred.
//!
//! ```text
//! cargo run --bin verify_all
//! ```

use gallium::prelude::*;

fn main() {
    let model = SwitchModel::tofino_like();
    let mut programs = gallium::middleboxes::all_evaluated();
    programs.push(("MiniLB", gallium::middleboxes::minilb::minilb().prog));

    let mut error_findings = 0usize;
    for (name, prog) in &programs {
        match compile_with(prog, &model, CompileOptions { verify: true }) {
            Ok(compiled) => {
                let report = compiled.verify.expect("verification was requested");
                print!("{}", report.render_text());
                error_findings += report.error_count();
            }
            Err(e) => {
                println!("verify: {name} — COMPILE FAILED: {e}");
                error_findings += 1;
            }
        }
        println!();
    }

    let snapshot = gallium::telemetry::global().snapshot();
    println!("=== telemetry snapshot (json) ===");
    print!("{}", snapshot.to_json());

    if error_findings > 0 {
        eprintln!("verify_all: {error_findings} error-severity findings");
        std::process::exit(1);
    }
}
