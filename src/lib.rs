//! # gallium — automated software middlebox offloading to programmable switches
//!
//! A from-scratch Rust reproduction of *Gallium: Automated Software
//! Middlebox Offloading to Programmable Switches* (Zhang, Zhuo,
//! Krishnamurthy — SIGCOMM 2020). The facade crate re-exports the pieces a
//! downstream user composes:
//!
//! ```
//! use gallium::prelude::*;
//!
//! // 1. Author a middlebox (here: the paper's MiniLB running example).
//! let lb = gallium::middleboxes::minilb::minilb();
//!
//! // 2. Compile it for a Tofino-class switch.
//! let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
//! assert!(compiled.p4_source.contains("table map"));
//!
//! // 3. Deploy: switch simulator + middlebox server + state sync.
//! let mut d = Deployment::new(&compiled, SwitchConfig::default(),
//!                             CostModel::calibrated()).unwrap();
//! d.configure(|store| lb.configure(store, &[0xC0A8_0001, 0xC0A8_0002])).unwrap();
//!
//! // 4. Push packets through it.
//! let pkt = PacketBuilder::tcp(
//!     FiveTuple { saddr: 1, daddr: 2, sport: 3, dport: 80,
//!                 proto: IpProtocol::Tcp },
//!     TcpFlags(TcpFlags::SYN), 100).build(PortId(1));
//! let out = d.inject(pkt).unwrap();
//! assert_eq!(out.len(), 1);
//! ```
//!
//! See DESIGN.md for the crate map and EXPERIMENTS.md for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]

pub use gallium_analysis as analysis;
pub use gallium_click as click;
pub use gallium_core as core;
pub use gallium_middleboxes as middleboxes;
pub use gallium_mir as mir;
pub use gallium_net as net;
pub use gallium_p4 as p4;
pub use gallium_partition as partition;
pub use gallium_server as server;
pub use gallium_sim as sim;
pub use gallium_switchsim as switchsim;
pub use gallium_telemetry as telemetry;
pub use gallium_verify as verify;
pub use gallium_workloads as workloads;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use gallium_core::{
        compile, compile_with, CompileOptions, CompiledMiddlebox, Deployment, TraceReport,
    };
    pub use gallium_mir::{FuncBuilder, Interpreter, Program, StateStore};
    pub use gallium_net::{FiveTuple, IpProtocol, Packet, PacketBuilder, PortId, TcpFlags};
    pub use gallium_partition::{Partition, StagedProgram, StatePlacement, SwitchModel};
    pub use gallium_server::CostModel;
    pub use gallium_switchsim::{Switch, SwitchConfig};
    pub use gallium_telemetry::TelemetrySnapshot;
    pub use gallium_verify::{VerifyError, VerifyReport};
}
