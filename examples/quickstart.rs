//! Quickstart: compile the paper's MiniLB running example, inspect every
//! compiler artifact, and push a few packets through the deployed
//! switch+server pipeline.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gallium::middleboxes::minilb::minilb;
use gallium::mir::interp::read_header_field;
use gallium::mir::HeaderField;
use gallium::prelude::*;

fn main() {
    // 1. The input middlebox (§4's MiniLB, authored against the MIR
    //    builder exactly as the Click frontend would emit it).
    let lb = minilb();
    println!("=== input program (MIR) ===");
    println!("{}", gallium::mir::printer::print_program(&lb.prog));

    // 2. Compile for a Tofino-class switch. The explain report renders
    //    each instruction's partition with the §4 reason it landed there.
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).expect("compiles");
    println!("=== partitioning (Figure 4, explain report) ===");
    println!("{}", compiled.explain.render_text());
    println!("=== transfer headers (Figure 5) ===");
    println!(
        "  switch -> server: {:?} ({} bytes on the wire)",
        compiled
            .staged
            .header_to_server
            .fields()
            .iter()
            .map(|f| format!("{}:{}b", f.name, f.bits))
            .collect::<Vec<_>>(),
        compiled.staged.header_to_server.wire_bytes()
    );
    println!(
        "  server -> switch: {:?} ({} bytes)",
        compiled
            .staged
            .header_to_switch
            .fields()
            .iter()
            .map(|f| format!("{}:{}b", f.name, f.bits))
            .collect::<Vec<_>>(),
        compiled.staged.header_to_switch.wire_bytes()
    );

    println!();
    println!("=== generated P4 ({} lines) ===", compiled.p4_loc());
    for line in compiled.p4_source.lines().take(25) {
        println!("  {line}");
    }
    println!("  …");
    println!();
    println!(
        "=== generated server code ({} lines) ===",
        compiled.server_loc()
    );
    println!("{}", compiled.server_source);

    // 3. Deploy and run traffic.
    let mut d = Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated())
        .expect("loads onto the switch");
    d.configure(|store| lb.configure(store, &[0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003]))
        .expect("configured");

    println!("=== traffic ===");
    for (i, flags) in [TcpFlags::SYN, TcpFlags::ACK, TcpFlags::ACK]
        .iter()
        .enumerate()
    {
        let pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A00_0001,
                daddr: 0x0A00_00FE,
                sport: 44_000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(*flags),
            120,
        )
        .build(PortId(1));
        let out = d.inject(pkt).expect("processed");
        let daddr = read_header_field(out[0].1.bytes(), HeaderField::IpDaddr);
        println!(
            "  packet {}: steered to backend {:#x} ({})",
            i + 1,
            daddr,
            if i == 0 {
                "slow path — server assigned it"
            } else {
                "fast path — switch only"
            },
        );
    }
    println!();
    println!(
        "fast path fraction: {:.0}%  |  sync latency paid once: {} µs  |  replicated state consistent: {}",
        100.0 * d.fast_path_fraction(),
        d.stats.sync_visible_ns / 1000,
        d.replicated_consistent(),
    );

    // 4. One machine-readable artifact for the whole run: compiler pass
    //    timings, partition decisions, switch table hit/miss counters, and
    //    server slow-path stats, merged into a single snapshot.
    println!();
    println!("=== telemetry snapshot (json) ===");
    print!("{}", d.telemetry_snapshot().to_json());
}
