//! The Trojan detector watching mixed traffic: one compromised host walks
//! the SSH → download → IRC sequence among innocent bystanders; only the
//! packets that advance the state machine (or need DPI) touch the server.
//!
//! ```text
//! cargo run --example trojan_hunt
//! ```

use gallium::middleboxes::trojan::{trojan_detector, IRC_PORT, STAGE_TROJAN};
use gallium::prelude::*;

fn pkt(saddr: u32, dport: u16, flags: u8, payload: &[u8]) -> Packet {
    let mut b = PacketBuilder::tcp(
        FiveTuple {
            saddr,
            daddr: 0x0808_0808,
            sport: 40_000,
            dport,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(flags),
        120,
    );
    if !payload.is_empty() {
        b = b.payload(payload.to_vec());
    }
    b.build(PortId(1))
}

fn main() {
    let det = trojan_detector();
    let compiled = compile(&det.prog, &SwitchModel::tofino_like()).expect("compiles");
    println!(
        "Trojan detector compiled: {}/{} statements offloaded; DPI stays on the server",
        compiled.staged.offloaded_count(),
        det.prog.func.len()
    );

    let mut d = Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated())
        .expect("loads");

    const MALLORY: u32 = 0x0A00_0066;
    const ALICE: u32 = 0x0A00_0001;

    // Innocent bulk traffic from Alice — all fast path.
    for _ in 0..200 {
        d.inject(pkt(ALICE, 443, TcpFlags::ACK, b"tls application data"))
            .unwrap();
    }

    // Mallory walks the trojan sequence, interleaved with more noise.
    d.inject(pkt(MALLORY, 22, TcpFlags::SYN, b"")).unwrap();
    for _ in 0..100 {
        d.inject(pkt(ALICE, 443, TcpFlags::ACK, b"tls")).unwrap();
    }
    d.inject(pkt(MALLORY, 21, TcpFlags::ACK, b"RETR payload.exe"))
        .unwrap();
    for _ in 0..100 {
        d.inject(pkt(ALICE, 443, TcpFlags::ACK, b"tls")).unwrap();
    }
    d.inject(pkt(MALLORY, IRC_PORT, TcpFlags::ACK, b"NICK owned"))
        .unwrap();

    let stage = d
        .server
        .store
        .map_get(det.host_state, &[u64::from(MALLORY)])
        .unwrap()
        .map(|v| v[0])
        .unwrap_or(0);
    println!();
    println!(
        "10.0.0.102 stage = {stage} ({})",
        if stage == STAGE_TROJAN {
            "TROJAN — SSH, then a suspicious download, then IRC"
        } else {
            "not flagged"
        }
    );
    println!(
        "Alice's stage = {}",
        d.server
            .store
            .map_get(det.host_state, &[u64::from(ALICE)])
            .unwrap()
            .map(|v| v[0])
            .unwrap_or(0)
    );
    println!();
    println!(
        "{} packets total; {:.2}% visited the server (DPI + state updates), the rest were switch-only",
        d.stats.injected,
        100.0 * d.stats.slow_path as f64 / d.stats.injected as f64,
    );
    assert_eq!(stage, STAGE_TROJAN);
}
