//! Authoring a middlebox with the Click-style element graph, then
//! compiling the lowered program: a small ingress filter that counts
//! packets, drops SSH from outside, and redirects web traffic.
//!
//! ```text
//! cargo run --example click_pipeline
//! ```

use gallium::click::{Classifier, ClassifyRule, Counter, Discard, Graph, HeaderRewrite, SendOut};
use gallium::mir::HeaderField;
use gallium::prelude::*;

fn main() {
    // counter -> classifier ──[dst 22]──> discard
    //                        ──[dst 80]──> rewrite daddr -> cache, send
    //                        ──[else]────> send
    let mut g = Graph::new();
    let counter = g.add(Box::new(Counter::new("total_pkts")));
    let cls = g.add(Box::new(Classifier::new(vec![
        ClassifyRule::DstPort(22),
        ClassifyRule::DstPort(80),
    ])));
    let discard = g.add(Box::new(Discard));
    let to_cache = g.add(Box::new(HeaderRewrite::new(vec![(
        HeaderField::IpDaddr,
        0x0A09_0909,
    )])));
    let out_web = g.add(Box::new(SendOut));
    let out_rest = g.add(Box::new(SendOut));
    g.connect(counter, 0, cls);
    g.connect(cls, 0, discard);
    g.connect(cls, 1, to_cache);
    g.connect(to_cache, 0, out_web);
    g.connect(cls, 2, out_rest);

    // Lowering inlines the element chain into one MIR program — exactly
    // the paper's "Gallium inlines all other function calls" step.
    let prog = g.lower("ingress_filter").expect("well-formed graph");
    println!("=== lowered program ===");
    println!("{}", gallium::mir::printer::print_program(&prog));

    let compiled = compile(&prog, &SwitchModel::tofino_like()).expect("compiles");
    println!(
        "offloaded {}/{} statements; fully offloaded: {}",
        compiled.staged.offloaded_count(),
        prog.func.len(),
        compiled.staged.fully_offloaded(),
    );

    let mut d = Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated())
        .expect("loads");

    let mk = |dport: u16| {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A00_0001,
                daddr: 0x0808_0808,
                sport: 5_000,
                dport,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            100,
        )
        .build(PortId(1))
    };
    for (dport, what) in [(22u16, "ssh"), (80, "web"), (443, "tls")] {
        let out = d.inject(mk(dport)).unwrap();
        match out.first() {
            None => println!("{what:>4} :{dport} -> dropped"),
            Some((_, p)) => println!(
                "{what:>4} :{dport} -> forwarded to {}",
                gallium::net::ipv4::fmt_addr(gallium::mir::interp::read_header_field(
                    p.bytes(),
                    HeaderField::IpDaddr
                ) as u32)
            ),
        }
    }
    // The counter register lives on the switch.
    println!(
        "switch-side packet counter: {}",
        d.switch.register("total_pkts").unwrap()
    );
}
