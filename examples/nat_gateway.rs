//! Offloaded MazuNAT as an internet gateway: an internal client opens
//! connections through the NAT; replies are translated back on the switch
//! fast path; unsolicited traffic is dropped in the data plane.
//!
//! ```text
//! cargo run --example nat_gateway
//! ```

use gallium::middleboxes::mazunat::{mazunat, NAT_EXTERNAL_IP, NAT_PORT_BASE};
use gallium::middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium::mir::interp::read_header_field;
use gallium::mir::HeaderField;
use gallium::net::ipv4::fmt_addr;
use gallium::prelude::*;

fn tcp(t: FiveTuple, flags: u8, ingress: u16) -> Packet {
    PacketBuilder::tcp(t, TcpFlags(flags), 100).build(PortId(ingress))
}

fn main() {
    let nat = mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
    println!(
        "MazuNAT compiled: {}/{} statements offloaded, {} P4 tables, {} register(s)",
        compiled.staged.offloaded_count(),
        nat.prog.func.len(),
        compiled.p4.tables.len(),
        compiled.p4.registers.len(),
    );
    println!();
    println!("=== explain report ===");
    println!("{}", compiled.explain.render_text());

    let mut d = Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated())
        .expect("loads");

    // Three internal clients open connections to an external web server.
    let server = 0x0808_0808u32;
    for (i, client) in [0x0A00_0005u32, 0x0A00_0006, 0x0A00_0007]
        .iter()
        .enumerate()
    {
        let t = FiveTuple {
            saddr: *client,
            daddr: server,
            sport: 51_000 + i as u16,
            dport: 443,
            proto: IpProtocol::Tcp,
        };
        let out = d.inject(tcp(t, TcpFlags::SYN, INTERNAL_PORT)).unwrap();
        let (sa, sp) = (
            read_header_field(out[0].1.bytes(), HeaderField::IpSaddr) as u32,
            read_header_field(out[0].1.bytes(), HeaderField::SrcPort) as u16,
        );
        println!(
            "client {} -> appears as {}:{} (allocated on the switch counter)",
            fmt_addr(*client),
            fmt_addr(sa),
            sp
        );
    }

    // Replies translate back — pure fast path.
    let reply = FiveTuple {
        saddr: server,
        daddr: NAT_EXTERNAL_IP,
        sport: 443,
        dport: NAT_PORT_BASE + 1, // second allocation
        proto: IpProtocol::Tcp,
    };
    let out = d
        .inject(tcp(reply, TcpFlags::SYN | TcpFlags::ACK, EXTERNAL_PORT))
        .unwrap();
    println!(
        "reply to port {} -> delivered to internal {}:{}",
        NAT_PORT_BASE + 1,
        fmt_addr(read_header_field(out[0].1.bytes(), HeaderField::IpDaddr) as u32),
        read_header_field(out[0].1.bytes(), HeaderField::DstPort),
    );

    // Unsolicited traffic dies on the switch.
    let stray = FiveTuple {
        saddr: 0x0102_0304,
        daddr: NAT_EXTERNAL_IP,
        sport: 9,
        dport: 60_000,
        proto: IpProtocol::Tcp,
    };
    let out = d.inject(tcp(stray, TcpFlags::SYN, EXTERNAL_PORT)).unwrap();
    println!(
        "unsolicited probe to port 60000 -> {} (dropped in the data plane)",
        if out.is_empty() {
            "no emission"
        } else {
            "leaked!"
        }
    );

    println!();
    println!(
        "totals: {} packets, fast path {:.0}%, server slow-path packets {}",
        d.stats.injected,
        100.0 * d.fast_path_fraction(),
        d.stats.slow_path,
    );
    println!();
    println!("=== telemetry snapshot (json) ===");
    print!("{}", d.telemetry_snapshot().to_json());
}
