//! The packet flight recorder on MazuNAT: sample every packet, send one
//! connection-opening SYN through the switch→server→switch slow path and
//! one ACK down the fast path, then render the reconstructed per-hop
//! traces, the stage latency histograms, and the drop attribution keys.
//!
//! ```text
//! cargo run --example flight_recorder
//! ```

use gallium::middleboxes::mazunat::mazunat;
use gallium::middleboxes::INTERNAL_PORT;
use gallium::prelude::*;
use gallium::telemetry::names;

fn main() {
    let nat = mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
    let mut d = Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated())
        .expect("loads");

    // Sample 1-in-1 into a 1024-event ring. Production deployments would
    // sample sparsely (e.g. 1-in-1024); the ring write cost is the same
    // either way — three atomic stores into preallocated slots.
    d.enable_flight_recorder(1, 1024);

    let flow = FiveTuple {
        saddr: 0x0A00_0009,
        daddr: 0x0808_0404,
        sport: 50_123,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    // SYN: no NAT mapping yet → diverted to the server slow path, which
    // installs both mappings and syncs them back to the switch.
    let syn = PacketBuilder::tcp(flow, TcpFlags(TcpFlags::SYN), 200).build(PortId(INTERNAL_PORT));
    d.inject(syn).expect("slow path");
    // ACK of the same flow: the synced table entry now rewrites it
    // entirely on the switch.
    let ack = PacketBuilder::tcp(flow, TcpFlags(TcpFlags::ACK), 200).build(PortId(INTERNAL_PORT));
    d.inject(ack).expect("fast path");

    let report = d.trace_report().expect("recorder installed");
    println!("{}", report.render_text());

    let snap = d.telemetry_snapshot();
    println!("=== flight recorder counters ===");
    for key in [
        names::TRACE_SAMPLED,
        names::TRACE_EVENTS,
        names::TRACE_OVERWRITTEN,
        names::TRACE_RING_CAPACITY,
        names::DROP_SWITCH_MARKED,
        names::DROP_DEPLOY_SYNC_REJECTED,
    ] {
        println!("{key} = {}", snap.counter(key).unwrap_or(0));
    }
    println!();
    println!("=== stage latency histograms (sampled packets) ===");
    for key in [
        names::STAGE_FAST_PATH_NS,
        names::STAGE_SWITCH_PRE_NS,
        names::STAGE_TRANSFER_NS,
        names::STAGE_SERVER_NS,
        names::STAGE_REINJECT_NS,
    ] {
        if let Some(h) = snap.histogram(key) {
            println!("{key}: count={} mean={:.0}ns", h.count, h.mean());
        }
    }
}
