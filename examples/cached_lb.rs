//! The §7 "reducing memory usage" extension in action: the load balancer's
//! connection table lives on the switch as a small FIFO cache of the
//! server's authoritative map. Hot flows ride the data plane; cold flows
//! replay on the server, which refills the cache.
//!
//! ```text
//! cargo run --example cached_lb
//! ```

use gallium::core::Deployment;
use gallium::middleboxes::lb::load_balancer;
use gallium::mir::interp::read_header_field;
use gallium::mir::HeaderField;
use gallium::prelude::*;

fn pkt(flow: u32) -> Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0000 + flow,
            daddr: 0x0A00_00FE,
            sport: 6000 + (flow % 100) as u16,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::ACK),
        200,
    )
    .build(PortId(1))
}

fn main() {
    let lb = load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).expect("compiles");

    let full_sram = 65536 * (104 + 32) / 8 / 1024;
    let cache_entries = 8usize;
    println!("connection table annotation: 65536 entries (~{full_sram} KB of switch SRAM)");
    println!("deploying with an {cache_entries}-entry switch cache instead\n");

    let mut d = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &[(lb.conn, cache_entries)],
    )
    .expect("cache mode available for the LB");
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
            .unwrap();
    })
    .unwrap();

    // 24 flows — three times the cache size — in three rounds.
    let mut assignment = std::collections::HashMap::new();
    for round in 1..=3 {
        let miss_before = d.switch.stats.cache_misses;
        for flow in 0..24u32 {
            let out = d.inject(pkt(flow)).expect("processed");
            let backend = read_header_field(out[0].1.bytes(), HeaderField::IpDaddr);
            match assignment.get(&flow) {
                None => {
                    assignment.insert(flow, backend);
                }
                Some(prev) => assert_eq!(
                    *prev, backend,
                    "flow {flow} must stick to its backend across evictions"
                ),
            }
        }
        println!(
            "round {round}: {} cache misses (replayed on the server), cache holds {}/{} entries",
            d.switch.stats.cache_misses - miss_before,
            d.switch.table("conn").unwrap().len(),
            cache_entries,
        );
    }

    // A hot flow: once refilled, every subsequent packet is a pure switch
    // hit (cyclic sweeps above thrash a FIFO cache by design).
    let miss_before = d.switch.stats.cache_misses;
    for _ in 0..50 {
        d.inject(pkt(3)).expect("processed");
    }
    println!(
        "\nhot flow: 50 packets, {} cache miss(es) — the refill sticks",
        d.switch.stats.cache_misses - miss_before,
    );

    println!();
    println!(
        "authoritative map: {} connections | consistency: {} | total slow-path packets: {}",
        d.server.store.map_len(lb.conn).unwrap(),
        d.replicated_consistent(),
        d.stats.slow_path,
    );
    println!("every flow kept its backend despite continuous eviction — the");
    println!("cache changes *where* lookups happen, never *what* they return.");
}
