//! IPv4 header view.
//!
//! Addresses are exposed as host-order `u32` — the Gallium IR operates on
//! integers, exactly like the paper's LLVM-level analysis does, so keeping
//! the numeric representation avoids conversion noise in the middleboxes.

use crate::checksum::checksum;
use crate::flow::IpProtocol;
use crate::{NetError, Result};

/// Length of an IPv4 header without options, in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// Typed view over an IPv4 header (no options supported, IHL must be 5).
#[derive(Debug)]
pub struct Ipv4View<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> Ipv4View<T> {
    /// Wrap a buffer positioned at the first byte of the IPv4 header.
    pub fn new(buf: T) -> Result<Self> {
        let available = buf.as_ref().len();
        if available < IPV4_HEADER_LEN {
            return Err(NetError::Truncated {
                needed: IPV4_HEADER_LEN,
                available,
            });
        }
        let b = buf.as_ref();
        if b[0] >> 4 != 4 {
            return Err(NetError::WrongProtocol { expected: "IPv4" });
        }
        Ok(Ipv4View { buf })
    }

    /// Internet header length in 32-bit words.
    pub fn ihl(&self) -> u8 {
        self.buf.as_ref()[0] & 0x0F
    }

    /// Total length field (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buf.as_ref()[8]
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.buf.as_ref()[9])
    }

    /// Header checksum field as stored.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address, host order.
    pub fn saddr(&self) -> u32 {
        let b = self.buf.as_ref();
        u32::from_be_bytes([b[12], b[13], b[14], b[15]])
    }

    /// Destination address, host order.
    pub fn daddr(&self) -> u32 {
        let b = self.buf.as_ref();
        u32::from_be_bytes([b[16], b[17], b[18], b[19]])
    }

    /// Verify the header checksum over the 20-byte header.
    pub fn checksum_ok(&self) -> bool {
        checksum(&self.buf.as_ref()[..IPV4_HEADER_LEN]) == 0
    }

    /// The transport payload following this header.
    pub fn payload(&self) -> &[u8] {
        let hl = usize::from(self.ihl()) * 4;
        &self.buf.as_ref()[hl.min(self.buf.as_ref().len())..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4View<T> {
    /// Initialize version/IHL and TTL for a fresh header.
    pub fn init(&mut self) {
        self.buf.as_mut()[0] = 0x45;
        self.buf.as_mut()[8] = 64;
    }

    /// Set the total-length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buf.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buf.as_mut()[8] = ttl;
    }

    /// Set the transport protocol.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buf.as_mut()[9] = p.into();
    }

    /// Set the source address (host order).
    pub fn set_saddr(&mut self, a: u32) {
        self.buf.as_mut()[12..16].copy_from_slice(&a.to_be_bytes());
    }

    /// Set the destination address (host order).
    pub fn set_daddr(&mut self, a: u32) {
        self.buf.as_mut()[16..20].copy_from_slice(&a.to_be_bytes());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buf.as_mut()[10..12].copy_from_slice(&[0, 0]);
        let c = checksum(&self.buf.as_ref()[..IPV4_HEADER_LEN]);
        self.buf.as_mut()[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable transport payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = usize::from(self.ihl()) * 4;
        let len = self.buf.as_ref().len();
        &mut self.buf.as_mut()[hl.min(len)..]
    }
}

/// Render a host-order `u32` as dotted-quad for diagnostics.
pub fn fmt_addr(a: u32) -> String {
    let b = a.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Parse dotted-quad notation into a host-order `u32`.
pub fn parse_addr(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut v: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        v = (v << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x45;
        buf
    }

    #[test]
    fn rejects_non_v4() {
        let mut buf = fresh();
        buf[0] = 0x65;
        assert_eq!(
            Ipv4View::new(&buf[..]).unwrap_err(),
            NetError::WrongProtocol { expected: "IPv4" }
        );
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            Ipv4View::new(&[0x45u8; 10][..]).unwrap_err(),
            NetError::Truncated { .. }
        ));
    }

    #[test]
    fn addr_roundtrip() {
        let mut buf = fresh();
        let mut v = Ipv4View::new(&mut buf[..]).unwrap();
        v.set_saddr(0x0A000001);
        v.set_daddr(0xC0A80102);
        assert_eq!(v.saddr(), 0x0A000001);
        assert_eq!(v.daddr(), 0xC0A80102);
        assert_eq!(fmt_addr(v.saddr()), "10.0.0.1");
        assert_eq!(fmt_addr(v.daddr()), "192.168.1.2");
    }

    #[test]
    fn checksum_validates_after_fill() {
        let mut buf = fresh();
        let mut v = Ipv4View::new(&mut buf[..]).unwrap();
        v.init();
        v.set_total_len(40);
        v.set_protocol(IpProtocol::Tcp);
        v.set_saddr(1);
        v.set_daddr(2);
        v.fill_checksum();
        assert!(v.checksum_ok());
        v.set_daddr(3); // corrupt
        assert!(!v.checksum_ok());
    }

    #[test]
    fn parse_addr_accepts_valid() {
        assert_eq!(parse_addr("10.0.0.1"), Some(0x0A000001));
        assert_eq!(parse_addr("255.255.255.255"), Some(u32::MAX));
    }

    #[test]
    fn parse_addr_rejects_invalid() {
        assert_eq!(parse_addr("10.0.0"), None);
        assert_eq!(parse_addr("10.0.0.1.2"), None);
        assert_eq!(parse_addr("10.0.0.256"), None);
        assert_eq!(parse_addr("a.b.c.d"), None);
    }

    #[test]
    fn payload_skips_header() {
        let buf = fresh();
        let v = Ipv4View::new(&buf[..]).unwrap();
        assert_eq!(v.payload().len(), 20);
    }
}
