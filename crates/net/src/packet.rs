//! Owned packet buffers with ingress metadata.

use bytes::Bytes;
use std::sync::Arc;

/// Identifier of a physical port on the switch or a queue on the server.
///
/// In the paper's deployment (Figure 1) the switch distinguishes packets
/// arriving from the network (run the *pre-processing* partition) from
/// packets arriving on the interface connected to the middlebox server (run
/// the *post-processing* partition). `PortId` carries that information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl PortId {
    /// Conventional port on which the middlebox server is attached.
    pub const SERVER: PortId = PortId(255);
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A packet with a copy-on-write frame buffer.
///
/// The buffer holds the full frame starting at the Ethernet header. Metadata
/// (ingress port) travels alongside the bytes but is never serialized — it
/// models what switch hardware knows about a packet out-of-band.
///
/// The frame is reference-counted: [`Packet::clone`] is O(1) and shares the
/// buffer, which makes emission fan-out (`EmitCopy`), the cache-mode
/// pristine snapshot, and the switch↔server hand-off allocation-free.
/// Mutation goes through [`Packet::bytes_mut`] (or the splice helpers),
/// which copy the buffer first *only* when it is shared — a uniquely owned
/// packet mutates in place, so a drain-style hot path that hands packets
/// over by value never pays for a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    data: Arc<Vec<u8>>,
    /// Port the packet arrived on (meaningful inside a switch/server).
    pub ingress: PortId,
}

impl Packet {
    /// Wrap an existing frame (takes ownership; no copy).
    pub fn from_vec(data: Vec<u8>, ingress: PortId) -> Self {
        Packet {
            data: Arc::new(data),
            ingress,
        }
    }

    /// Allocate a zero-filled frame of `len` bytes.
    pub fn zeroed(len: usize, ingress: PortId) -> Self {
        Packet {
            data: Arc::new(vec![0; len]),
            ingress,
        }
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the frame is empty (never the case for a valid packet).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the frame bytes.
    ///
    /// Copy-on-write: if the buffer is shared with other `Packet` handles
    /// this detaches a private copy first; a uniquely owned buffer is
    /// handed out in place with no allocation.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// A clone whose buffer is guaranteed uniquely owned (always copies).
    ///
    /// Use when a subsequent mutation must not be billed a copy-on-write
    /// detach — e.g. pre-building packet bursts outside a timed region.
    pub fn deep_clone(&self) -> Self {
        Packet {
            data: Arc::new((*self.data).clone()),
            ingress: self.ingress,
        }
    }

    /// Do two packets share one underlying buffer?
    pub fn shares_buffer(&self, other: &Packet) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Freeze into an immutable [`Bytes`] handle (cheap to clone, used when a
    /// packet is fanned out to multiple measurement sinks).
    pub fn freeze(self) -> Bytes {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Bytes::from(v),
            Err(shared) => Bytes::from((*shared).clone()),
        }
    }

    /// Insert `extra` zero bytes at byte offset `at`, shifting the tail.
    ///
    /// Used to splice the Gallium transfer header in between the Ethernet
    /// and IP headers (§4.3.2). On a uniquely owned buffer with spare
    /// capacity this is a pure in-place shift.
    pub fn insert_gap(&mut self, at: usize, extra: usize) {
        assert!(at <= self.data.len(), "insert_gap past end of packet");
        let v = Arc::make_mut(&mut self.data);
        let old_len = v.len();
        v.resize(old_len + extra, 0);
        v.copy_within(at..old_len, at + extra);
        v[at..at + extra].fill(0);
    }

    /// Remove `count` bytes at byte offset `at`, shifting the tail left.
    ///
    /// Inverse of [`Packet::insert_gap`]; used when the transfer header is
    /// stripped before a packet leaves the middlebox. Never allocates on a
    /// uniquely owned buffer.
    pub fn remove_range(&mut self, at: usize, count: usize) {
        assert!(
            at + count <= self.data.len(),
            "remove_range past end of packet"
        );
        Arc::make_mut(&mut self.data).drain(at..at + count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_len() {
        let p = Packet::zeroed(64, PortId(1));
        assert_eq!(p.len(), 64);
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert!(!p.is_empty());
    }

    #[test]
    fn insert_gap_shifts_tail() {
        let mut p = Packet::from_vec(vec![1, 2, 3, 4], PortId(0));
        p.insert_gap(2, 3);
        assert_eq!(p.bytes(), &[1, 2, 0, 0, 0, 3, 4]);
    }

    #[test]
    fn remove_range_inverts_insert_gap() {
        let mut p = Packet::from_vec(vec![1, 2, 3, 4, 5, 6], PortId(0));
        p.insert_gap(3, 4);
        p.remove_range(3, 4);
        assert_eq!(p.bytes(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn insert_gap_at_end() {
        let mut p = Packet::from_vec(vec![9], PortId(0));
        p.insert_gap(1, 2);
        assert_eq!(p.bytes(), &[9, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "insert_gap past end")]
    fn insert_gap_out_of_bounds_panics() {
        let mut p = Packet::from_vec(vec![1], PortId(0));
        p.insert_gap(5, 1);
    }

    #[test]
    fn freeze_roundtrip() {
        let p = Packet::from_vec(vec![7, 8], PortId(3));
        let b = p.clone().freeze();
        assert_eq!(&b[..], p.bytes());
    }

    #[test]
    fn clone_shares_until_mutation() {
        let a = Packet::from_vec(vec![1, 2, 3], PortId(0));
        let mut b = a.clone();
        assert!(a.shares_buffer(&b));
        // Mutating the clone detaches it; the original is untouched.
        b.bytes_mut()[0] = 99;
        assert!(!a.shares_buffer(&b));
        assert_eq!(a.bytes(), &[1, 2, 3]);
        assert_eq!(b.bytes(), &[99, 2, 3]);
    }

    #[test]
    fn deep_clone_never_shares() {
        let a = Packet::from_vec(vec![5, 6], PortId(2));
        let b = a.deep_clone();
        assert!(!a.shares_buffer(&b));
        assert_eq!(a, b);
        assert_eq!(b.ingress, PortId(2));
    }

    #[test]
    fn splices_on_shared_buffer_leave_original_intact() {
        let a = Packet::from_vec(vec![1, 2, 3, 4], PortId(0));
        let mut b = a.clone();
        b.insert_gap(2, 2);
        assert_eq!(a.bytes(), &[1, 2, 3, 4]);
        assert_eq!(b.bytes(), &[1, 2, 0, 0, 3, 4]);
        let mut c = a.clone();
        c.remove_range(1, 2);
        assert_eq!(a.bytes(), &[1, 2, 3, 4]);
        assert_eq!(c.bytes(), &[1, 4]);
    }
}
