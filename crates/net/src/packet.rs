//! Owned packet buffers with ingress metadata.

use bytes::{Bytes, BytesMut};

/// Identifier of a physical port on the switch or a queue on the server.
///
/// In the paper's deployment (Figure 1) the switch distinguishes packets
/// arriving from the network (run the *pre-processing* partition) from
/// packets arriving on the interface connected to the middlebox server (run
/// the *post-processing* partition). `PortId` carries that information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl PortId {
    /// Conventional port on which the middlebox server is attached.
    pub const SERVER: PortId = PortId(255);
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// An owned, mutable packet.
///
/// The buffer holds the full frame starting at the Ethernet header. Metadata
/// (ingress port) travels alongside the bytes but is never serialized — it
/// models what switch hardware knows about a packet out-of-band.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    data: BytesMut,
    /// Port the packet arrived on (meaningful inside a switch/server).
    pub ingress: PortId,
}

impl Packet {
    /// Wrap an existing frame.
    pub fn from_vec(data: Vec<u8>, ingress: PortId) -> Self {
        Packet {
            data: BytesMut::from(&data[..]),
            ingress,
        }
    }

    /// Allocate a zero-filled frame of `len` bytes.
    pub fn zeroed(len: usize, ingress: PortId) -> Self {
        Packet {
            data: BytesMut::zeroed(len),
            ingress,
        }
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the frame is empty (never the case for a valid packet).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the frame bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Freeze into an immutable [`Bytes`] handle (cheap to clone, used when a
    /// packet is fanned out to multiple measurement sinks).
    pub fn freeze(self) -> Bytes {
        self.data.freeze()
    }

    /// Insert `extra` zero bytes at byte offset `at`, shifting the tail.
    ///
    /// Used to splice the Gallium transfer header in between the Ethernet
    /// and IP headers (§4.3.2).
    pub fn insert_gap(&mut self, at: usize, extra: usize) {
        assert!(at <= self.data.len(), "insert_gap past end of packet");
        let tail = self.data.split_off(at);
        self.data.resize(at + extra, 0);
        self.data.extend_from_slice(&tail);
    }

    /// Remove `count` bytes at byte offset `at`, shifting the tail left.
    ///
    /// Inverse of [`Packet::insert_gap`]; used when the transfer header is
    /// stripped before a packet leaves the middlebox.
    pub fn remove_range(&mut self, at: usize, count: usize) {
        assert!(
            at + count <= self.data.len(),
            "remove_range past end of packet"
        );
        let tail = self.data.split_off(at + count);
        self.data.truncate(at);
        self.data.extend_from_slice(&tail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_len() {
        let p = Packet::zeroed(64, PortId(1));
        assert_eq!(p.len(), 64);
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert!(!p.is_empty());
    }

    #[test]
    fn insert_gap_shifts_tail() {
        let mut p = Packet::from_vec(vec![1, 2, 3, 4], PortId(0));
        p.insert_gap(2, 3);
        assert_eq!(p.bytes(), &[1, 2, 0, 0, 0, 3, 4]);
    }

    #[test]
    fn remove_range_inverts_insert_gap() {
        let mut p = Packet::from_vec(vec![1, 2, 3, 4, 5, 6], PortId(0));
        p.insert_gap(3, 4);
        p.remove_range(3, 4);
        assert_eq!(p.bytes(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn insert_gap_at_end() {
        let mut p = Packet::from_vec(vec![9], PortId(0));
        p.insert_gap(1, 2);
        assert_eq!(p.bytes(), &[9, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "insert_gap past end")]
    fn insert_gap_out_of_bounds_panics() {
        let mut p = Packet::from_vec(vec![1], PortId(0));
        p.insert_gap(5, 1);
    }

    #[test]
    fn freeze_roundtrip() {
        let p = Packet::from_vec(vec![7, 8], PortId(3));
        let b = p.clone().freeze();
        assert_eq!(&b[..], p.bytes());
    }
}
