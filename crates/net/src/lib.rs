//! # gallium-net — packet substrate
//!
//! Byte-accurate packet representation and typed header views used by every
//! other crate in the Gallium reproduction: the switch simulator parses these
//! buffers with its generated P4 parser, the middlebox server runtime reads
//! and rewrites them, and the workload generators synthesize them.
//!
//! The design follows the smoltcp idiom: a *view* type wraps a byte slice
//! (`EthernetView<&[u8]>` / `EthernetView<&mut [u8]>`) and exposes typed
//! accessors that do explicit bounds checking, returning [`NetError`] instead
//! of panicking. No unsafe code, no heap tricks.
//!
//! In addition to the classic Ethernet/IPv4/TCP/UDP stack, this crate defines
//! the **Gallium transfer header** (paper §4.3.2, Figure 5): a synthesized
//! header inserted between the Ethernet and IP headers that carries temporary
//! state (live variables and branch-condition bits) between the programmable
//! switch and the middlebox server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod packet;
pub mod tcp;
pub mod transfer;
pub mod udp;

pub use builder::PacketBuilder;
pub use ethernet::{EtherType, EthernetView, MacAddr, ETHERNET_HEADER_LEN};
pub use flow::{FiveTuple, IpProtocol};
pub use ipv4::{Ipv4View, IPV4_HEADER_LEN};
pub use packet::{Packet, PortId};
pub use tcp::{TcpFlags, TcpView, TCP_HEADER_LEN};
pub use transfer::{TransferField, TransferHeaderLayout, TransferValues, GALLIUM_ETHERTYPE};
pub use udp::{UdpView, UDP_HEADER_LEN};

/// Errors produced while parsing or mutating packet buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the header being viewed.
    Truncated {
        /// Bytes required by the header.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A field value is out of the representable range for its width.
    ValueOutOfRange {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The packet does not carry the protocol expected by this view.
    WrongProtocol {
        /// Protocol the caller expected.
        expected: &'static str,
    },
    /// A transfer-header layout was asked for a field it does not define.
    UnknownTransferField,
    /// The transfer-header layout exceeds the byte budget it was given.
    LayoutOverflow {
        /// Bits required by the layout.
        bits: usize,
        /// Bit budget available.
        budget: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated { needed, available } => {
                write!(f, "buffer truncated: need {needed} bytes, have {available}")
            }
            NetError::ValueOutOfRange { field } => {
                write!(f, "value out of range for field {field}")
            }
            NetError::WrongProtocol { expected } => {
                write!(f, "wrong protocol: expected {expected}")
            }
            NetError::UnknownTransferField => write!(f, "unknown transfer-header field"),
            NetError::LayoutOverflow { bits, budget } => {
                write!(f, "transfer layout needs {bits} bits, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;
