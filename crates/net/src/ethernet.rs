//! Ethernet II frame view.

use crate::{NetError, Result};

/// Length of an Ethernet II header (no 802.1Q) in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Construct from a u64 (lower 48 bits), handy for generated traffic.
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Lower 48 bits as a u64.
    pub fn to_u64(self) -> u64 {
        let mut b = [0u8; 8];
        b[2..].copy_from_slice(&self.0);
        u64::from_be_bytes(b)
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Well-known EtherType values used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// The synthesized Gallium transfer header (0x88B5, IEEE local
    /// experimental — see [`crate::transfer::GALLIUM_ETHERTYPE`]).
    Gallium,
    /// Anything else.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            crate::transfer::GALLIUM_ETHERTYPE => EtherType::Gallium,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Gallium => crate::transfer::GALLIUM_ETHERTYPE,
            EtherType::Other(o) => o,
        }
    }
}

/// Typed view over an Ethernet II frame.
#[derive(Debug)]
pub struct EthernetView<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> EthernetView<T> {
    /// Wrap a buffer, checking that it is long enough for the header.
    pub fn new(buf: T) -> Result<Self> {
        let available = buf.as_ref().len();
        if available < ETHERNET_HEADER_LEN {
            return Err(NetError::Truncated {
                needed: ETHERNET_HEADER_LEN,
                available,
            });
        }
        Ok(EthernetView { buf })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The bytes following the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[ETHERNET_HEADER_LEN..]
    }

    /// Release the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buf
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetView<T> {
    /// Set the destination MAC address.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buf.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Set the source MAC address.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buf.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, et: EtherType) {
        let v: u16 = et.into();
        self.buf.as_mut()[12..14].copy_from_slice(&v.to_be_bytes());
    }

    /// Mutable access to the bytes following the Ethernet header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(
            EthernetView::new(&[0u8; 10][..]).unwrap_err(),
            NetError::Truncated {
                needed: 14,
                available: 10
            }
        );
    }

    #[test]
    fn field_roundtrip() {
        let mut buf = [0u8; 20];
        let mut v = EthernetView::new(&mut buf[..]).unwrap();
        v.set_dst(MacAddr::from_u64(0x112233445566));
        v.set_src(MacAddr::from_u64(0xAABBCCDDEEFF));
        v.set_ethertype(EtherType::Ipv4);
        assert_eq!(v.dst(), MacAddr::from_u64(0x112233445566));
        assert_eq!(v.src(), MacAddr::from_u64(0xAABBCCDDEEFF));
        assert_eq!(v.ethertype(), EtherType::Ipv4);
        assert_eq!(v.payload().len(), 6);
    }

    #[test]
    fn mac_u64_roundtrip() {
        let m = MacAddr::from_u64(0x0102_0304_0506);
        assert_eq!(m.to_u64(), 0x0102_0304_0506);
        assert_eq!(m.to_string(), "01:02:03:04:05:06");
    }

    #[test]
    fn gallium_ethertype_roundtrip() {
        let et: u16 = EtherType::Gallium.into();
        assert_eq!(EtherType::from(et), EtherType::Gallium);
        assert_eq!(EtherType::from(0x86DDu16), EtherType::Other(0x86DD));
    }
}
