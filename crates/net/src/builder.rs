//! Packet construction for tests and workload generators.

use crate::ethernet::{EtherType, EthernetView, MacAddr, ETHERNET_HEADER_LEN};
use crate::flow::{FiveTuple, IpProtocol};
use crate::ipv4::{Ipv4View, IPV4_HEADER_LEN};
use crate::packet::{Packet, PortId};
use crate::tcp::{TcpFlags, TcpView, TCP_HEADER_LEN};
use crate::udp::{UdpView, UDP_HEADER_LEN};

/// Fluent builder producing complete Ethernet/IPv4/{TCP,UDP} frames.
///
/// `frame_len` is the total frame size including all headers — the knob the
/// paper's microbenchmark sweeps (100 / 500 / 1500 bytes).
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    tuple: FiveTuple,
    tcp_flags: TcpFlags,
    seq: u32,
    ack_no: u32,
    frame_len: usize,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    payload: Option<Vec<u8>>,
}

impl PacketBuilder {
    /// Start a TCP packet for `tuple` with the given flags and frame length.
    pub fn tcp(tuple: FiveTuple, flags: TcpFlags, frame_len: usize) -> Self {
        debug_assert_eq!(tuple.proto, IpProtocol::Tcp);
        PacketBuilder {
            tuple,
            tcp_flags: flags,
            seq: 0,
            ack_no: 0,
            frame_len: frame_len.max(ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN),
            src_mac: MacAddr::from_u64(tuple.saddr.into()),
            dst_mac: MacAddr::from_u64(tuple.daddr.into()),
            payload: None,
        }
    }

    /// Start a UDP packet for `tuple` with the given frame length.
    pub fn udp(tuple: FiveTuple, frame_len: usize) -> Self {
        debug_assert_eq!(tuple.proto, IpProtocol::Udp);
        PacketBuilder {
            tuple,
            tcp_flags: TcpFlags::default(),
            seq: 0,
            ack_no: 0,
            frame_len: frame_len.max(ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN),
            src_mac: MacAddr::from_u64(tuple.saddr.into()),
            dst_mac: MacAddr::from_u64(tuple.daddr.into()),
            payload: None,
        }
    }

    /// Set the TCP sequence number.
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Set the TCP acknowledgement number.
    pub fn ack_no(mut self, ack: u32) -> Self {
        self.ack_no = ack;
        self
    }

    /// Override MAC addresses (defaults derive from the IP addresses).
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Supply an explicit payload. The frame grows to fit if necessary;
    /// shorter payloads are zero-padded up to `frame_len`.
    pub fn payload(mut self, data: Vec<u8>) -> Self {
        self.payload = Some(data);
        self
    }

    /// Assemble the frame.
    pub fn build(self, ingress: PortId) -> Packet {
        let transport_len = match self.tuple.proto {
            IpProtocol::Udp => UDP_HEADER_LEN,
            _ => TCP_HEADER_LEN,
        };
        let min_len = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + transport_len;
        let frame_len = match &self.payload {
            Some(p) => self.frame_len.max(min_len + p.len()),
            None => self.frame_len,
        };
        let mut pkt = Packet::zeroed(frame_len, ingress);

        let mut eth = EthernetView::new(pkt.bytes_mut()).expect("sized above");
        eth.set_src(self.src_mac);
        eth.set_dst(self.dst_mac);
        eth.set_ethertype(EtherType::Ipv4);

        let ip_total = (frame_len - ETHERNET_HEADER_LEN) as u16;
        {
            let buf = &mut pkt.bytes_mut()[ETHERNET_HEADER_LEN..];
            buf[0] = 0x45; // set version before constructing the view
            let mut ip = Ipv4View::new(buf).expect("sized above");
            ip.init();
            ip.set_total_len(ip_total);
            ip.set_protocol(self.tuple.proto);
            ip.set_saddr(self.tuple.saddr);
            ip.set_daddr(self.tuple.daddr);
            ip.fill_checksum();
        }

        let tbuf = &mut pkt.bytes_mut()[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..];
        match self.tuple.proto {
            IpProtocol::Udp => {
                let mut udp = UdpView::new(tbuf).expect("sized above");
                udp.set_sport(self.tuple.sport);
                udp.set_dport(self.tuple.dport);
                udp.set_length(ip_total - IPV4_HEADER_LEN as u16);
            }
            _ => {
                let mut tcp = TcpView::new(tbuf).expect("sized above");
                tcp.init();
                tcp.set_sport(self.tuple.sport);
                tcp.set_dport(self.tuple.dport);
                tcp.set_seq(self.seq);
                tcp.set_ack_no(self.ack_no);
                tcp.set_flags(self.tcp_flags);
            }
        }

        if let Some(p) = self.payload {
            let start = min_len;
            pkt.bytes_mut()[start..start + p.len()].copy_from_slice(&p);
        }
        pkt
    }
}

/// Extract the five-tuple of a plain (non-Gallium) IPv4 frame, if parseable.
pub fn extract_five_tuple(pkt: &Packet) -> Option<FiveTuple> {
    let eth = EthernetView::new(pkt.bytes()).ok()?;
    if eth.ethertype() != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4View::new(eth.payload()).ok()?;
    let (sport, dport) = match ip.protocol() {
        IpProtocol::Tcp => {
            let t = TcpView::new(ip.payload()).ok()?;
            (t.sport(), t.dport())
        }
        IpProtocol::Udp => {
            let u = UdpView::new(ip.payload()).ok()?;
            (u.sport(), u.dport())
        }
        _ => (0, 0),
    };
    Some(FiveTuple {
        saddr: ip.saddr(),
        daddr: ip.daddr(),
        sport,
        dport,
        proto: ip.protocol(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(proto: IpProtocol) -> FiveTuple {
        FiveTuple {
            saddr: 0x0A000001,
            daddr: 0x0A000002,
            sport: 1234,
            dport: 80,
            proto,
        }
    }

    #[test]
    fn tcp_frame_parses_back() {
        let p = PacketBuilder::tcp(tuple(IpProtocol::Tcp), TcpFlags(TcpFlags::SYN), 100)
            .seq(7)
            .build(PortId(0));
        assert_eq!(p.len(), 100);
        let got = extract_five_tuple(&p).unwrap();
        assert_eq!(got, tuple(IpProtocol::Tcp));
        let eth = EthernetView::new(p.bytes()).unwrap();
        let ip = Ipv4View::new(eth.payload()).unwrap();
        assert!(ip.checksum_ok());
        assert_eq!(usize::from(ip.total_len()), 100 - ETHERNET_HEADER_LEN);
        let tcp = TcpView::new(ip.payload()).unwrap();
        assert!(tcp.flags().syn());
        assert_eq!(tcp.seq(), 7);
    }

    #[test]
    fn udp_frame_parses_back() {
        let p = PacketBuilder::udp(tuple(IpProtocol::Udp), 500).build(PortId(2));
        assert_eq!(p.len(), 500);
        assert_eq!(extract_five_tuple(&p).unwrap(), tuple(IpProtocol::Udp));
        assert_eq!(p.ingress, PortId(2));
    }

    #[test]
    fn frame_len_clamped_to_headers() {
        let p =
            PacketBuilder::tcp(tuple(IpProtocol::Tcp), TcpFlags::default(), 10).build(PortId(0));
        assert_eq!(
            p.len(),
            ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN
        );
    }

    #[test]
    fn payload_is_placed_after_headers() {
        let p = PacketBuilder::tcp(tuple(IpProtocol::Tcp), TcpFlags::default(), 0)
            .payload(b"GET /index.html".to_vec())
            .build(PortId(0));
        let eth = EthernetView::new(p.bytes()).unwrap();
        let ip = Ipv4View::new(eth.payload()).unwrap();
        let tcp = TcpView::new(ip.payload()).unwrap();
        assert_eq!(tcp.payload(), b"GET /index.html");
    }

    #[test]
    fn non_ip_frame_yields_none() {
        let mut p = Packet::zeroed(64, PortId(0));
        let mut eth = EthernetView::new(p.bytes_mut()).unwrap();
        eth.set_ethertype(EtherType::Other(0x0806));
        assert_eq!(extract_five_tuple(&p), None);
    }
}
