//! The synthesized Gallium transfer header (paper §4.3.2, Figure 5).
//!
//! When a packet crosses the boundary between the switch partitions and the
//! non-offloaded partition, temporary state (live variables and
//! branch-condition bits) travels *in-band*: the compiler synthesizes a
//! header that is inserted **between the Ethernet header and the IP header**.
//! The link between the switch and the middlebox server uses a slightly
//! larger MTU to accommodate it, exactly as in the paper.
//!
//! Wire format (all big-endian):
//!
//! ```text
//! +----------------+---------+------------------------------+
//! | orig ethertype | flags   | bit-packed fields … padding  |
//! |     2 bytes    | 1 byte  |  ceil(sum(field bits)/8)     |
//! +----------------+---------+------------------------------+
//! ```
//!
//! The Ethernet header's EtherType is rewritten to [`GALLIUM_ETHERTYPE`] so
//! the receiving side knows the header is present; `orig ethertype` restores
//! it when the header is stripped. Fields are packed MSB-first in the order
//! given by the [`TransferHeaderLayout`], mirroring the bit-level allocation
//! shown in the paper's Figure 5 (a 1-bit branch flag followed by a 32-bit
//! temporary, etc.).

use crate::ethernet::{EtherType, EthernetView, ETHERNET_HEADER_LEN};
use crate::packet::Packet;
use crate::{NetError, Result};
use std::collections::BTreeMap;

/// EtherType claimed by the Gallium transfer header (IEEE 802 local
/// experimental range).
pub const GALLIUM_ETHERTYPE: u16 = 0x88B5;

/// Direction flag: packet travels from the switch to the middlebox server.
pub const FLAG_TO_SERVER: u8 = 0x01;
/// Direction flag: packet travels from the middlebox server to the switch.
pub const FLAG_TO_SWITCH: u8 = 0x02;

/// A single field carried by the transfer header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferField {
    /// Compiler-assigned name (e.g. `"v17"` for an SSA value or
    /// `"br3"` for a branch-condition bit).
    pub name: String,
    /// Width in bits, 1..=64.
    pub bits: u16,
}

impl TransferField {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, bits: u16) -> Self {
        TransferField {
            name: name.into(),
            bits,
        }
    }
}

/// The compiler-synthesized layout of the transfer header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferHeaderLayout {
    fields: Vec<TransferField>,
}

impl TransferHeaderLayout {
    /// Build a layout from an ordered field list.
    ///
    /// Field widths must be 1..=64 bits and names unique; violations are
    /// compiler bugs, reported as errors rather than panics.
    pub fn new(fields: Vec<TransferField>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if f.bits == 0 || f.bits > 64 {
                return Err(NetError::ValueOutOfRange {
                    field: "transfer field width",
                });
            }
            if !seen.insert(f.name.clone()) {
                return Err(NetError::UnknownTransferField);
            }
        }
        Ok(TransferHeaderLayout { fields })
    }

    /// The ordered field list.
    pub fn fields(&self) -> &[TransferField] {
        &self.fields
    }

    /// Total payload bits (excluding the 3-byte preamble).
    pub fn bits(&self) -> usize {
        self.fields.iter().map(|f| usize::from(f.bits)).sum()
    }

    /// Total on-wire size of the header in bytes, including the preamble.
    pub fn wire_bytes(&self) -> usize {
        3 + self.bits().div_ceil(8)
    }

    /// Check the layout against the partitioner's header budget
    /// (Constraint 5 in §4.2.2 — 20 bytes in the paper).
    pub fn check_budget(&self, budget_bytes: usize) -> Result<()> {
        if self.wire_bytes() > budget_bytes {
            return Err(NetError::LayoutOverflow {
                bits: self.bits(),
                budget: budget_bytes * 8,
            });
        }
        Ok(())
    }

    /// Bit offset (from the start of the field area) and width of a field.
    pub fn locate(&self, name: &str) -> Result<(usize, u16)> {
        let mut off = 0usize;
        for f in &self.fields {
            if f.name == name {
                return Ok((off, f.bits));
            }
            off += usize::from(f.bits);
        }
        Err(NetError::UnknownTransferField)
    }

    /// Serialize `values` into header bytes (preamble + packed fields).
    ///
    /// Missing values encode as zero; values wider than the field are
    /// truncated to the low `bits` bits, matching hardware behaviour.
    pub fn encode(&self, orig_ethertype: u16, flags: u8, values: &TransferValues) -> Vec<u8> {
        let mut out = vec![0u8; self.wire_bytes()];
        out[0..2].copy_from_slice(&orig_ethertype.to_be_bytes());
        out[2] = flags;
        let area = &mut out[3..];
        let mut bit_off = 0usize;
        for f in &self.fields {
            let v = values.get(&f.name).unwrap_or(0);
            let masked = if f.bits == 64 {
                v
            } else {
                v & ((1u64 << f.bits) - 1)
            };
            write_bits(area, bit_off, f.bits, masked);
            bit_off += usize::from(f.bits);
        }
        out
    }

    /// Parse header bytes produced by [`TransferHeaderLayout::encode`].
    ///
    /// Returns `(orig_ethertype, flags, values)`.
    pub fn decode(&self, data: &[u8]) -> Result<(u16, u8, TransferValues)> {
        let needed = self.wire_bytes();
        if data.len() < needed {
            return Err(NetError::Truncated {
                needed,
                available: data.len(),
            });
        }
        let orig = u16::from_be_bytes([data[0], data[1]]);
        let flags = data[2];
        let area = &data[3..needed];
        let mut values = TransferValues::default();
        let mut bit_off = 0usize;
        for f in &self.fields {
            let v = read_bits(area, bit_off, f.bits);
            values.set(&f.name, v);
            bit_off += usize::from(f.bits);
        }
        Ok((orig, flags, values))
    }

    /// Splice this header into `packet` right after the Ethernet header,
    /// rewriting the EtherType to [`GALLIUM_ETHERTYPE`].
    pub fn attach(&self, packet: &mut Packet, flags: u8, values: &TransferValues) -> Result<()> {
        self.attach_with(packet, flags, |_, f| values.get(&f.name).unwrap_or(0))
    }

    /// Allocation-free variant of [`TransferHeaderLayout::attach`]: field
    /// values are pulled through `get(field_index, field)` instead of a
    /// [`TransferValues`] map, and the header is packed directly into the
    /// spliced gap. The compiled data-plane plan uses this with
    /// pre-resolved metadata slot indices.
    pub fn attach_with(
        &self,
        packet: &mut Packet,
        flags: u8,
        mut get: impl FnMut(usize, &TransferField) -> u64,
    ) -> Result<()> {
        let eth = EthernetView::new(packet.bytes())?;
        let orig: u16 = eth.ethertype().into();
        if orig == GALLIUM_ETHERTYPE {
            // Double attachment is a runtime-pipeline bug.
            return Err(NetError::WrongProtocol {
                expected: "non-Gallium frame",
            });
        }
        let n = self.wire_bytes();
        packet.insert_gap(ETHERNET_HEADER_LEN, n);
        let hdr = &mut packet.bytes_mut()[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + n];
        hdr[0..2].copy_from_slice(&orig.to_be_bytes());
        hdr[2] = flags;
        let area = &mut hdr[3..];
        let mut bit_off = 0usize;
        for (i, f) in self.fields.iter().enumerate() {
            let v = get(i, f);
            let masked = if f.bits == 64 {
                v
            } else {
                v & ((1u64 << f.bits) - 1)
            };
            write_bits(area, bit_off, f.bits, masked);
            bit_off += usize::from(f.bits);
        }
        let mut eth = EthernetView::new(packet.bytes_mut())?;
        eth.set_ethertype(EtherType::Gallium);
        Ok(())
    }

    /// Strip this header from `packet`, restoring the original EtherType.
    ///
    /// Returns `(flags, values)`.
    pub fn detach(&self, packet: &mut Packet) -> Result<(u8, TransferValues)> {
        let mut values = TransferValues::default();
        let flags = self.detach_with(packet, |_, f, v| values.set(&f.name, v))?;
        Ok((flags, values))
    }

    /// Allocation-free variant of [`TransferHeaderLayout::detach`]: each
    /// decoded field is handed to `sink(field_index, field, value)` instead
    /// of being collected into a [`TransferValues`] map. Returns the flags
    /// byte. The compiled data-plane plan uses this to scatter header
    /// fields straight into its metadata scratch buffer.
    pub fn detach_with(
        &self,
        packet: &mut Packet,
        mut sink: impl FnMut(usize, &TransferField, u64),
    ) -> Result<u8> {
        let eth = EthernetView::new(packet.bytes())?;
        if eth.ethertype() != EtherType::Gallium {
            return Err(NetError::WrongProtocol {
                expected: "Gallium transfer header",
            });
        }
        let data = eth.payload();
        let needed = self.wire_bytes();
        if data.len() < needed {
            return Err(NetError::Truncated {
                needed,
                available: data.len(),
            });
        }
        let orig = u16::from_be_bytes([data[0], data[1]]);
        let flags = data[2];
        let area = &data[3..needed];
        let mut bit_off = 0usize;
        for (i, f) in self.fields.iter().enumerate() {
            sink(i, f, read_bits(area, bit_off, f.bits));
            bit_off += usize::from(f.bits);
        }
        packet.remove_range(ETHERNET_HEADER_LEN, needed);
        let mut eth = EthernetView::new(packet.bytes_mut())?;
        eth.set_ethertype(EtherType::from(orig));
        Ok(flags)
    }
}

/// Field-name → value map carried by a transfer header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferValues {
    map: BTreeMap<String, u64>,
}

impl TransferValues {
    /// Set a field value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.map.insert(name.to_string(), value);
    }

    /// Read a field value, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.map.get(name).copied()
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of fields set.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no field is set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Write `bits` bits of `value` MSB-first at `bit_off` into `area`.
fn write_bits(area: &mut [u8], bit_off: usize, bits: u16, value: u64) {
    for i in 0..usize::from(bits) {
        let bit = (value >> (usize::from(bits) - 1 - i)) & 1;
        let pos = bit_off + i;
        let byte = pos / 8;
        let shift = 7 - (pos % 8);
        if bit == 1 {
            area[byte] |= 1 << shift;
        } else {
            area[byte] &= !(1 << shift);
        }
    }
}

/// Read `bits` bits MSB-first at `bit_off` from `area`.
fn read_bits(area: &[u8], bit_off: usize, bits: u16) -> u64 {
    let mut v = 0u64;
    for i in 0..usize::from(bits) {
        let pos = bit_off + i;
        let byte = pos / 8;
        let shift = 7 - (pos % 8);
        v = (v << 1) | u64::from((area[byte] >> shift) & 1);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::flow::{FiveTuple, IpProtocol};
    use crate::packet::PortId;

    fn minilb_layout() -> TransferHeaderLayout {
        // Figure 5: one branch bit + one 32-bit temporary.
        TransferHeaderLayout::new(vec![
            TransferField::new("br_miss", 1),
            TransferField::new("hash32", 32),
        ])
        .unwrap()
    }

    #[test]
    fn figure5_layout_size() {
        let l = minilb_layout();
        assert_eq!(l.bits(), 33);
        assert_eq!(l.wire_bytes(), 3 + 5); // preamble + ceil(33/8)
        l.check_budget(20).unwrap();
    }

    #[test]
    fn budget_violation_detected() {
        let l = TransferHeaderLayout::new(vec![
            TransferField::new("a", 64),
            TransferField::new("b", 64),
            TransferField::new("c", 64),
        ])
        .unwrap();
        assert!(l.check_budget(20).is_err());
    }

    #[test]
    fn rejects_zero_width_and_duplicates() {
        assert!(TransferHeaderLayout::new(vec![TransferField::new("a", 0)]).is_err());
        assert!(TransferHeaderLayout::new(vec![TransferField::new("a", 65)]).is_err());
        assert!(TransferHeaderLayout::new(vec![
            TransferField::new("a", 8),
            TransferField::new("a", 8),
        ])
        .is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = minilb_layout();
        let mut vals = TransferValues::default();
        vals.set("br_miss", 1);
        vals.set("hash32", 0xDEADBEEF);
        let bytes = l.encode(0x0800, FLAG_TO_SERVER, &vals);
        let (orig, flags, out) = l.decode(&bytes).unwrap();
        assert_eq!(orig, 0x0800);
        assert_eq!(flags, FLAG_TO_SERVER);
        assert_eq!(out.get("br_miss"), Some(1));
        assert_eq!(out.get("hash32"), Some(0xDEADBEEF));
    }

    #[test]
    fn values_truncate_to_width() {
        let l = TransferHeaderLayout::new(vec![TransferField::new("x", 4)]).unwrap();
        let mut vals = TransferValues::default();
        vals.set("x", 0xFF);
        let bytes = l.encode(0x0800, 0, &vals);
        let (_, _, out) = l.decode(&bytes).unwrap();
        assert_eq!(out.get("x"), Some(0xF));
    }

    #[test]
    fn locate_reports_offsets() {
        let l = minilb_layout();
        assert_eq!(l.locate("br_miss").unwrap(), (0, 1));
        assert_eq!(l.locate("hash32").unwrap(), (1, 32));
        assert_eq!(
            l.locate("nope").unwrap_err(),
            NetError::UnknownTransferField
        );
    }

    fn sample_packet() -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A000001,
                daddr: 0x0A000002,
                sport: 1000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            crate::tcp::TcpFlags(crate::tcp::TcpFlags::ACK),
            64,
        )
        .build(PortId(0))
    }

    #[test]
    fn attach_detach_restores_packet() {
        let l = minilb_layout();
        let original = sample_packet();
        let mut p = original.clone();
        let mut vals = TransferValues::default();
        vals.set("hash32", 42);
        l.attach(&mut p, FLAG_TO_SERVER, &vals).unwrap();
        assert_eq!(p.len(), original.len() + l.wire_bytes());
        let eth = EthernetView::new(p.bytes()).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Gallium);
        let (flags, out) = l.detach(&mut p).unwrap();
        assert_eq!(flags, FLAG_TO_SERVER);
        assert_eq!(out.get("hash32"), Some(42));
        assert_eq!(p.bytes(), original.bytes());
    }

    #[test]
    fn double_attach_rejected() {
        let l = minilb_layout();
        let mut p = sample_packet();
        let vals = TransferValues::default();
        l.attach(&mut p, 0, &vals).unwrap();
        assert!(l.attach(&mut p, 0, &vals).is_err());
    }

    #[test]
    fn detach_without_header_rejected() {
        let l = minilb_layout();
        let mut p = sample_packet();
        assert!(l.detach(&mut p).is_err());
    }

    #[test]
    fn with_variants_match_map_variants() {
        let l = minilb_layout();
        let mut vals = TransferValues::default();
        vals.set("br_miss", 1);
        vals.set("hash32", 0xDEADBEEF);

        let mut via_map = sample_packet();
        l.attach(&mut via_map, FLAG_TO_SERVER, &vals).unwrap();
        let mut via_slots = sample_packet();
        let slot_values = [1u64, 0xDEADBEEF];
        l.attach_with(&mut via_slots, FLAG_TO_SERVER, |i, _| slot_values[i])
            .unwrap();
        assert_eq!(via_map.bytes(), via_slots.bytes());

        let mut decoded = [0u64; 2];
        let flags = l
            .detach_with(&mut via_slots, |i, _, v| decoded[i] = v)
            .unwrap();
        assert_eq!(flags, FLAG_TO_SERVER);
        assert_eq!(decoded, slot_values);
        assert_eq!(via_slots.bytes(), sample_packet().bytes());
    }

    #[test]
    fn bit_packing_is_msb_first() {
        let l =
            TransferHeaderLayout::new(vec![TransferField::new("a", 1), TransferField::new("b", 7)])
                .unwrap();
        let mut vals = TransferValues::default();
        vals.set("a", 1);
        vals.set("b", 0x03);
        let bytes = l.encode(0, 0, &vals);
        // Field area starts at byte 3: bit layout a|bbbbbbb = 1|0000011.
        assert_eq!(bytes[3], 0b1000_0011);
    }
}
