//! TCP header view.

use crate::{NetError, Result};

/// Length of a TCP header without options, in bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits (lower byte of the flags field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;

    /// True if SYN is set.
    pub fn syn(self) -> bool {
        self.0 & Self::SYN != 0
    }
    /// True if ACK is set.
    pub fn ack(self) -> bool {
        self.0 & Self::ACK != 0
    }
    /// True if FIN is set.
    pub fn fin(self) -> bool {
        self.0 & Self::FIN != 0
    }
    /// True if RST is set.
    pub fn rst(self) -> bool {
        self.0 & Self::RST != 0
    }
    /// True for the control packets the evaluated middleboxes route to the
    /// slow path (SYN / FIN / RST, including their ACK variants).
    pub fn is_control(self) -> bool {
        self.0 & (Self::SYN | Self::FIN | Self::RST) != 0
    }
}

/// Typed view over a TCP header.
#[derive(Debug)]
pub struct TcpView<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> TcpView<T> {
    /// Wrap a buffer positioned at the first byte of the TCP header.
    pub fn new(buf: T) -> Result<Self> {
        let available = buf.as_ref().len();
        if available < TCP_HEADER_LEN {
            return Err(NetError::Truncated {
                needed: TCP_HEADER_LEN,
                available,
            });
        }
        Ok(TcpView { buf })
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buf.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgement number.
    pub fn ack_no(&self) -> u32 {
        let b = self.buf.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Data offset in 32-bit words.
    pub fn data_offset(&self) -> u8 {
        self.buf.as_ref()[12] >> 4
    }

    /// Flags byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buf.as_ref()[13])
    }

    /// The TCP payload following header and options.
    pub fn payload(&self) -> &[u8] {
        let off = usize::from(self.data_offset()) * 4;
        &self.buf.as_ref()[off.min(self.buf.as_ref().len())..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpView<T> {
    /// Initialize the data-offset field for an option-less header.
    pub fn init(&mut self) {
        self.buf.as_mut()[12] = (TCP_HEADER_LEN as u8 / 4) << 4;
    }

    /// Set the source port.
    pub fn set_sport(&mut self, p: u16) {
        self.buf.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dport(&mut self, p: u16) {
        self.buf.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, s: u32) {
        self.buf.as_mut()[4..8].copy_from_slice(&s.to_be_bytes());
    }

    /// Set the acknowledgement number.
    pub fn set_ack_no(&mut self, a: u32) {
        self.buf.as_mut()[8..12].copy_from_slice(&a.to_be_bytes());
    }

    /// Set the flags byte.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.buf.as_mut()[13] = f.0;
    }

    /// Mutable TCP payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = usize::from(self.data_offset()) * 4;
        let len = self.buf.as_ref().len();
        &mut self.buf.as_mut()[off.min(len)..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        let mut buf = [0u8; 30];
        let mut v = TcpView::new(&mut buf[..]).unwrap();
        v.init();
        v.set_sport(12345);
        v.set_dport(80);
        v.set_seq(0xDEADBEEF);
        v.set_ack_no(0x12345678);
        v.set_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK));
        assert_eq!(v.sport(), 12345);
        assert_eq!(v.dport(), 80);
        assert_eq!(v.seq(), 0xDEADBEEF);
        assert_eq!(v.ack_no(), 0x12345678);
        assert!(v.flags().syn() && v.flags().ack());
        assert!(!v.flags().fin());
        assert_eq!(v.payload().len(), 10);
    }

    #[test]
    fn control_classification() {
        assert!(TcpFlags(TcpFlags::SYN).is_control());
        assert!(TcpFlags(TcpFlags::FIN | TcpFlags::ACK).is_control());
        assert!(TcpFlags(TcpFlags::RST).is_control());
        assert!(!TcpFlags(TcpFlags::ACK).is_control());
        assert!(!TcpFlags(TcpFlags::PSH | TcpFlags::ACK).is_control());
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            TcpView::new(&[0u8; 5][..]).unwrap_err(),
            NetError::Truncated { .. }
        ));
    }
}
