//! UDP header view.

use crate::{NetError, Result};

/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// Typed view over a UDP header.
#[derive(Debug)]
pub struct UdpView<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> UdpView<T> {
    /// Wrap a buffer positioned at the first byte of the UDP header.
    pub fn new(buf: T) -> Result<Self> {
        let available = buf.as_ref().len();
        if available < UDP_HEADER_LEN {
            return Err(NetError::Truncated {
                needed: UDP_HEADER_LEN,
                available,
            });
        }
        Ok(UdpView { buf })
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn length(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// The UDP payload.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[UDP_HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpView<T> {
    /// Set the source port.
    pub fn set_sport(&mut self, p: u16) {
        self.buf.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dport(&mut self, p: u16) {
        self.buf.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_length(&mut self, l: u16) {
        self.buf.as_mut()[4..6].copy_from_slice(&l.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        let mut buf = [0u8; 12];
        let mut v = UdpView::new(&mut buf[..]).unwrap();
        v.set_sport(53);
        v.set_dport(5353);
        v.set_length(12);
        assert_eq!(v.sport(), 53);
        assert_eq!(v.dport(), 5353);
        assert_eq!(v.length(), 12);
        assert_eq!(v.payload().len(), 4);
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            UdpView::new(&[0u8; 7][..]).unwrap_err(),
            NetError::Truncated { .. }
        ));
    }
}
