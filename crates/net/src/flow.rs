//! Flow identification: protocol numbers and five-tuples.

/// IP transport protocol numbers used by the evaluated middleboxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// Any other protocol number.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            1 => IpProtocol::Icmp,
            o => IpProtocol::Other(o),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Icmp => 1,
            IpProtocol::Other(o) => o,
        }
    }
}

/// The classic transport five-tuple (addresses in host order).
///
/// Used as the key of the load balancer's connection-consistency map, the
/// firewall's whitelist, and the NAT's translation tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub saddr: u32,
    /// Destination IPv4 address.
    pub daddr: u32,
    /// Source transport port.
    pub sport: u16,
    /// Destination transport port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: IpProtocol,
}

impl FiveTuple {
    /// The tuple of the reverse direction of this flow.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            saddr: self.daddr,
            daddr: self.saddr,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }

    /// Pack into the `[u64; 2]` record representation used by the Gallium IR
    /// for multi-word map keys: `[saddr << 32 | daddr, sport << 32 | dport << 16 | proto]`.
    pub fn to_words(&self) -> [u64; 2] {
        [
            (u64::from(self.saddr) << 32) | u64::from(self.daddr),
            (u64::from(self.sport) << 32)
                | (u64::from(self.dport) << 16)
                | u64::from(u8::from(self.proto)),
        ]
    }

    /// Inverse of [`FiveTuple::to_words`].
    pub fn from_words(w: [u64; 2]) -> FiveTuple {
        FiveTuple {
            saddr: (w[0] >> 32) as u32,
            daddr: w[0] as u32,
            sport: (w[1] >> 32) as u16,
            dport: (w[1] >> 16) as u16,
            proto: IpProtocol::from(w[1] as u8),
        }
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({:?})",
            crate::ipv4::fmt_addr(self.saddr),
            self.sport,
            crate::ipv4::fmt_addr(self.daddr),
            self.dport,
            self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FiveTuple {
        FiveTuple {
            saddr: 0x0A000001,
            daddr: 0xC0A80005,
            sport: 4321,
            dport: 80,
            proto: IpProtocol::Tcp,
        }
    }

    #[test]
    fn reverse_is_involution() {
        let t = sample();
        assert_eq!(t.reversed().reversed(), t);
        assert_ne!(t.reversed(), t);
    }

    #[test]
    fn words_roundtrip() {
        let t = sample();
        assert_eq!(FiveTuple::from_words(t.to_words()), t);
    }

    #[test]
    fn words_roundtrip_udp() {
        let t = FiveTuple {
            proto: IpProtocol::Udp,
            ..sample()
        };
        assert_eq!(FiveTuple::from_words(t.to_words()), t);
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(u8::from(IpProtocol::Tcp), 6);
        assert_eq!(IpProtocol::from(17u8), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(89u8), IpProtocol::Other(89));
        assert_eq!(u8::from(IpProtocol::Other(89)), 89);
    }
}
