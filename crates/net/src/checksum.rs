//! RFC 1071 internet checksum.

/// One's-complement sum over 16-bit words, as used by IPv4/TCP/UDP.
///
/// Accepts an odd-length buffer (the final byte is padded with zero, per the
/// RFC). The return value is the *raw* folded sum; callers typically use
/// [`checksum`] which also complements it.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for ch in &mut chunks {
        sum += u32::from(u16::from_be_bytes([ch[0], ch[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Internet checksum of `data` (one's-complement of the one's-complement sum).
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Incremental checksum update per RFC 1624 (used after header rewriting,
/// e.g. by the NAT when it replaces an address without re-summing the body).
///
/// `old_sum` is the checksum currently in the header; `old_word`/`new_word`
/// are the 16-bit field value before and after the rewrite.
pub fn incremental_update(old_sum: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    let mut sum = u32::from(!old_sum) + u32::from(!old_word) + u32::from(new_word);
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_zero() {
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
    }

    #[test]
    fn checksum_of_zero_buffer() {
        assert_eq!(checksum(&[0, 0, 0, 0]), 0xFFFF);
    }

    #[test]
    fn verifying_includes_checksum_field_yields_zero_complement() {
        // A buffer whose checksum field is filled in sums to 0xFFFF.
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert_eq!(ones_complement_sum(&data), 0xFFFF);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x54, 0xAA, 0xBB, 0x40, 0x00];
        let before = checksum(&data);
        let old_word = u16::from_be_bytes([data[4], data[5]]);
        let new_word: u16 = 0x1234;
        data[4..6].copy_from_slice(&new_word.to_be_bytes());
        let after_full = checksum(&data);
        let after_incr = incremental_update(before, old_word, new_word);
        assert_eq!(after_full, after_incr);
    }

    #[test]
    fn incremental_identity_when_unchanged() {
        assert_eq!(incremental_update(0x1234, 0x5678, 0x5678), 0x1234);
    }
}
