//! # gallium-sim — the discrete-event testbed
//!
//! The synthetic equivalent of the paper's hardware testbed (§6.3): "three
//! servers and a Barefoot Tofino switch … Intel Xeon E5-2680 (2.5 GHz, 12
//! cores) … Mellanox ConnectX-4 100 Gbps NIC", with one server dedicated
//! to the middlebox. The simulator reproduces the two arrangements the
//! evaluation compares:
//!
//! * **Offloaded (Gallium)** — packets traverse sender → switch
//!   (pre-processing) → [middlebox server → switch (post-processing)] →
//!   receiver; only slow-path packets pay the server detour and the
//!   output-commit hold;
//! * **FastClick baseline** — every packet traverses sender → switch →
//!   middlebox server (1/2/4 cores, RSS by flow hash) → switch → receiver.
//!
//! Per-packet server costs are not invented: [`profile`] *measures* them
//! by running representative packets of each class (SYN / data / FIN /
//! reverse ACK) through the real [`gallium_core::Deployment`] and the real
//! reference interpreter, so the simulator's numbers are anchored in the
//! same code the correctness tests exercise. [`constants`] documents the
//! latency calibration against the paper's Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod engine;
pub mod metrics;
pub mod profile;
pub mod scenario;

pub use constants::TestbedModel;
pub use engine::{Mode, SimConfig, Simulator};
pub use metrics::{FctBin, Measurements};
pub use profile::{ClassProfile, MbKind, MbProfile, PktClass};
pub use scenario::{latency_probe_ns, run_conga, run_microbench};
