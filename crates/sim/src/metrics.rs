//! Measurement collection: throughput, flow completion times, path mix.

use gallium_telemetry::{Histogram, TelemetrySnapshot};

/// Figure 9's flow-size bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FctBin {
    /// Flows up to 100 KB.
    Small,
    /// Flows between 100 KB and 10 MB.
    Medium,
    /// Flows above 10 MB.
    Large,
}

impl FctBin {
    /// Bin for a flow of `bytes`.
    pub fn of(bytes: u64) -> FctBin {
        if bytes < 100_000 {
            FctBin::Small
        } else if bytes < 10_000_000 {
            FctBin::Medium
        } else {
            FctBin::Large
        }
    }

    /// Axis label as printed in the paper's Figure 9.
    pub fn label(self) -> &'static str {
        match self {
            FctBin::Small => "0-100K",
            FctBin::Medium => "100K-10M",
            FctBin::Large => "> 10M",
        }
    }

    /// All bins in order.
    pub const ALL: [FctBin; 3] = [FctBin::Small, FctBin::Medium, FctBin::Large];
}

/// Everything a simulation run measures.
#[derive(Debug, Clone, Default)]
pub struct Measurements {
    /// Wire bytes delivered inside the measurement window.
    pub window_bytes: u64,
    /// First delivery inside the window (ns).
    pub window_first_ns: Option<u64>,
    /// Last delivery inside the window (ns).
    pub window_last_ns: u64,
    /// Completed flows: `(flow bytes, completion time ns)`.
    pub fcts: Vec<(u64, u64)>,
    /// Packets that took the server detour.
    pub slow_path_pkts: u64,
    /// Packets that traversed the middlebox at all.
    pub mb_pkts: u64,
    /// Busy ns per middlebox-server core.
    pub core_busy_ns: Vec<u64>,
}

impl Measurements {
    /// Record one data-packet delivery for throughput accounting.
    pub fn record_delivery(&mut self, at_ns: u64, wire_bytes: u64, warmup: u64, stop: u64) {
        if at_ns < warmup || at_ns > stop {
            return;
        }
        self.window_bytes += wire_bytes;
        if self.window_first_ns.is_none() {
            self.window_first_ns = Some(at_ns);
        }
        self.window_last_ns = self.window_last_ns.max(at_ns);
    }

    /// Record a completed flow.
    pub fn record_fct(&mut self, bytes: u64, fct_ns: u64) {
        self.fcts.push((bytes, fct_ns));
    }

    /// Measured throughput over the window, Gbps.
    pub fn throughput_gbps(&self) -> f64 {
        let Some(first) = self.window_first_ns else {
            return 0.0;
        };
        let dur = self.window_last_ns.saturating_sub(first);
        if dur == 0 {
            return 0.0;
        }
        (self.window_bytes as f64) * 8.0 / (dur as f64)
    }

    /// Mean FCT (ns) per Figure 9 bin; `None` when the bin is empty.
    pub fn mean_fct_by_bin(&self) -> [(FctBin, Option<f64>); 3] {
        let mut sums = [0u128; 3];
        let mut counts = [0u64; 3];
        for (bytes, fct) in &self.fcts {
            let i = match FctBin::of(*bytes) {
                FctBin::Small => 0,
                FctBin::Medium => 1,
                FctBin::Large => 2,
            };
            sums[i] += u128::from(*fct);
            counts[i] += 1;
        }
        let mut out = [
            (FctBin::Small, None),
            (FctBin::Medium, None),
            (FctBin::Large, None),
        ];
        for i in 0..3 {
            if counts[i] > 0 {
                out[i].1 = Some(sums[i] as f64 / counts[i] as f64);
            }
        }
        out
    }

    /// Fraction of middlebox packets that visited the server.
    pub fn slow_path_fraction(&self) -> f64 {
        if self.mb_pkts == 0 {
            return 0.0;
        }
        self.slow_path_pkts as f64 / self.mb_pkts as f64
    }

    /// Total server-core busy time, ns ("processing cycles" spent).
    pub fn total_core_busy_ns(&self) -> u64 {
        self.core_busy_ns.iter().sum()
    }

    /// Export the run as a telemetry snapshot under `<prefix>.*` (prefix
    /// follows the `gallium.<crate>.<subsystem>` convention, e.g.
    /// `gallium.sim.run`). Flow completion times are folded into a log2
    /// histogram; throughput stays derivable from the window counters.
    pub fn to_snapshot(&self, prefix: &str) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        snap.set_counter(&format!("{prefix}.window_bytes"), self.window_bytes);
        snap.set_counter(
            &format!("{prefix}.window_first_ns"),
            self.window_first_ns.unwrap_or(0),
        );
        snap.set_counter(&format!("{prefix}.window_last_ns"), self.window_last_ns);
        snap.set_counter(&format!("{prefix}.flows_completed"), self.fcts.len() as u64);
        snap.set_counter(&format!("{prefix}.slow_path_pkts"), self.slow_path_pkts);
        snap.set_counter(&format!("{prefix}.mb_pkts"), self.mb_pkts);
        snap.set_counter(&format!("{prefix}.cores"), self.core_busy_ns.len() as u64);
        snap.set_counter(&format!("{prefix}.core_busy_ns"), self.total_core_busy_ns());
        let fct_hist = Histogram::new();
        for (_, fct) in &self.fcts {
            fct_hist.record(*fct);
        }
        snap.record_histogram(&format!("{prefix}.fct_ns"), &fct_hist);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_match_figure9() {
        assert_eq!(FctBin::of(0), FctBin::Small);
        assert_eq!(FctBin::of(99_999), FctBin::Small);
        assert_eq!(FctBin::of(100_000), FctBin::Medium);
        assert_eq!(FctBin::of(9_999_999), FctBin::Medium);
        assert_eq!(FctBin::of(10_000_000), FctBin::Large);
        assert_eq!(FctBin::Small.label(), "0-100K");
    }

    #[test]
    fn throughput_over_window() {
        let mut m = Measurements::default();
        m.record_delivery(50, 1000, 100, 1000); // before warmup: ignored
        m.record_delivery(100, 1500, 100, 1000);
        m.record_delivery(900, 1500, 100, 1000);
        m.record_delivery(2000, 1500, 100, 1000); // after stop: ignored
        assert_eq!(m.window_bytes, 3000);
        let gbps = m.throughput_gbps();
        assert!((gbps - 3000.0 * 8.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn mean_fct_bins() {
        let mut m = Measurements::default();
        m.record_fct(1_000, 100);
        m.record_fct(2_000, 300);
        m.record_fct(50_000_000, 1_000_000);
        let bins = m.mean_fct_by_bin();
        assert_eq!(bins[0].1, Some(200.0));
        assert_eq!(bins[1].1, None);
        assert_eq!(bins[2].1, Some(1_000_000.0));
    }

    #[test]
    fn snapshot_exports_counters_and_fct_histogram() {
        let mut m = Measurements {
            mb_pkts: 10,
            slow_path_pkts: 2,
            ..Default::default()
        };
        m.record_delivery(100, 1500, 0, 1000);
        m.record_fct(1_000, 100);
        m.record_fct(2_000, 300);
        let snap = m.to_snapshot("gallium.sim.run");
        assert_eq!(snap.counter("gallium.sim.run.window_bytes"), Some(1500));
        assert_eq!(snap.counter("gallium.sim.run.flows_completed"), Some(2));
        assert_eq!(snap.counter("gallium.sim.run.slow_path_pkts"), Some(2));
        let h = snap.histogram("gallium.sim.run.fct_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
    }

    #[test]
    fn slow_fraction() {
        let m = Measurements {
            mb_pkts: 1000,
            slow_path_pkts: 1,
            ..Default::default()
        };
        assert!((m.slow_path_fraction() - 0.001).abs() < 1e-12);
    }
}
