//! Pre-wired experiment scenarios used by the benchmark binaries.

use crate::constants::TestbedModel;
use crate::engine::{Mode, SimConfig, Simulator};
use crate::metrics::Measurements;
use crate::profile::{MbProfile, PktClass};
use gallium_workloads::{microbench_flows, CongaWorkload, FlowSizeDistribution, WorkerSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the §6.3 TCP microbenchmark: 10 parallel connections at
/// `frame_len`, measured over a few milliseconds of steady state.
pub fn run_microbench(profile: MbProfile, mode: Mode, frame_len: usize, seed: u64) -> Measurements {
    let flows = microbench_flows(10, frame_len, u64::MAX / 4);
    let mut cfg = SimConfig::new(mode, profile);
    cfg.stop_at_ns = 4_000_000; // 4 ms of traffic
    cfg.warmup_ns = 800_000;
    cfg.seed = seed;
    let mut sim = Simulator::new(cfg, flows);
    sim.run();
    sim.metrics
}

/// Run a CONGA-derived realistic workload: `n_flows` flows over 100
/// closed-loop workers (§6.3's setup, scaled by the caller).
pub fn run_conga(
    profile: MbProfile,
    mode: Mode,
    workload: CongaWorkload,
    n_flows: usize,
    seed: u64,
) -> Measurements {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = FlowSizeDistribution::conga(workload).sample_n(&mut rng, n_flows);
    let sched = WorkerSchedule::build(&sizes, 100, 1500);
    let flows: Vec<_> = sched.queues.into_iter().flatten().collect();
    let mut cfg = SimConfig::new(mode, profile);
    cfg.seed = seed;
    let mut sim = Simulator::new(cfg, flows);
    sim.run();
    sim.metrics
}

/// The Nptcp-style latency probe of Table 2: the end-to-end latency of a
/// small request through an otherwise idle middlebox (the steady-state
/// class — established data packets — since Nptcp measures after the
/// connection is up).
pub fn latency_probe_ns(profile: &MbProfile, mode: Mode, model: &TestbedModel) -> u64 {
    let frame = 64usize;
    let p = profile.class(PktClass::Data);
    let (slow, cycles) = match mode {
        Mode::Offloaded => (!p.fast, p.server_cycles),
        Mode::Click { .. } => (true, p.click_cycles),
    };
    let mut t = model.host_stack_ns + model.ser_ns(frame) + model.prop_ns + model.switch_ns;
    if slow && !p.bypass {
        t += model.ser_ns(frame)
            + model.prop_ns
            + model.server_nic_ns
            + model.cycles_ns(cycles)
            + model.server_nic_ns
            + model.ser_ns(frame)
            + model.prop_ns
            + model.switch_ns;
    }
    t += model.ser_ns(frame) + model.prop_ns + model.host_stack_ns;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_middlebox, MbKind};

    #[test]
    fn table2_latency_shape() {
        let model = TestbedModel::calibrated();
        for kind in MbKind::ALL {
            let p = profile_middlebox(kind, 1500);
            let gallium = latency_probe_ns(&p, Mode::Offloaded, &model);
            let click = latency_probe_ns(&p, Mode::Click { cores: 1 }, &model);
            // Gallium ≈ 15–16 µs, FastClick ≈ 22–24 µs, ≈ 31 % reduction.
            assert!(
                (15_000..=16_500).contains(&gallium),
                "{}: gallium {gallium} ns",
                kind.name()
            );
            assert!(
                (21_000..=24_500).contains(&click),
                "{}: click {click} ns",
                kind.name()
            );
            let reduction = 1.0 - gallium as f64 / click as f64;
            assert!(
                (0.22..=0.40).contains(&reduction),
                "{}: latency reduction {reduction}",
                kind.name()
            );
        }
    }

    #[test]
    fn microbench_offloaded_beats_click4_for_nat() {
        let p = profile_middlebox(MbKind::MazuNat, 1500);
        let off = run_microbench(p, Mode::Offloaded, 1500, 1).throughput_gbps();
        let c4 = run_microbench(p, Mode::Click { cores: 4 }, 1500, 1).throughput_gbps();
        assert!(off > c4, "offloaded {off} vs click-4c {c4}");
        // Paper: 20–187 % advantage over 4 cores.
        let adv = off / c4 - 1.0;
        assert!(adv > 0.10, "advantage {adv}");
    }

    #[test]
    fn fig9_fct_reduction_concentrates_on_long_flows() {
        // The paper's Figure 9 claim: offloaded FCT beats the baseline in
        // every bin, and the absolute reduction grows with flow size.
        let p = profile_middlebox(MbKind::MazuNat, 1500);
        let click = run_conga(
            p,
            Mode::Click { cores: 4 },
            CongaWorkload::Enterprise,
            900,
            5,
        );
        let off = run_conga(p, Mode::Offloaded, CongaWorkload::Enterprise, 900, 5);
        let cb = click.mean_fct_by_bin();
        let ob = off.mean_fct_by_bin();
        let mut last_reduction = 0.0f64;
        for ((_, c), (_, o)) in cb.iter().zip(ob.iter()) {
            let (Some(c), Some(o)) = (c, o) else { continue };
            assert!(o < c, "offloaded bin FCT {o} must beat click {c}");
            let reduction = c - o;
            assert!(
                reduction >= last_reduction * 0.5,
                "absolute FCT reduction should grow toward the long-flow bins"
            );
            last_reduction = reduction;
        }
        // The large bin's absolute reduction dwarfs the small bin's.
        if let ((_, Some(cs)), (_, Some(os))) = (cb[0], ob[0]) {
            if let ((_, Some(cl)), (_, Some(ol))) = (cb[2], ob[2]) {
                assert!((cl - ol) > 5.0 * (cs - os), "long-flow reduction dominates");
            }
        }
    }

    #[test]
    fn conga_run_produces_fcts_and_low_slow_fraction() {
        let p = profile_middlebox(MbKind::MazuNat, 1500);
        let m = run_conga(p, Mode::Offloaded, CongaWorkload::Enterprise, 800, 3);
        assert_eq!(m.fcts.len(), 800);
        // "only 0.1% of the packets in TCP flows are processed by the
        // middlebox server" — small flows make our mix a bit richer in
        // SYNs, but the fraction stays far below a percent of... of data
        // traffic for long-flow-dominated byte counts; assert the order.
        assert!(
            m.slow_path_fraction() < 0.25,
            "slow fraction {}",
            m.slow_path_fraction()
        );
    }
}
