//! Packet-class cost profiles, measured from the real pipeline.
//!
//! The simulator never invents a per-packet cost: for each middlebox and
//! each packet class it runs a representative packet through
//! (a) the real [`Deployment`] — switch simulator + server runtime +
//! state-sync engine — and (b) the real reference interpreter (the
//! FastClick baseline), and records what actually happened: fast path or
//! slow path, server cycles, output-commit latency, baseline cycles.

use gallium_core::{compile, CompiledMiddlebox, Deployment};
use gallium_middleboxes::{firewall, lb, mazunat, proxy, trojan, INTERNAL_PORT};
use gallium_net::{FiveTuple, IpProtocol, Packet, PacketBuilder, PortId, TcpFlags};
use gallium_partition::SwitchModel;
use gallium_server::{CostModel, ReferenceServer};
use gallium_switchsim::SwitchConfig;

/// The five evaluated middleboxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MbKind {
    /// MazuNAT.
    MazuNat,
    /// The L4 load balancer.
    LoadBalancer,
    /// The firewall.
    Firewall,
    /// The transparent proxy.
    Proxy,
    /// The Trojan detector.
    Trojan,
}

impl MbKind {
    /// All five, in Table 1 order.
    pub const ALL: [MbKind; 5] = [
        MbKind::MazuNat,
        MbKind::LoadBalancer,
        MbKind::Firewall,
        MbKind::Proxy,
        MbKind::Trojan,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MbKind::MazuNat => "MazuNAT",
            MbKind::LoadBalancer => "Load Balancer",
            MbKind::Firewall => "Firewall",
            MbKind::Proxy => "Proxy",
            MbKind::Trojan => "Trojan Detector",
        }
    }
}

/// Traffic classes the flow simulator distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktClass {
    /// First packet of a new connection (SYN).
    Syn,
    /// Established-flow data packet.
    Data,
    /// Connection teardown (FIN/RST).
    Fin,
    /// Reverse-direction acknowledgement.
    Ack,
}

/// Measured behaviour of one packet class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassProfile {
    /// Offloaded mode: did the packet stay on the switch?
    pub fast: bool,
    /// Offloaded mode: server cycles when slow (0 when fast).
    pub server_cycles: u64,
    /// Offloaded mode: output-commit (state-sync) hold in ns.
    pub sync_ns: u64,
    /// Baseline mode: full-program cycles on the FastClick server.
    pub click_cycles: u64,
    /// In offloaded mode the packet does not traverse the middlebox at
    /// all (the switch routes it directly — e.g. the load balancer's
    /// reverse path). In FastClick mode the switch is configured to send
    /// *all* packets through the server (§6.3), so `click_cycles` still
    /// applies.
    pub bypass: bool,
}

impl ClassProfile {
    fn bypass() -> Self {
        ClassProfile {
            fast: true,
            server_cycles: 0,
            sync_ns: 0,
            // Plain L2/L3 forwarding cost on the FastClick server (the
            // switch forces every packet through it in baseline mode).
            click_cycles: 450,
            bypass: true,
        }
    }
}

/// Per-middlebox profile over all classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MbProfile {
    /// Which middlebox this profiles.
    pub kind: MbKind,
    /// New-connection packets.
    pub syn: ClassProfile,
    /// Established data packets.
    pub data: ClassProfile,
    /// Teardown packets.
    pub fin: ClassProfile,
    /// Reverse-direction acks.
    pub ack: ClassProfile,
}

impl MbProfile {
    /// Profile for a class.
    pub fn class(&self, c: PktClass) -> ClassProfile {
        match c {
            PktClass::Syn => self.syn,
            PktClass::Data => self.data,
            PktClass::Fin => self.fin,
            PktClass::Ack => self.ack,
        }
    }
}

struct Harness {
    deployment: Deployment,
    reference: ReferenceServer,
}

impl Harness {
    fn new(compiled: &CompiledMiddlebox) -> Self {
        let deployment =
            Deployment::new(compiled, SwitchConfig::default(), CostModel::calibrated())
                .expect("compiled program loads");
        let reference = ReferenceServer::new(compiled.staged.prog.clone(), CostModel::calibrated());
        Harness {
            deployment,
            reference,
        }
    }

    /// Run `pkt` through both systems; measure the class.
    fn measure(&mut self, pkt: Packet) -> ClassProfile {
        let before = self.deployment.stats;
        self.deployment.inject(pkt.clone()).expect("pipeline runs");
        let after = self.deployment.stats;
        let (_, click_cycles) = self.reference.process(pkt, 0).expect("reference runs");
        ClassProfile {
            fast: after.slow_path == before.slow_path,
            server_cycles: after.server_cycles - before.server_cycles,
            sync_ns: after.sync_visible_ns - before.sync_visible_ns,
            click_cycles,
            bypass: false,
        }
    }
}

fn tcp(t: FiveTuple, flags: u8, frame: usize, ingress: u16) -> Packet {
    PacketBuilder::tcp(t, TcpFlags(flags), frame).build(PortId(ingress))
}

/// Measure the profile of `kind` at data-packet size `frame_len`.
pub fn profile_middlebox(kind: MbKind, frame_len: usize) -> MbProfile {
    let model = SwitchModel::tofino_like();
    match kind {
        MbKind::MazuNat => {
            let nat = mazunat::mazunat();
            let compiled = compile(&nat.prog, &model).unwrap();
            let mut h = Harness::new(&compiled);
            let t = FiveTuple {
                saddr: 0x0A000010,
                daddr: 0x08080808,
                sport: 40_000,
                dport: 443,
                proto: IpProtocol::Tcp,
            };
            let syn = h.measure(tcp(t, TcpFlags::SYN, frame_len, INTERNAL_PORT));
            let data = h.measure(tcp(t, TcpFlags::ACK, frame_len, INTERNAL_PORT));
            // Reverse ack: from outside to the allocated external port.
            let reply = FiveTuple {
                saddr: 0x08080808,
                daddr: mazunat::NAT_EXTERNAL_IP,
                sport: 443,
                dport: mazunat::NAT_PORT_BASE,
                proto: IpProtocol::Tcp,
            };
            let ack = h.measure(tcp(
                reply,
                TcpFlags::ACK,
                64,
                gallium_middleboxes::EXTERNAL_PORT,
            ));
            // MazuNAT has no FIN special case: costed like data.
            let fin = h.measure(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 64, INTERNAL_PORT));
            MbProfile {
                kind,
                syn,
                data,
                fin,
                ack,
            }
        }
        MbKind::LoadBalancer => {
            let lb = lb::load_balancer();
            let compiled = compile(&lb.prog, &model).unwrap();
            let mut h = Harness::new(&compiled);
            let backends = lb.backends;
            h.deployment
                .configure(|s| {
                    s.vec_set_all(backends, vec![0xC0A80001, 0xC0A80002])
                        .unwrap();
                })
                .unwrap();
            h.reference
                .store
                .vec_set_all(backends, vec![0xC0A80001, 0xC0A80002])
                .unwrap();
            let t = FiveTuple {
                saddr: 0x0A000011,
                daddr: 0x0A0000FE,
                sport: 40_001,
                dport: 80,
                proto: IpProtocol::Tcp,
            };
            let syn = h.measure(tcp(t, TcpFlags::SYN, frame_len, 1));
            let data = h.measure(tcp(t, TcpFlags::ACK, frame_len, 1));
            let fin = h.measure(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 64, 1));
            // Direct server return: backend replies bypass the LB.
            MbProfile {
                kind,
                syn,
                data,
                fin,
                ack: ClassProfile::bypass(),
            }
        }
        MbKind::Firewall => {
            let fw = firewall::firewall();
            let compiled = compile(&fw.prog, &model).unwrap();
            let mut h = Harness::new(&compiled);
            let t = FiveTuple {
                saddr: 0x0A000012,
                daddr: 0x08080808,
                sport: 40_002,
                dport: 443,
                proto: IpProtocol::Tcp,
            };
            let fw2 = fw.clone();
            h.deployment.configure(|s| fw2.allow(s, &t)).unwrap();
            fw.allow(&mut h.reference.store, &t);
            let syn = h.measure(tcp(t, TcpFlags::SYN, frame_len, INTERNAL_PORT));
            let data = h.measure(tcp(t, TcpFlags::ACK, frame_len, INTERNAL_PORT));
            let fin = h.measure(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 64, INTERNAL_PORT));
            let ack = h.measure(tcp(
                t.reversed(),
                TcpFlags::ACK,
                64,
                gallium_middleboxes::EXTERNAL_PORT,
            ));
            MbProfile {
                kind,
                syn,
                data,
                fin,
                ack,
            }
        }
        MbKind::Proxy => {
            let px = proxy::proxy(0x0A090909, 3128);
            let compiled = compile(&px.prog, &model).unwrap();
            let mut h = Harness::new(&compiled);
            let px2 = px.clone();
            h.deployment.configure(|s| px2.intercept(s, 80)).unwrap();
            px.intercept(&mut h.reference.store, 80);
            let t = FiveTuple {
                saddr: 0x0A000013,
                daddr: 0x08080808,
                sport: 40_003,
                dport: 80,
                proto: IpProtocol::Tcp,
            };
            let syn = h.measure(tcp(t, TcpFlags::SYN, frame_len, 1));
            let data = h.measure(tcp(t, TcpFlags::ACK, frame_len, 1));
            let fin = h.measure(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 64, 1));
            let ack = h.measure(tcp(t.reversed(), TcpFlags::ACK, 64, 1));
            MbProfile {
                kind,
                syn,
                data,
                fin,
                ack,
            }
        }
        MbKind::Trojan => {
            let det = trojan::trojan_detector();
            let compiled = compile(&det.prog, &model).unwrap();
            let mut h = Harness::new(&compiled);
            let t = FiveTuple {
                saddr: 0x0A000014,
                daddr: 0x08080808,
                sport: 40_004,
                dport: 443,
                proto: IpProtocol::Tcp,
            };
            // SYN to a non-SSH port: control packet, checked on the server
            // path only when it opens SSH; generic traffic stays fast after
            // the lookup. Measure the real behaviours.
            let syn = h.measure(tcp(t, TcpFlags::SYN, frame_len, 1));
            let data = h.measure(tcp(t, TcpFlags::ACK, frame_len, 1));
            let fin = h.measure(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 64, 1));
            let ack = h.measure(tcp(t.reversed(), TcpFlags::ACK, 64, 1));
            MbProfile {
                kind,
                syn,
                data,
                fin,
                ack,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_profile_shapes() {
        let p = profile_middlebox(MbKind::MazuNat, 1500);
        assert!(!p.syn.fast, "first packet opens a mapping on the server");
        assert!(p.syn.sync_ns > 0, "mapping insert is committed");
        assert!(p.data.fast, "established data is switch-only");
        assert_eq!(p.data.server_cycles, 0);
        assert!(p.ack.fast, "reverse translation is switch-only");
        assert!(p.syn.click_cycles > p.data.click_cycles / 2);
    }

    #[test]
    fn firewall_and_proxy_always_fast() {
        for kind in [MbKind::Firewall, MbKind::Proxy] {
            let p = profile_middlebox(kind, 1500);
            for c in [p.syn, p.data, p.fin, p.ack] {
                assert!(c.fast, "{kind:?} class not fast");
                assert_eq!(c.sync_ns, 0);
            }
        }
    }

    #[test]
    fn lb_profile_shapes() {
        let p = profile_middlebox(MbKind::LoadBalancer, 1500);
        assert!(!p.syn.fast);
        assert!(p.data.fast);
        assert!(!p.fin.fast, "FIN triggers GC on the server");
        assert!(p.ack.bypass, "DSR");
    }

    #[test]
    fn trojan_profile_shapes() {
        let p = profile_middlebox(MbKind::Trojan, 1500);
        // Generic data traffic from unknown hosts never leaves the switch.
        assert!(p.data.fast);
        assert!(p.ack.fast);
    }

    #[test]
    fn click_costs_positive_everywhere() {
        for kind in MbKind::ALL {
            let p = profile_middlebox(kind, 500);
            for c in [p.syn, p.data, p.fin] {
                assert!(c.click_cycles > 0, "{kind:?}");
            }
        }
    }
}
