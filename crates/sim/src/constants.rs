//! Testbed latency/bandwidth model, calibrated to the paper.
//!
//! Calibration targets (see EXPERIMENTS.md):
//!
//! * Table 2, Gallium row: ≈ 15.9 µs end-to-end TCP latency. Our fast
//!   path is `2 × host_stack + switch + 2 × (prop + serialization)`
//!   ≈ 2 × 7 300 + 600 + 2 × (100 + ~120) ≈ 15.6–15.9 µs.
//! * Table 2, FastClick row: ≈ 22.5 µs — adds the middlebox-server
//!   detour: `2 × (prop + serialization) + 2 × server_nic + service`
//!   ≈ 440 + 5 600 + ~500 ≈ +6.6 µs.
//! * Link rate 100 Gbps (ConnectX-4 / Tofino ports).

/// Fixed latency and bandwidth parameters of the simulated testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestbedModel {
    /// Link bandwidth in bits/s (all links; 100 GbE).
    pub link_bw_bps: f64,
    /// End-host kernel/NIC stack latency per direction, ns.
    pub host_stack_ns: u64,
    /// Switch pipeline traversal latency, ns.
    pub switch_ns: u64,
    /// Middlebox-server NIC+PCIe+driver latency per direction, ns.
    pub server_nic_ns: u64,
    /// Per-link propagation delay, ns.
    pub prop_ns: u64,
    /// Middlebox-server CPU frequency, Hz.
    pub cpu_hz: f64,
}

impl TestbedModel {
    /// The calibrated testbed.
    pub fn calibrated() -> Self {
        TestbedModel {
            link_bw_bps: 100e9,
            host_stack_ns: 7_300,
            switch_ns: 600,
            server_nic_ns: 2_800,
            prop_ns: 100,
            cpu_hz: 2.5e9,
        }
    }

    /// Serialization delay of `bytes` on a link, ns.
    pub fn ser_ns(&self, bytes: usize) -> u64 {
        ((bytes as f64) * 8.0 / self.link_bw_bps * 1e9).ceil() as u64
    }

    /// Convert server cycles to ns.
    pub fn cycles_ns(&self, cycles: u64) -> u64 {
        ((cycles as f64) / self.cpu_hz * 1e9).ceil() as u64
    }
}

impl Default for TestbedModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_at_100g() {
        let m = TestbedModel::calibrated();
        assert_eq!(m.ser_ns(1500), 120);
        assert_eq!(m.ser_ns(100), 8);
        assert_eq!(m.ser_ns(0), 0);
    }

    #[test]
    fn fast_path_sums_near_table2() {
        let m = TestbedModel::calibrated();
        let fast = 2 * m.host_stack_ns + m.switch_ns + 2 * (m.prop_ns + m.ser_ns(1500));
        assert!(
            (15_000..=16_500).contains(&fast),
            "fast path {fast} ns vs paper ≈ 15.9 µs"
        );
    }

    #[test]
    fn cycles_conversion() {
        let m = TestbedModel::calibrated();
        assert_eq!(m.cycles_ns(2500), 1000);
    }
}
