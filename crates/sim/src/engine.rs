//! The event-driven flow simulator.
//!
//! Ack-clocked fixed-window TCP flows traverse the testbed; every shared
//! element (host uplinks/downlinks, the switch↔server link, the server
//! cores) is a FIFO resource with a `next-free` horizon, so contention and
//! queueing emerge naturally. The middlebox itself is represented by the
//! measured [`MbProfile`]: the class of each packet
//! decides whether it pays the server detour (and the output-commit hold)
//! in offloaded mode, or which core serves it in FastClick mode.

use crate::constants::TestbedModel;
use crate::metrics::Measurements;
use crate::profile::{MbProfile, PktClass};
use gallium_workloads::FlowDesc;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Middlebox arrangement under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Gallium: switch + single-core server for the slow path.
    Offloaded,
    /// FastClick baseline on `cores` cores (RSS by flow hash).
    Click {
        /// Number of server cores.
        cores: usize,
    },
}

impl Mode {
    /// Label used in figures ("Offloaded", "Click-4c", …).
    pub fn label(self) -> String {
        match self {
            Mode::Offloaded => "Offloaded".to_string(),
            Mode::Click { cores } => format!("Click-{cores}c"),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Arrangement under test.
    pub mode: Mode,
    /// Measured middlebox profile.
    pub profile: MbProfile,
    /// Testbed latency model.
    pub model: TestbedModel,
    /// Sender window in packets (ack-clocked).
    pub window_pkts: u64,
    /// Delayed-ack factor (one ack per N data packets).
    pub ack_every: u64,
    /// Stop injecting new data after this simulated time (ns); in-flight
    /// traffic drains. `u64::MAX` = run the workload to completion.
    pub stop_at_ns: u64,
    /// Measurement-window start (ns) for throughput accounting.
    pub warmup_ns: u64,
    /// Deterministic per-packet jitter amplitude (ns), modelling host
    /// scheduling noise. 0 disables.
    pub jitter_ns: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl SimConfig {
    /// Reasonable defaults for a profile/mode pair.
    pub fn new(mode: Mode, profile: MbProfile) -> Self {
        SimConfig {
            mode,
            profile,
            model: TestbedModel::calibrated(),
            window_pkts: 64,
            ack_every: 2,
            stop_at_ns: u64::MAX,
            warmup_ns: 0,
            jitter_ns: 150,
            seed: 1,
        }
    }
}

/// A FIFO resource (link or core).
#[derive(Debug, Clone, Copy, Default)]
struct Resource {
    free_at: u64,
    busy_ns: u64,
}

impl Resource {
    /// Occupy for `dur` starting no earlier than `earliest`; returns the
    /// completion time.
    fn reserve(&mut self, earliest: u64, dur: u64) -> u64 {
        let start = self.free_at.max(earliest);
        self.free_at = start + dur;
        self.busy_ns += dur;
        self.free_at
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Forward-path packet reaches the receiver.
    Deliver {
        flow: usize,
        class: PktClass,
        last: bool,
    },
    /// Reverse-path ack reaches the sender; `acked` = cumulative data acked.
    AckArrive {
        flow: usize,
        acked: u64,
        fin: bool,
        syn: bool,
    },
    /// Closed-loop worker starts its next flow.
    WorkerNext { worker: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct FlowState {
    desc: FlowDesc,
    data_total: u64,
    sent: u64,
    acked: u64,
    delivered: u64,
    started_at: u64,
    fin_sent: bool,
    done: bool,
}

/// The simulator.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    flows: Vec<FlowState>,
    worker_queues: Vec<Vec<usize>>, // flow indices, reversed (pop from back)
    // Resources.
    snd_up: Resource,
    snd_down: Resource,
    rcv_up: Resource,
    rcv_down: Resource,
    server_in: Resource,
    server_out: Resource,
    cores: Vec<Resource>,
    /// Collected measurements.
    pub metrics: Measurements,
    jitter_state: u64,
}

impl Simulator {
    /// Build a simulator over `flows` (grouped by their `worker` field).
    pub fn new(cfg: SimConfig, flows: Vec<FlowDesc>) -> Self {
        let cores = match cfg.mode {
            Mode::Offloaded => 1,
            Mode::Click { cores } => cores.max(1),
        };
        let n_workers = flows.iter().map(|f| f.worker).max().map_or(0, |w| w + 1);
        let mut worker_queues: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
        let mut states = Vec::with_capacity(flows.len());
        for (i, desc) in flows.into_iter().enumerate() {
            worker_queues[desc.worker].push(i);
            states.push(FlowState {
                data_total: desc.data_packets(),
                desc,
                sent: 0,
                acked: 0,
                delivered: 0,
                started_at: 0,
                fin_sent: false,
                done: false,
            });
        }
        for q in &mut worker_queues {
            q.reverse(); // pop() yields flows in order
        }
        let mut sim = Simulator {
            cfg,
            heap: BinaryHeap::new(),
            seq: 0,
            flows: states,
            worker_queues,
            snd_up: Resource::default(),
            snd_down: Resource::default(),
            rcv_up: Resource::default(),
            rcv_down: Resource::default(),
            server_in: Resource::default(),
            server_out: Resource::default(),
            cores: vec![Resource::default(); cores],
            metrics: Measurements::default(),
            jitter_state: 0,
        };
        sim.jitter_state = sim.cfg.seed | 1;
        for w in 0..sim.worker_queues.len() {
            sim.push(0, EvKind::WorkerNext { worker: w });
        }
        sim
    }

    fn push(&mut self, at: u64, kind: EvKind) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    fn jitter(&mut self) -> u64 {
        if self.cfg.jitter_ns == 0 {
            return 0;
        }
        // xorshift64* — deterministic, cheap.
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % self.cfg.jitter_ns
    }

    /// Middlebox traversal (switch + optional server detour) for a packet
    /// entering the switch at `t`. Returns the time it leaves the switch
    /// toward its destination.
    fn middlebox(&mut self, t: u64, class: PktClass, frame: usize) -> u64 {
        let m = self.cfg.model;
        let p = self.cfg.profile.class(class);
        let mut t = t + m.switch_ns;
        let (slow, cycles, sync_ns) = match self.cfg.mode {
            Mode::Offloaded => {
                if p.bypass {
                    // The switch routes this class directly (e.g. DSR).
                    return t;
                }
                (!p.fast, p.server_cycles, p.sync_ns)
            }
            // Baseline: the switch is configured to push *everything*
            // through the FastClick server (§6.3).
            Mode::Click { .. } => (true, p.click_cycles, 0),
        };
        if slow {
            self.metrics.slow_path_pkts += 1;
            let ser = m.ser_ns(frame);
            t = self.server_in.reserve(t, ser) + m.prop_ns + m.server_nic_ns;
            let core = self.pick_core(class);
            let service = m.cycles_ns(cycles);
            t = self.cores[core].reserve(t, service);
            // Output commit: the packet is buffered until the switch has
            // applied the state updates.
            t += sync_ns;
            t = self.server_out.reserve(t + m.server_nic_ns, ser) + m.prop_ns + m.switch_ns;
        }
        self.metrics.mb_pkts += 1;
        t
    }

    fn pick_core(&mut self, _class: PktClass) -> usize {
        if self.cores.len() == 1 {
            return 0;
        }
        // RSS: data and reverse-direction acks hash independently (RSS on
        // the reverse tuple lands on a different core), so a rotating hash
        // models the steady-state spread.
        let x = self
            .jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.jitter_state = x;
        (x >> 33) as usize % self.cores.len()
    }

    /// Send one forward-path packet at `t_send`; schedules its delivery.
    fn send_forward(&mut self, flow: usize, class: PktClass, t_send: u64, last: bool) {
        let m = self.cfg.model;
        let frame = match class {
            PktClass::Data => self.flows[flow].desc.frame_len,
            _ => 64,
        };
        let jit = self.jitter();
        let mut t = t_send + m.host_stack_ns + jit;
        t = self.snd_up.reserve(t, m.ser_ns(frame)) + m.prop_ns;
        t = self.middlebox(t, class, frame);
        t = self.rcv_down.reserve(t, m.ser_ns(frame)) + m.prop_ns + m.host_stack_ns;
        if class == PktClass::Data {
            self.metrics
                .record_delivery(t, frame as u64, self.cfg.warmup_ns, self.cfg.stop_at_ns);
        }
        self.push(t, EvKind::Deliver { flow, class, last });
    }

    /// Send a reverse-path ack at `t`; schedules its arrival at the sender.
    fn send_ack(&mut self, flow: usize, acked: u64, t: u64, fin: bool, syn: bool) {
        let m = self.cfg.model;
        let frame = 64;
        let jit = self.jitter();
        let mut t = t + m.host_stack_ns + jit;
        t = self.rcv_up.reserve(t, m.ser_ns(frame)) + m.prop_ns;
        t = self.middlebox(t, PktClass::Ack, frame);
        t = self.snd_down.reserve(t, m.ser_ns(frame)) + m.prop_ns + m.host_stack_ns;
        self.push(
            t,
            EvKind::AckArrive {
                flow,
                acked,
                fin,
                syn,
            },
        );
    }

    /// Pump the sender window of `flow` at time `now`.
    fn pump(&mut self, flow: usize, now: u64) {
        if now >= self.cfg.stop_at_ns {
            return;
        }
        loop {
            let f = &self.flows[flow];
            if f.done || f.fin_sent {
                return;
            }
            let in_flight = f.sent - f.acked;
            if f.sent < f.data_total && in_flight < self.cfg.window_pkts {
                let last = f.sent + 1 == f.data_total;
                self.flows[flow].sent += 1;
                self.send_forward(flow, PktClass::Data, now, last);
            } else if f.sent == f.data_total && f.acked == f.data_total {
                self.flows[flow].fin_sent = true;
                self.send_forward(flow, PktClass::Fin, now, true);
                return;
            } else {
                return;
            }
        }
    }

    /// Run to completion (or until only post-`stop_at` work remains).
    pub fn run(&mut self) {
        while let Some(Reverse(ev)) = self.heap.pop() {
            let now = ev.at;
            match ev.kind {
                EvKind::WorkerNext { worker } => {
                    if now >= self.cfg.stop_at_ns {
                        continue;
                    }
                    if let Some(flow) = self.worker_queues[worker].pop() {
                        self.flows[flow].started_at = now;
                        self.send_forward(flow, PktClass::Syn, now, false);
                    }
                }
                EvKind::Deliver { flow, class, last } => match class {
                    PktClass::Syn => {
                        self.send_ack(flow, 0, now, false, true);
                    }
                    PktClass::Data => {
                        self.flows[flow].delivered += 1;
                        let d = self.flows[flow].delivered;
                        if last || d.is_multiple_of(self.cfg.ack_every) {
                            self.send_ack(flow, d, now, false, false);
                        }
                    }
                    PktClass::Fin => {
                        let d = self.flows[flow].delivered;
                        self.send_ack(flow, d, now, true, false);
                    }
                    PktClass::Ack => unreachable!("acks travel the reverse path"),
                },
                EvKind::AckArrive {
                    flow,
                    acked,
                    fin,
                    syn,
                } => {
                    if syn {
                        self.pump(flow, now);
                        continue;
                    }
                    if fin {
                        let f = &mut self.flows[flow];
                        if !f.done {
                            f.done = true;
                            let fct = now - f.started_at;
                            let bytes = f.desc.bytes;
                            let worker = f.desc.worker;
                            self.metrics.record_fct(bytes, fct);
                            self.push(now, EvKind::WorkerNext { worker });
                        }
                        continue;
                    }
                    let f = &mut self.flows[flow];
                    f.acked = f.acked.max(acked);
                    self.pump(flow, now);
                }
            }
        }
        self.metrics.core_busy_ns = self.cores.iter().map(|c| c.busy_ns).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ClassProfile, MbKind};
    use gallium_workloads::{microbench_flows, WorkerSchedule};

    /// A synthetic profile: everything fast in offloaded mode, 1500
    /// cycles/packet in click mode.
    fn fast_profile() -> MbProfile {
        let c = ClassProfile {
            fast: true,
            server_cycles: 0,
            sync_ns: 0,
            click_cycles: 1500,
            bypass: false,
        };
        MbProfile {
            kind: MbKind::Firewall,
            syn: c,
            data: c,
            fin: c,
            ack: c,
        }
    }

    fn run(mode: Mode, frame: usize, stop_ms: u64) -> Measurements {
        let flows = microbench_flows(10, frame, u64::MAX / 4);
        let mut cfg = SimConfig::new(mode, fast_profile());
        cfg.stop_at_ns = stop_ms * 1_000_000;
        cfg.warmup_ns = cfg.stop_at_ns / 5;
        let mut sim = Simulator::new(cfg, flows);
        sim.run();
        sim.metrics
    }

    #[test]
    fn offloaded_saturates_link_at_1500() {
        let m = run(Mode::Offloaded, 1500, 4);
        let gbps = m.throughput_gbps();
        assert!(
            (80.0..=101.0).contains(&gbps),
            "offloaded 1500B throughput {gbps} Gbps"
        );
    }

    #[test]
    fn click_single_core_is_cpu_bound() {
        let m = run(Mode::Click { cores: 1 }, 1500, 4);
        let gbps = m.throughput_gbps();
        // 1 500 cycles/pkt at 2.5 GHz ≈ 1.67 Mpps; data share with acks
        // contending lands well under 25 Gbps.
        assert!(gbps < 30.0, "click-1c throughput {gbps} Gbps");
        assert!(
            gbps > 2.0,
            "click-1c throughput {gbps} Gbps implausibly low"
        );
    }

    #[test]
    fn click_scales_with_cores() {
        let g1 = run(Mode::Click { cores: 1 }, 1500, 4).throughput_gbps();
        let g2 = run(Mode::Click { cores: 2 }, 1500, 4).throughput_gbps();
        let g4 = run(Mode::Click { cores: 4 }, 1500, 4).throughput_gbps();
        assert!(g2 > g1 * 1.5, "2 cores {g2} vs 1 core {g1}");
        assert!(g4 > g2 * 1.3, "4 cores {g4} vs 2 cores {g2}");
    }

    #[test]
    fn offloaded_beats_click_at_all_sizes() {
        for frame in [100usize, 500, 1500] {
            let off = run(Mode::Offloaded, frame, 3).throughput_gbps();
            let click = run(Mode::Click { cores: 4 }, frame, 3).throughput_gbps();
            assert!(
                off > click,
                "frame {frame}: offloaded {off} vs click-4c {click}"
            );
        }
    }

    #[test]
    fn closed_loop_workers_complete_all_flows() {
        let sched = WorkerSchedule::build(&[5_000, 20_000, 5_000, 8_000], 2, 1500);
        let flows: Vec<_> = sched.queues.into_iter().flatten().collect();
        let mut sim = Simulator::new(SimConfig::new(Mode::Offloaded, fast_profile()), flows);
        sim.run();
        assert_eq!(sim.metrics.fcts.len(), 4, "all flows finished");
        for (bytes, fct) in &sim.metrics.fcts {
            assert!(*fct > 30_000, "flow of {bytes}B finished in {fct}ns");
        }
    }

    #[test]
    fn slow_path_profile_counts() {
        // A profile where syn is slow: slow-path counter should equal the
        // number of connections in offloaded mode.
        let mut p = fast_profile();
        p.syn = ClassProfile {
            fast: false,
            server_cycles: 1000,
            sync_ns: 135_200,
            click_cycles: 1500,
            bypass: false,
        };
        let sched = WorkerSchedule::build(&[1_000; 20], 4, 1500);
        let flows: Vec<_> = sched.queues.into_iter().flatten().collect();
        let mut sim = Simulator::new(SimConfig::new(Mode::Offloaded, p), flows);
        sim.run();
        assert_eq!(sim.metrics.slow_path_pkts, 20);
    }
}
