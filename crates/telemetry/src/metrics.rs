//! The hot-path primitives: counters, log2 histograms, span timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// Every mutation is a single `fetch_add(Relaxed)` — no locks, no
/// allocation — so counters are safe to bump from packet-processing
/// paths and from `&self` contexts (data-plane lookups take `&self`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (tests asserting exact deltas; see
    /// [`crate::Registry::reset`]).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Cloning a counter snapshots its current value into an independent
/// counter (used by components that derive `Clone`, e.g. runtime tables).
impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

/// Number of histogram buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`, so bucket 64 holds `[2^63, u64::MAX]`. Recording is
/// three relaxed atomic adds (bucket, count, sum) — no locks, no
/// allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (the value reported when
    /// estimating percentiles).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow must not wrap into nonsense.
        let prev = self.sum.fetch_add(value, Ordering::Relaxed);
        if prev.checked_add(value).is_none() {
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Clear all buckets, the count, and the sum (tests asserting exact
    /// deltas; see [`crate::Registry::reset`]).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Start an RAII timer that records its elapsed nanoseconds into this
    /// histogram when dropped.
    pub fn time(&self) -> SpanTimer<'_> {
        SpanTimer {
            hist: self,
            start: Instant::now(),
        }
    }
}

/// Cloning a histogram snapshots its current contents.
impl Clone for Histogram {
    fn clone(&self) -> Self {
        let h = Histogram::new();
        for i in 0..NUM_BUCKETS {
            h.buckets[i].store(self.bucket(i), Ordering::Relaxed);
        }
        h.count.store(self.count(), Ordering::Relaxed);
        h.sum.store(self.sum(), Ordering::Relaxed);
        h
    }
}

/// RAII span timer: records the span's duration (ns) into its histogram
/// on drop. Obtain via [`Histogram::time`].
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let c2 = c.clone();
        c.inc();
        assert_eq!(c2.get(), 42, "clone is an independent snapshot");
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn bucket_of_zero() {
        assert_eq!(Histogram::bucket_of(0), 0);
    }

    #[test]
    fn bucket_of_max() {
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_boundaries() {
        // 1 is the sole inhabitant of bucket 1; powers of two open a new
        // bucket; the value just below stays in the previous one.
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        for i in 1..64u32 {
            let p = 1u64 << i;
            assert_eq!(Histogram::bucket_of(p), i as usize + 1, "2^{i}");
            assert_eq!(Histogram::bucket_of(p - 1), i as usize, "2^{i} - 1");
        }
        assert_eq!(Histogram::bucket_of(1u64 << 63), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_edge_values() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn sum_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.time();
        }
        assert_eq!(h.count(), 1);
    }
}
