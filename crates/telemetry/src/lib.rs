//! # gallium-telemetry — observability primitives for the whole workspace
//!
//! Zero-dependency (std-only) metrics, consistent with the vendored
//! offline build. Three primitives cover every layer of the system:
//!
//! * [`Counter`] — a relaxed atomic `u64`. One `fetch_add(Relaxed)` per
//!   event: no locks, no allocation, safe on packet-processing paths.
//! * [`Histogram`] — 65 log2 buckets (`0`, then one per bit position).
//!   Recording a value is three relaxed atomic adds; bucketing is a
//!   `leading_zeros` instruction.
//! * [`SpanTimer`] — an RAII guard that records its lifetime (in ns) into
//!   a histogram on drop. Used for compiler pass timing.
//!
//! Metrics can be owned per-instance (a switch table embeds its own
//! counters) or registered process-wide in a [`Registry`] under dotted
//! names following the `gallium.<crate>.<subsystem>.<metric>` convention.
//! Either way they export into a [`TelemetrySnapshot`], which serializes
//! to JSON through a small hand-rolled writer/parser (no serde).
//!
//! ```
//! use gallium_telemetry::{global, Counter, Histogram, TelemetrySnapshot};
//!
//! let c = global().counter("gallium.example.events");
//! c.inc();
//! let h = global().histogram("gallium.example.latency_ns");
//! {
//!     let _t = h.time(); // records on drop
//! }
//! let snap = global().snapshot();
//! assert!(snap.counter("gallium.example.events") >= Some(1));
//! let round = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(round, snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod names;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use metrics::{Counter, Histogram, SpanTimer, NUM_BUCKETS};
pub use registry::{global, Registry};
pub use snapshot::{json_escape, HistogramSnapshot, JsonError, TelemetrySnapshot};
pub use trace::{DropReason, EventKind, Hop, TraceEvent, Tracer};
