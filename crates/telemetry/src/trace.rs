//! Per-packet flight recorder: deterministic sampling plus a lock-free,
//! preallocated ring buffer of compact trace events.
//!
//! The dataplane splits one middlebox across two machines, so a single
//! packet's behaviour spans switch → server → switch. This module holds
//! the recording half of the story: a [`Tracer`] decides (deterministic
//! 1-in-N sampling) which packets get a trace id, and every layer that
//! touches a sampled packet appends [`TraceEvent`]s describing what
//! happened at that hop. Rendering and name resolution live with the
//! deployment (`Deployment::trace_report`), which knows table and state
//! names; this module is deliberately domain-agnostic.
//!
//! Design constraints (the reason this is not just a `Mutex<Vec<_>>`):
//!
//! * **Alloc-free, lock-free emission.** [`Tracer::emit`] is a seq
//!   `fetch_add`, a write-index `fetch_add`, and three relaxed atomic
//!   stores into a preallocated slot. No locks, no allocation — safe on
//!   the packet path, compatible with the workspace-wide zero-allocation
//!   warm-path contract.
//! * **Fixed memory.** The ring has a fixed capacity chosen at
//!   construction; when full, new events overwrite the oldest
//!   (flight-recorder semantics). [`Tracer::overwritten`] counts how many
//!   events were lost that way.
//! * **Deterministic sampling.** Packet `i` (0-based, in injection order)
//!   is sampled iff `i % N == 0`, so `P` injected packets yield exactly
//!   `⌈P/N⌉` traces with ids `0, 1, 2, …` — reproducible run to run.
//!
//! Concurrency note: emission is thread-safe in the memory-model sense
//! (all slot words are atomics), but the three stores of one event are
//! not a single transaction. The intended discipline — one deployment,
//! one packet in flight, all hops on the injecting thread — makes each
//! event's words and their order exact. Concurrent writers would remain
//! memory-safe but could interleave slot words; [`Tracer::snapshot`] is
//! meant for quiescent post-run reporting either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::metrics::Counter;

/// Which stage of the switch→server→switch pipeline emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Hop {
    /// Switch pre-processing: the network-ingress traversal.
    SwitchPre = 0,
    /// The partition boundary: encap/decap, sync, re-injection plumbing.
    Transfer = 1,
    /// The middlebox server executing the non-offloaded partition.
    Server = 2,
    /// Switch post-processing: the server-return traversal.
    SwitchPost = 3,
}

impl Hop {
    /// Stable short label used by renderers and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Hop::SwitchPre => "switch.pre",
            Hop::Transfer => "transfer",
            Hop::Server => "server",
            Hop::SwitchPost => "switch.post",
        }
    }

    /// Decode from the packed slot representation.
    pub fn from_u8(v: u8) -> Option<Hop> {
        Some(match v {
            0 => Hop::SwitchPre,
            1 => Hop::Transfer,
            2 => Hop::Server,
            3 => Hop::SwitchPost,
            _ => return None,
        })
    }
}

/// What happened at a hop. The `arg` of a [`TraceEvent`] is
/// kind-dependent (table index, egress port, block id, …) and is resolved
/// to names by the deployment-level renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Packet entered the deployment; `arg` = ingress port.
    Ingress = 0,
    /// A table lookup matched; `arg` = table index.
    TableHit = 1,
    /// A table lookup missed; `arg` = table index.
    TableMiss = 2,
    /// A cache-mode lookup missed and flagged replay; `arg` = table index.
    CacheMiss = 3,
    /// Cache-mode FIFO eviction displaced entries; `arg` = count.
    TableEvict = 4,
    /// Packet emitted on a network port; `arg` = egress port.
    Emit = 5,
    /// Packet dropped; `arg` = drop reason code ([`DropReason`]).
    Drop = 6,
    /// Transfer set shipped to the server; `arg` = encapsulated frame bytes.
    ToServer = 7,
    /// State-sync operations issued back to the switch; `arg` = op count.
    SyncOps = 8,
    /// Output held for write-back commit; `arg` = visible-latency ns.
    HoldForCommit = 9,
    /// Server-side frame re-injected into the switch; `arg` = frame bytes.
    Reinject = 10,
    /// Server received the transfer frame; `arg` = payload bytes.
    ServerRx = 11,
    /// Server executed a MIR block; `arg` = block id.
    ServerBlock = 12,
    /// Server applied a replicated state op; `arg` = state id.
    ServerStateOp = 13,
    /// Server replayed a cache-missed packet; `arg` = instructions run.
    ServerReplay = 14,
}

impl EventKind {
    /// Stable short label used by renderers and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Ingress => "ingress",
            EventKind::TableHit => "table.hit",
            EventKind::TableMiss => "table.miss",
            EventKind::CacheMiss => "cache.miss",
            EventKind::TableEvict => "table.evict",
            EventKind::Emit => "emit",
            EventKind::Drop => "drop",
            EventKind::ToServer => "to_server",
            EventKind::SyncOps => "sync.ops",
            EventKind::HoldForCommit => "hold_for_commit",
            EventKind::Reinject => "reinject",
            EventKind::ServerRx => "server.rx",
            EventKind::ServerBlock => "server.block",
            EventKind::ServerStateOp => "server.state_op",
            EventKind::ServerReplay => "server.replay",
        }
    }

    /// Decode from the packed slot representation.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Ingress,
            1 => EventKind::TableHit,
            2 => EventKind::TableMiss,
            3 => EventKind::CacheMiss,
            4 => EventKind::TableEvict,
            5 => EventKind::Emit,
            6 => EventKind::Drop,
            7 => EventKind::ToServer,
            8 => EventKind::SyncOps,
            9 => EventKind::HoldForCommit,
            10 => EventKind::Reinject,
            11 => EventKind::ServerRx,
            12 => EventKind::ServerBlock,
            13 => EventKind::ServerStateOp,
            14 => EventKind::ServerReplay,
            _ => return None,
        })
    }
}

/// Drop reason codes carried in the `arg` of [`EventKind::Drop`] events.
/// Mirrors the `gallium.*.drop.<reason>` counter family one-for-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DropReason {
    /// The program executed an explicit drop action on the switch.
    SwitchMarked = 0,
    /// A server-origin frame failed encapsulation sanity checks.
    SwitchMalformedEncap = 1,
    /// The program executed an explicit drop action on the server.
    ServerProgram = 2,
    /// The server slow path returned a typed execution error.
    DeployServerError = 3,
    /// A state-sync op was rejected by the switch control plane.
    DeploySyncRejected = 4,
    /// A server-return frame tried to leave the switch again.
    DeployPostLoop = 5,
}

impl DropReason {
    /// Stable short label; also the final segment of the matching
    /// `gallium.*.drop.<reason>` counter name.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::SwitchMarked => "marked",
            DropReason::SwitchMalformedEncap => "malformed_encap",
            DropReason::ServerProgram => "program",
            DropReason::DeployServerError => "server_error",
            DropReason::DeploySyncRejected => "sync_rejected",
            DropReason::DeployPostLoop => "post_loop",
        }
    }

    /// Decode from a trace-event `arg`.
    pub fn from_u64(v: u64) -> Option<DropReason> {
        Some(match v {
            0 => DropReason::SwitchMarked,
            1 => DropReason::SwitchMalformedEncap,
            2 => DropReason::ServerProgram,
            3 => DropReason::DeployServerError,
            4 => DropReason::DeploySyncRejected,
            5 => DropReason::DeployPostLoop,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which sampled packet this event belongs to (dense: 0, 1, 2, …).
    pub trace_id: u32,
    /// Position in the tracer-wide emission order (wraps at 2^16; the
    /// ring is far smaller, so order within a snapshot is unambiguous).
    pub seq: u16,
    /// Pipeline stage that emitted the event.
    pub hop: Hop,
    /// What happened.
    pub kind: EventKind,
    /// Kind-dependent payload (table index, port, block id, bytes, …).
    pub arg: u64,
    /// Nanoseconds since the tracer was created.
    pub ts_ns: u64,
}

/// One ring slot: three atomic words. `head` packs
/// `trace_id:32 | seq:16 | hop:8 | kind:8`.
#[derive(Debug)]
struct Slot {
    head: AtomicU64,
    arg: AtomicU64,
    ts: AtomicU64,
}

fn pack_head(trace_id: u32, seq: u16, hop: Hop, kind: EventKind) -> u64 {
    (u64::from(trace_id) << 32) | (u64::from(seq) << 16) | (u64::from(hop as u8) << 8) | kind as u64
}

fn unpack_head(head: u64, arg: u64, ts: u64) -> Option<TraceEvent> {
    Some(TraceEvent {
        trace_id: (head >> 32) as u32,
        seq: (head >> 16) as u16,
        hop: Hop::from_u8((head >> 8) as u8)?,
        kind: EventKind::from_u8(head as u8)?,
        arg,
        ts_ns: ts,
    })
}

/// The flight recorder: deterministic 1-in-N sampler plus a fixed-capacity
/// ring of [`TraceEvent`]s. Shared by every dataplane layer via
/// `Arc<Tracer>`; all methods take `&self`.
#[derive(Debug)]
pub struct Tracer {
    sample_one_in: u64,
    ring: Vec<Slot>,
    /// Total events ever emitted; `% ring.len()` is the next slot.
    write: AtomicU64,
    /// Injected-packet counter driving the sampler.
    injected: AtomicU64,
    /// Tracer-wide emission sequence (truncated to u16 in the record).
    seq: AtomicU64,
    base: Instant,
    sampled: Counter,
    events: Counter,
    overwritten: Counter,
}

impl Tracer {
    /// A tracer sampling one packet in `sample_one_in` (clamped to ≥ 1)
    /// into a ring of `capacity` events (clamped to ≥ 16). All memory is
    /// allocated here, up front.
    pub fn new(sample_one_in: u64, capacity: usize) -> Self {
        let capacity = capacity.max(16);
        Tracer {
            sample_one_in: sample_one_in.max(1),
            ring: (0..capacity)
                .map(|_| Slot {
                    head: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                })
                .collect(),
            write: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            base: Instant::now(),
            sampled: Counter::new(),
            events: Counter::new(),
            overwritten: Counter::new(),
        }
    }

    /// The sampling period N (one packet in N is traced).
    pub fn sample_one_in(&self) -> u64 {
        self.sample_one_in
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Count this injection against the sampler. Packet `i` (0-based) is
    /// sampled iff `i % N == 0`; the returned trace id is dense
    /// (`i / N`), so `P` injections yield exactly `⌈P/N⌉` trace ids,
    /// deterministically. Lock-free, alloc-free.
    #[inline]
    pub fn try_sample(&self) -> Option<u32> {
        let i = self.injected.fetch_add(1, Ordering::Relaxed);
        if i.is_multiple_of(self.sample_one_in) {
            self.sampled.inc();
            Some((i / self.sample_one_in) as u32)
        } else {
            None
        }
    }

    /// Append one event to the ring. Lock-free and alloc-free: two
    /// relaxed `fetch_add`s plus three relaxed stores into a
    /// preallocated slot. When the ring is full the oldest event is
    /// overwritten (and counted in [`Tracer::overwritten`]).
    #[inline]
    pub fn emit(&self, trace_id: u32, hop: Hop, kind: EventKind, arg: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u16;
        let ts = u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let idx = self.write.fetch_add(1, Ordering::Relaxed);
        let cap = self.ring.len() as u64;
        if idx >= cap {
            self.overwritten.inc();
        }
        let slot = &self.ring[(idx % cap) as usize];
        slot.arg.store(arg, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.head
            .store(pack_head(trace_id, seq, hop, kind), Ordering::Release);
        self.events.inc();
    }

    /// Decode the ring's current contents, oldest event first. Allocates
    /// (report time only — never on the packet path).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let written = self.write.load(Ordering::Acquire);
        let cap = self.ring.len() as u64;
        let valid = written.min(cap);
        let start = written - valid;
        (start..written)
            .filter_map(|i| {
                let slot = &self.ring[(i % cap) as usize];
                let head = slot.head.load(Ordering::Acquire);
                let arg = slot.arg.load(Ordering::Relaxed);
                let ts = slot.ts.load(Ordering::Relaxed);
                unpack_head(head, arg, ts)
            })
            .collect()
    }

    /// Packets sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled.get()
    }

    /// Events emitted so far (including any since overwritten).
    pub fn events(&self) -> u64 {
        self.events.get()
    }

    /// Events lost to ring overwrites so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_exact() {
        for n in [1u64, 2, 3, 7, 64] {
            for pkts in [0u64, 1, 2, 5, 63, 64, 65, 200] {
                let t = Tracer::new(n, 64);
                let ids: Vec<u32> = (0..pkts).filter_map(|_| t.try_sample()).collect();
                let expect = pkts.div_ceil(n);
                assert_eq!(ids.len() as u64, expect, "pkts={pkts} n={n}");
                assert_eq!(t.sampled(), expect);
                // Dense, deterministic ids.
                assert_eq!(ids, (0..expect as u32).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn roundtrip_through_ring() {
        let t = Tracer::new(1, 64);
        t.emit(3, Hop::Server, EventKind::ServerBlock, 42);
        t.emit(3, Hop::SwitchPost, EventKind::Emit, 7);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0],
            TraceEvent {
                trace_id: 3,
                seq: 0,
                hop: Hop::Server,
                kind: EventKind::ServerBlock,
                arg: 42,
                ts_ns: evs[0].ts_ns,
            }
        );
        assert_eq!(evs[1].kind, EventKind::Emit);
        assert_eq!(evs[1].arg, 7);
        assert_eq!(evs[1].seq, 1);
        assert!(evs[1].ts_ns >= evs[0].ts_ns, "timestamps are monotone");
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(1, 16); // minimum capacity
        for i in 0..20u64 {
            t.emit(0, Hop::SwitchPre, EventKind::Emit, i);
        }
        let evs = t.snapshot();
        assert_eq!(evs.len(), 16, "ring holds exactly its capacity");
        let args: Vec<u64> = evs.iter().map(|e| e.arg).collect();
        assert_eq!(args, (4..20).collect::<Vec<_>>(), "oldest 4 overwritten");
        assert_eq!(t.overwritten(), 4);
        assert_eq!(t.events(), 20);
    }

    #[test]
    fn labels_and_codes_roundtrip() {
        for v in 0..=u8::MAX {
            if let Some(h) = Hop::from_u8(v) {
                assert_eq!(h as u8, v);
                assert!(!h.label().is_empty());
            }
            if let Some(k) = EventKind::from_u8(v) {
                assert_eq!(k as u8, v);
                assert!(!k.label().is_empty());
            }
            if let Some(r) = DropReason::from_u64(u64::from(v)) {
                assert_eq!(r as u8, v);
                assert!(!r.label().is_empty());
            }
        }
        assert!(Hop::from_u8(4).is_none());
        assert!(EventKind::from_u8(15).is_none());
        assert!(DropReason::from_u64(6).is_none());
    }
}
