//! Serializable metric snapshots and the hand-rolled JSON codec.
//!
//! The wire format is deliberately tiny — two string-keyed objects:
//!
//! ```json
//! {
//!   "counters": { "gallium.server.slow_path_pkts": 12 },
//!   "histograms": {
//!     "gallium.core.deployment.hold_for_commit_ns": {
//!       "count": 3, "sum": 405600, "buckets": [[18, 3]]
//!     }
//!   }
//! }
//! ```
//!
//! `buckets` lists `[bucket_index, occupancy]` pairs for the non-empty
//! log2 buckets only (see [`crate::Histogram`] for the bucket scheme).

use crate::metrics::{Histogram, NUM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen contents of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (saturating).
    pub sum: u64,
    /// Non-empty `(bucket index, occupancy)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Freeze a live histogram.
    pub fn of(h: &Histogram) -> Self {
        let mut buckets = Vec::new();
        for i in 0..NUM_BUCKETS {
            let n = h.bucket(i);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            buckets,
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// upper edge of the bucket containing that rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_upper_bound(*i as usize);
            }
        }
        Histogram::bucket_upper_bound(64)
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for (i, n) in &other.buckets {
            *merged.entry(*i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// A frozen, serializable view of a set of metrics — the single
/// machine-readable artifact every example, sim run, and bench binary
/// emits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counter values by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram contents by dotted name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Set (or overwrite) a counter value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Freeze a live histogram under `name` (empty histograms are skipped
    /// so snapshots only carry signal).
    pub fn record_histogram(&mut self, name: &str, h: &Histogram) {
        if h.count() > 0 {
            self.histograms
                .insert(name.to_string(), HistogramSnapshot::of(h));
        }
    }

    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.counters {
            let e = self.counters.entry(k.clone()).or_insert(0);
            *e = e.saturating_add(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Are all `names` present (as counters or histograms)?
    pub fn has_keys(&self, names: &[&str]) -> bool {
        names
            .iter()
            .all(|n| self.counters.contains_key(*n) || self.histograms.contains_key(*n))
    }

    /// Names (counters then histograms) with the given dotted prefix.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.counters
            .keys()
            .chain(self.histograms.keys())
            .filter(|k| k.starts_with(prefix))
            .map(String::as_str)
            .collect()
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json_escape(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(k),
                h.count,
                h.sum
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{b}, {n}]");
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a snapshot back from [`TelemetrySnapshot::to_json`] output
    /// (accepts arbitrary whitespace between tokens).
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, JsonError> {
        Parser {
            text: text.as_bytes(),
            pos: 0,
        }
        .snapshot()
    }
}

/// Escape a string as a JSON string literal (quotes included). Exposed
/// for the other hand-rolled JSON writers in the workspace (explain
/// reports, bench output) so escaping lives in one place.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why a snapshot failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub expected: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid snapshot JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

/// Minimal recursive-descent parser for the snapshot subset of JSON.
struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, expected: &str) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            expected: expected.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.pos < self.text.len() && self.text[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("`{}`", c as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.text.get(self.pos) else {
                return self.err("closing `\"`");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.text.get(self.pos) else {
                        return self.err("escape character");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .text
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("4 hex digits"),
                            }
                        }
                        _ => return self.err("valid escape"),
                    }
                }
                b => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let Some(chunk) = self.text.get(start..start + len) else {
                            return self.err("complete UTF-8 sequence");
                        };
                        let Ok(s) = std::str::from_utf8(chunk) else {
                            return self.err("valid UTF-8");
                        };
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("digit");
        }
        std::str::from_utf8(&self.text[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or_else(|| self.err("u64"), Ok)
    }

    fn histogram(&mut self) -> Result<HistogramSnapshot, JsonError> {
        self.eat(b'{')?;
        let mut h = HistogramSnapshot::default();
        loop {
            if self.peek() == Some(b'}') {
                break;
            }
            let key = self.string()?;
            self.eat(b':')?;
            match key.as_str() {
                "count" => h.count = self.number()?,
                "sum" => h.sum = self.number()?,
                "buckets" => {
                    self.eat(b'[')?;
                    while self.peek() != Some(b']') {
                        self.eat(b'[')?;
                        let b = self.number()?;
                        self.eat(b',')?;
                        let n = self.number()?;
                        self.eat(b']')?;
                        if b as usize >= NUM_BUCKETS {
                            return self.err("bucket index < 65");
                        }
                        h.buckets.push((b as u8, n));
                        if self.peek() == Some(b',') {
                            self.eat(b',')?;
                        }
                    }
                    self.eat(b']')?;
                }
                _ => return self.err("count/sum/buckets"),
            }
            if self.peek() == Some(b',') {
                self.eat(b',')?;
            }
        }
        self.eat(b'}')?;
        Ok(h)
    }

    fn snapshot(&mut self) -> Result<TelemetrySnapshot, JsonError> {
        self.eat(b'{')?;
        let mut snap = TelemetrySnapshot::default();
        loop {
            if self.peek() == Some(b'}') {
                break;
            }
            let section = self.string()?;
            self.eat(b':')?;
            self.eat(b'{')?;
            loop {
                if self.peek() == Some(b'}') {
                    break;
                }
                let name = self.string()?;
                self.eat(b':')?;
                match section.as_str() {
                    "counters" => {
                        let v = self.number()?;
                        snap.counters.insert(name, v);
                    }
                    "histograms" => {
                        let h = self.histogram()?;
                        snap.histograms.insert(name, h);
                    }
                    _ => return self.err("counters/histograms"),
                }
                if self.peek() == Some(b',') {
                    self.eat(b',')?;
                }
            }
            self.eat(b'}')?;
            if self.peek() == Some(b',') {
                self.eat(b',')?;
            }
        }
        self.eat(b'}')?;
        self.skip_ws();
        if self.pos != self.text.len() {
            return self.err("end of input");
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        s.set_counter("gallium.test.a", 1);
        s.set_counter("gallium.test.b", u64::MAX);
        let h = Histogram::new();
        h.record(0);
        h.record(1000);
        h.record(u64::MAX);
        s.record_histogram("gallium.test.lat_ns", &h);
        s
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let parsed = TelemetrySnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn empty_round_trip() {
        let s = TelemetrySnapshot::default();
        let parsed = TelemetrySnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn escaped_names_round_trip() {
        let mut s = TelemetrySnapshot::default();
        s.set_counter("weird \"name\"\\with\nescapes", 3);
        s.set_counter("unicode.名前", 4);
        let parsed = TelemetrySnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(TelemetrySnapshot::from_json("").is_err());
        assert!(TelemetrySnapshot::from_json("{").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\": {\"a\": -1}}").is_err());
        assert!(TelemetrySnapshot::from_json("{} trailing").is_err());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("gallium.test.a"), Some(2));
        assert_eq!(a.histogram("gallium.test.lat_ns").unwrap().count, 6);
    }

    #[test]
    fn quantile_uses_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, upper bound 127
        }
        h.record(1_000_000); // bucket 20
        let s = HistogramSnapshot::of(&h);
        assert_eq!(s.quantile(0.5), 127);
        assert_eq!(s.quantile(1.0), (1u64 << 20) - 1);
        assert!((s.mean() - (99.0 * 100.0 + 1_000_000.0) / 100.0).abs() < 1e-6);
    }

    #[test]
    fn has_keys_spans_both_sections() {
        let s = sample();
        assert!(s.has_keys(&["gallium.test.a", "gallium.test.lat_ns"]));
        assert!(!s.has_keys(&["gallium.test.missing"]));
        assert_eq!(s.keys_with_prefix("gallium.test.").len(), 3);
    }
}
