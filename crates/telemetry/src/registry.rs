//! The metric registry: dotted names → leaked `&'static` metrics.
//!
//! Registration takes a mutex and may allocate — it happens once per
//! metric, at setup time. The returned `&'static` handle is what hot
//! paths hold; touching it is a relaxed atomic add with no registry
//! involvement. Metrics live for the process lifetime (they are
//! intentionally leaked), which is what makes the `&'static` handles
//! possible without reference counting.

use crate::metrics::{Counter, Histogram};
use crate::snapshot::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, &'static Counter>,
    histograms: BTreeMap<String, &'static Histogram>,
}

/// A named collection of metrics.
///
/// Use [`global`] for the process-wide registry (compiler passes,
/// cross-cutting counters); components with per-instance state (switch
/// tables, servers) own their metrics directly and export them through
/// their own `telemetry_snapshot()` methods instead.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// A fresh, empty registry (tests; the process normally uses
    /// [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Names follow `gallium.<crate>.<subsystem>.<metric>`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(c) = inner.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        inner.counters.insert(name.to_string(), c);
        c
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(h) = inner.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        inner.histograms.insert(name.to_string(), h);
        h
    }

    /// Zero every registered counter and clear every registered
    /// histogram, keeping the registrations (and therefore every
    /// `&'static` handle hot paths already hold) intact.
    ///
    /// Intended for tests that want exact counter deltas instead of
    /// monotonic lower bounds. On the *global* registry this races with
    /// concurrently running tests — prefer a scoped `Registry::new()`
    /// (or per-instance metrics) when the code under test allows it.
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("registry poisoned");
        for c in inner.counters.values() {
            c.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }

    /// Export every registered metric into a snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut snap = TelemetrySnapshot::default();
        for (name, c) in &inner.counters {
            snap.set_counter(name, c.get());
        }
        for (name, h) in &inner.histograms {
            snap.record_histogram(name, h);
        }
        snap
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_counter() {
        let r = Registry::new();
        let a = r.counter("gallium.test.a");
        let b = r.counter("gallium.test.a");
        a.inc();
        assert_eq!(b.get(), 1, "same registration");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        let r = Registry::new();
        r.counter("gallium.test.events").add(7);
        r.histogram("gallium.test.lat_ns").record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("gallium.test.events"), Some(7));
        assert_eq!(s.histogram("gallium.test.lat_ns").map(|h| h.count), Some(1));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let r = Registry::new();
        let c = r.counter("gallium.test.resettable");
        let h = r.histogram("gallium.test.resettable_ns");
        c.add(5);
        h.record(1024);
        r.reset();
        // Existing handles stay live and zeroed — exact deltas from here.
        assert_eq!(c.get(), 0);
        c.add(2);
        let s = r.snapshot();
        assert_eq!(s.counter("gallium.test.resettable"), Some(2));
        // Cleared histograms drop back out of snapshots (empty ones are
        // skipped) until the still-live handle records again.
        assert!(s.histogram("gallium.test.resettable_ns").is_none());
        h.record(2048);
        let s = r.snapshot();
        assert_eq!(
            s.histogram("gallium.test.resettable_ns").map(|h| h.count),
            Some(1)
        );
        assert!(std::ptr::eq(c, r.counter("gallium.test.resettable")));
    }

    #[test]
    fn global_is_stable() {
        let c1 = global().counter("gallium.test.global_stable");
        let c2 = global().counter("gallium.test.global_stable");
        assert!(std::ptr::eq(c1, c2));
    }
}
