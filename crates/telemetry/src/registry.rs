//! The metric registry: dotted names → leaked `&'static` metrics.
//!
//! Registration takes a mutex and may allocate — it happens once per
//! metric, at setup time. The returned `&'static` handle is what hot
//! paths hold; touching it is a relaxed atomic add with no registry
//! involvement. Metrics live for the process lifetime (they are
//! intentionally leaked), which is what makes the `&'static` handles
//! possible without reference counting.

use crate::metrics::{Counter, Histogram};
use crate::snapshot::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, &'static Counter>,
    histograms: BTreeMap<String, &'static Histogram>,
}

/// A named collection of metrics.
///
/// Use [`global`] for the process-wide registry (compiler passes,
/// cross-cutting counters); components with per-instance state (switch
/// tables, servers) own their metrics directly and export them through
/// their own `telemetry_snapshot()` methods instead.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// A fresh, empty registry (tests; the process normally uses
    /// [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Names follow `gallium.<crate>.<subsystem>.<metric>`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(c) = inner.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        inner.counters.insert(name.to_string(), c);
        c
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(h) = inner.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        inner.histograms.insert(name.to_string(), h);
        h
    }

    /// Export every registered metric into a snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut snap = TelemetrySnapshot::default();
        for (name, c) in &inner.counters {
            snap.set_counter(name, c.get());
        }
        for (name, h) in &inner.histograms {
            snap.record_histogram(name, h);
        }
        snap
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_counter() {
        let r = Registry::new();
        let a = r.counter("gallium.test.a");
        let b = r.counter("gallium.test.a");
        a.inc();
        assert_eq!(b.get(), 1, "same registration");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        let r = Registry::new();
        r.counter("gallium.test.events").add(7);
        r.histogram("gallium.test.lat_ns").record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("gallium.test.events"), Some(7));
        assert_eq!(s.histogram("gallium.test.lat_ns").map(|h| h.count), Some(1));
    }

    #[test]
    fn global_is_stable() {
        let c1 = global().counter("gallium.test.global_stable");
        let c2 = global().counter("gallium.test.global_stable");
        assert!(std::ptr::eq(c1, c2));
    }
}
