//! The single source of truth for `gallium.<crate>.<subsystem>.<metric>`
//! names.
//!
//! Every layer that exports into a [`crate::TelemetrySnapshot`] — and
//! every test or bench that asserts on a key — names the metric through
//! these consts, so a typo'd key is a compile error instead of a
//! silently-absent metric. Dynamic families (per-table, per-partition)
//! get prefix consts plus a formatting helper.

// ---- core::Deployment ------------------------------------------------

/// Packets injected into the deployment.
pub const DEPLOY_INJECTED: &str = "gallium.core.deployment.injected";
/// Packets fully handled on the switch.
pub const DEPLOY_FAST_PATH: &str = "gallium.core.deployment.fast_path";
/// Packets that crossed to the middlebox server.
pub const DEPLOY_SLOW_PATH: &str = "gallium.core.deployment.slow_path";
/// Modelled total state-sync latency (ns).
pub const DEPLOY_SYNC_LATENCY_NS: &str = "gallium.core.deployment.sync_latency_ns";
/// Modelled visible (pre-release) sync latency (ns).
pub const DEPLOY_SYNC_VISIBLE_NS: &str = "gallium.core.deployment.sync_visible_ns";
/// Modelled server CPU cycles.
pub const DEPLOY_SERVER_CYCLES: &str = "gallium.core.deployment.server_cycles";
/// Sync operations acknowledged by the switch control plane.
pub const DEPLOY_SYNC_OPS_ACKED: &str = "gallium.core.deployment.sync_ops_acked";
/// Packets held for output commit.
pub const DEPLOY_HELD_FOR_COMMIT: &str = "gallium.core.deployment.held_for_commit";
/// Hold-for-commit wait histogram (ns).
pub const DEPLOY_HOLD_FOR_COMMIT_NS: &str = "gallium.core.deployment.hold_for_commit_ns";
/// Batch API invocations.
pub const DEPLOY_BATCHES: &str = "gallium.core.deployment.batches";
/// Packets pushed through the batch API.
pub const DEPLOY_BATCH_PKTS: &str = "gallium.core.deployment.batch_pkts";

// ---- per-stage latency histograms (sampled packets only) -------------

/// Warm fast-path wall time (ns) for sampled switch-only packets.
pub const STAGE_FAST_PATH_NS: &str = "gallium.core.deployment.stage.fast_path_ns";
/// Switch pre-processing wall time (ns) for sampled slow-path packets.
pub const STAGE_SWITCH_PRE_NS: &str = "gallium.core.deployment.stage.switch_pre_ns";
/// Boundary-crossing wall time (ns): encap + divert until server entry.
pub const STAGE_TRANSFER_NS: &str = "gallium.core.deployment.stage.transfer_ns";
/// Server slow-path wall time (ns), including state sync.
pub const STAGE_SERVER_NS: &str = "gallium.core.deployment.stage.server_ns";
/// Re-injection (switch post-processing) wall time (ns).
pub const STAGE_REINJECT_NS: &str = "gallium.core.deployment.stage.reinject_ns";

// ---- drop / fault attribution ----------------------------------------
// One counter per `telemetry::trace::DropReason`; every dropped or
// errored packet increments exactly one of these.

/// Program executed an explicit drop on the switch.
pub const DROP_SWITCH_MARKED: &str = "gallium.switchsim.switch.drop.marked";
/// Server-origin frame failed encapsulation sanity checks.
pub const DROP_SWITCH_MALFORMED_ENCAP: &str = "gallium.switchsim.switch.drop.malformed_encap";
/// Program executed an explicit drop on the server.
pub const DROP_SERVER_PROGRAM: &str = "gallium.server.drop.program";
/// Server slow path returned a typed execution error.
pub const DROP_DEPLOY_SERVER_ERROR: &str = "gallium.core.deployment.drop.server_error";
/// State-sync op rejected by the switch control plane.
pub const DROP_DEPLOY_SYNC_REJECTED: &str = "gallium.core.deployment.drop.sync_rejected";
/// Server-return frame tried to leave the switch again.
pub const DROP_DEPLOY_POST_LOOP: &str = "gallium.core.deployment.drop.post_loop";

// ---- flight recorder --------------------------------------------------

/// Packets sampled by the flight recorder.
pub const TRACE_SAMPLED: &str = "gallium.telemetry.trace.sampled";
/// Trace events emitted (including those since overwritten).
pub const TRACE_EVENTS: &str = "gallium.telemetry.trace.events";
/// Trace events lost to ring overwrites.
pub const TRACE_OVERWRITTEN: &str = "gallium.telemetry.trace.overwritten";
/// Ring capacity in events.
pub const TRACE_RING_CAPACITY: &str = "gallium.telemetry.trace.ring_capacity";

// ---- switchsim --------------------------------------------------------

/// Frames received from the network side.
pub const SWITCH_RX_NETWORK: &str = "gallium.switchsim.switch.rx_network";
/// Frames received back from the server.
pub const SWITCH_RX_SERVER: &str = "gallium.switchsim.switch.rx_server";
/// Frames fully handled by the offloaded partition.
pub const SWITCH_FAST_PATH: &str = "gallium.switchsim.switch.fast_path";
/// Frames encapsulated to the server.
pub const SWITCH_TO_SERVER: &str = "gallium.switchsim.switch.to_server";
/// Frames emitted on network ports.
pub const SWITCH_EMITTED: &str = "gallium.switchsim.switch.emitted";
/// Frames dropped on the switch (all reasons).
pub const SWITCH_DROPPED: &str = "gallium.switchsim.switch.dropped";
/// Cache-mode lookup misses flagged for replay.
pub const SWITCH_CACHE_MISSES: &str = "gallium.switchsim.switch.cache_misses";
/// Registers allocated on the switch.
pub const SWITCH_REGISTERS_COUNT: &str = "gallium.switchsim.registers.count";
/// Registers holding a nonzero value.
pub const SWITCH_REGISTERS_NONZERO: &str = "gallium.switchsim.registers.nonzero";
/// Plan build latency histogram (ns).
pub const PLAN_BUILD_NS: &str = "gallium.switchsim.plan.build_ns";
/// Plans compiled.
pub const PLAN_COMPILED: &str = "gallium.switchsim.plan.compiled";
/// Plan opcode count histogram.
pub const PLAN_OPS: &str = "gallium.switchsim.plan.ops";
/// Plan interned metadata slot count histogram.
pub const PLAN_META_SLOTS: &str = "gallium.switchsim.plan.meta_slots";
/// Expression-compiler micro-ops emitted per plan (histogram).
pub const PLAN_EXPR_MICRO_OPS: &str = "gallium.switchsim.plan.expr.micro_ops";
/// Expression-compiler virtual register file size per plan (histogram).
pub const PLAN_EXPR_REGS: &str = "gallium.switchsim.plan.expr.regs";
/// Constants folded / algebraic identities applied at plan build.
pub const PLAN_EXPR_CONST_FOLDED: &str = "gallium.switchsim.plan.expr.const_folded";
/// Common-subexpression reuse hits at plan build.
pub const PLAN_EXPR_CSE_HITS: &str = "gallium.switchsim.plan.expr.cse_hits";
/// Fused superinstructions (key-probe store fusion + folded branches).
pub const PLAN_EXPR_FUSED: &str = "gallium.switchsim.plan.expr.fused";
/// Dead micro-ops and metadata stores eliminated at plan build.
pub const PLAN_EXPR_DEAD_OPS: &str = "gallium.switchsim.plan.expr.dead_ops";

/// Perfect-hash read-layout rebuilds across all tables.
pub const TABLE_REBUILDS: &str = "gallium.switchsim.table.rebuilds";
/// Exact-match probes served by the perfect-hash read layout across all
/// tables.
pub const TABLE_PROBES: &str = "gallium.switchsim.table.probe";

/// Prefix of the per-table counter family
/// (`gallium.switchsim.table.<table>.<metric>`).
pub const TABLE_PREFIX: &str = "gallium.switchsim.table.";

/// The full key for one per-table metric, e.g.
/// `table_metric("conn", "evictions")`.
pub fn table_metric(table: &str, metric: &str) -> String {
    format!("{TABLE_PREFIX}{table}.{metric}")
}

// ---- core::compiler ---------------------------------------------------

/// Whole-pipeline compile latency histogram (ns).
pub const COMPILER_COMPILE_NS: &str = "gallium.core.compiler.compile_ns";
/// Programs compiled.
pub const COMPILER_COMPILES: &str = "gallium.core.compiler.compiles";
/// Partitioning pass latency histogram (ns).
pub const COMPILER_PARTITION_NS: &str = "gallium.core.compiler.partition_ns";
/// P4 code generation latency histogram (ns).
pub const COMPILER_P4_CODEGEN_NS: &str = "gallium.core.compiler.p4_codegen_ns";
/// P4 pretty-printing latency histogram (ns).
pub const COMPILER_P4_PRINT_NS: &str = "gallium.core.compiler.p4_print_ns";
/// Server code generation latency histogram (ns).
pub const COMPILER_SERVER_CODEGEN_NS: &str = "gallium.core.compiler.server_codegen_ns";
/// Explain-report construction latency histogram (ns).
pub const COMPILER_EXPLAIN_NS: &str = "gallium.core.compiler.explain_ns";
/// Translation-validation pass latency histogram (ns).
pub const COMPILER_VERIFY_NS: &str = "gallium.core.compiler.verify_ns";
/// P4 tables allocated across all compiles.
pub const COMPILER_P4_TABLES_ALLOCATED: &str = "gallium.core.compiler.p4_tables_allocated";
/// P4 registers allocated across all compiles.
pub const COMPILER_P4_REGISTERS_ALLOCATED: &str = "gallium.core.compiler.p4_registers_allocated";

// ---- partition --------------------------------------------------------

/// Partitioning fixpoint latency histogram (ns).
pub const PARTITION_NS: &str = "gallium.partition.partition_ns";
/// Programs partitioned.
pub const PARTITION_PROGRAMS: &str = "gallium.partition.programs";
/// Prefix of the per-partition instruction-count counter family
/// (`gallium.partition.insts.<partition>`).
pub const PARTITION_INSTS_PREFIX: &str = "gallium.partition.insts.";
/// Prefix of the per-reason rejection counter family
/// (`gallium.partition.rejections.<reason>`).
pub const PARTITION_REJECTIONS_PREFIX: &str = "gallium.partition.rejections.";

// ---- verify -----------------------------------------------------------

/// Whole-verifier latency histogram (ns).
pub const VERIFY_NS: &str = "gallium.verify.verify_ns";
/// Verifier runs.
pub const VERIFY_RUNS: &str = "gallium.verify.runs";
/// Soundness (translation-validation) pass latency histogram (ns).
pub const VERIFY_SOUNDNESS_NS: &str = "gallium.verify.soundness_ns";
/// Resource-audit pass latency histogram (ns).
pub const VERIFY_RESOURCES_NS: &str = "gallium.verify.resources_ns";
/// Lint pass latency histogram (ns).
pub const VERIFY_LINTS_NS: &str = "gallium.verify.lints_ns";
/// Verification errors found.
pub const VERIFY_ERRORS: &str = "gallium.verify.errors";
/// Lints reported.
pub const VERIFY_LINTS: &str = "gallium.verify.lints";

// ---- verify: symbolic plan validation ---------------------------------

/// Whole plan-validation latency histogram (ns): symcheck + absint.
pub const VERIFY_PLAN_NS: &str = "gallium.verify.plan.verify_ns";
/// Plan-validation runs.
pub const VERIFY_PLAN_RUNS: &str = "gallium.verify.plan.runs";
/// Symbolic translation-validation pass latency histogram (ns).
pub const VERIFY_PLAN_SYMCHECK_NS: &str = "gallium.verify.plan.symcheck_ns";
/// Abstract-interpretation (interval + known-bits) pass latency (ns).
pub const VERIFY_PLAN_ABSINT_NS: &str = "gallium.verify.plan.absint_ns";
/// Plan ≢ AST divergences found.
pub const VERIFY_PLAN_ERRORS: &str = "gallium.verify.plan.errors";
/// Plan lints reported (dead branches, constant guards, ...).
pub const VERIFY_PLAN_LINTS: &str = "gallium.verify.plan.lints";
/// Plans proven equivalent to their AST.
pub const VERIFY_PLAN_PROVED: &str = "gallium.verify.plan.proved";

// ---- server -----------------------------------------------------------

/// Packets taking the server slow path.
pub const SERVER_SLOW_PATH_PKTS: &str = "gallium.server.slow_path_pkts";
/// Packets whose output was committed.
pub const SERVER_COMMITTED_PKTS: &str = "gallium.server.committed_pkts";
/// Modelled server CPU cycles.
pub const SERVER_CYCLES: &str = "gallium.server.cycles";
/// Cache-miss replays executed.
pub const SERVER_REPLAYS: &str = "gallium.server.replays";
/// State-sync operations issued to the switch.
pub const SERVER_SYNC_OPS_ISSUED: &str = "gallium.server.sync_ops_issued";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_convention_holds() {
        for name in [
            DEPLOY_INJECTED,
            DEPLOY_HOLD_FOR_COMMIT_NS,
            STAGE_FAST_PATH_NS,
            DROP_SWITCH_MARKED,
            DROP_SERVER_PROGRAM,
            DROP_DEPLOY_POST_LOOP,
            TRACE_SAMPLED,
            SWITCH_RX_NETWORK,
            TABLE_REBUILDS,
            TABLE_PROBES,
            PLAN_BUILD_NS,
            PLAN_EXPR_MICRO_OPS,
            PLAN_EXPR_REGS,
            PLAN_EXPR_CONST_FOLDED,
            PLAN_EXPR_CSE_HITS,
            PLAN_EXPR_FUSED,
            PLAN_EXPR_DEAD_OPS,
            VERIFY_PLAN_NS,
            VERIFY_PLAN_RUNS,
            VERIFY_PLAN_SYMCHECK_NS,
            VERIFY_PLAN_ABSINT_NS,
            VERIFY_PLAN_ERRORS,
            VERIFY_PLAN_LINTS,
            VERIFY_PLAN_PROVED,
            SERVER_SLOW_PATH_PKTS,
        ] {
            assert!(name.starts_with("gallium."), "{name}");
            assert!(!name.ends_with('.'), "{name}");
            assert!(!name.contains(".."), "{name}");
        }
        assert_eq!(
            table_metric("conn", "evictions"),
            "gallium.switchsim.table.conn.evictions"
        );
    }
}
