//! The switch control plane and its latency model (Table 3).
//!
//! Table updates travel through the switch's management CPU and are
//! "significantly slower than packet processing" (§2.1). The latency
//! constants below are calibrated to the paper's Table 3 measurements:
//!
//! | #tables | insert   | modify   | delete   |
//! |---------|----------|----------|----------|
//! | 1       | 135.2 µs | 128.6 µs | 131.3 µs |
//! | 2       | 270.1 µs | 258.3 µs | 262.7 µs |
//! | 4       | 371.0 µs | 363.0 µs | 366.1 µs |
//!
//! The first two operations in a batch pay the full per-op cost (1→135 µs,
//! 2→270 µs); later ones pipeline behind them at roughly 50 µs each, which
//! reproduces the sub-linear 4-table row.

use crate::switch::Switch;
use crate::table::TableError;
use gallium_p4::ControlPlaneOp;

/// Why the control plane rejected an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// The operation named a table the loaded program does not declare.
    UnknownTable(String),
    /// The operation named a register the loaded program does not declare.
    UnknownRegister(String),
    /// An exact-match insert hit a full, non-evicting table.
    TableFull {
        /// Name of the full table.
        table: String,
    },
    /// An LPM insert was rejected by the table; `source` says why.
    Lpm {
        /// Name of the target table.
        table: String,
        /// The underlying table-level rejection.
        source: TableError,
    },
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::UnknownTable(t) => write!(f, "no table `{t}`"),
            ControlError::UnknownRegister(r) => write!(f, "no register `{r}`"),
            ControlError::TableFull { table } => write!(f, "table `{table}` full"),
            ControlError::Lpm { table, source } => {
                write!(f, "LPM table `{table}` rejected the entry: {source}")
            }
        }
    }
}

impl std::error::Error for ControlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ControlError::Lpm { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Full (unpipelined) latency of one control-plane operation, in ns.
pub fn control_op_latency_ns(op: &ControlPlaneOp) -> u64 {
    match op {
        ControlPlaneOp::TableInsert { .. } => 135_200,
        // Staging into the small write-back shadow (a fraction of the main
        // table's size, §4.3.3) is substantially cheaper than a main-table
        // update; calibrated so the output-commit hold reproduces the
        // paper's Figure 8 gains while Table 3 (main-table updates above)
        // stays exact.
        ControlPlaneOp::WriteBackStage { .. } => 45_000,
        // LPM entries (TCAM programming) cost about what an exact-match
        // insert does.
        ControlPlaneOp::LpmInsert { .. } => 135_200,
        ControlPlaneOp::TableModify { .. } => 128_600,
        ControlPlaneOp::TableDelete { .. } => 131_300,
        // Register writes and the visibility-bit flip are single PCIe
        // register writes — far cheaper than table updates.
        ControlPlaneOp::RegisterSet { .. } => 20_000,
        ControlPlaneOp::SetWriteBackBit(_) => 20_000,
        ControlPlaneOp::WriteBackClear { .. } => 20_000,
    }
}

/// Pipelined latency of the i-th (0-based) table operation in a batch.
fn pipelined_latency_ns(op: &ControlPlaneOp, index: usize) -> u64 {
    let full = control_op_latency_ns(op);
    if full < 100_000 || index < 2 {
        full
    } else {
        // Calibrated so 4 inserts ≈ 371 µs, 4 modifies ≈ 363 µs,
        // 4 deletes ≈ 366 µs, as in Table 3.
        match op {
            ControlPlaneOp::TableInsert { .. } | ControlPlaneOp::LpmInsert { .. } => 50_300,
            ControlPlaneOp::TableModify { .. } => 52_900,
            ControlPlaneOp::TableDelete { .. } => 51_750,
            _ => full,
        }
    }
}

/// Total latency of a batch of control-plane operations, in ns.
pub fn batch_latency_ns(ops: &[ControlPlaneOp]) -> u64 {
    ops.iter()
        .enumerate()
        .map(|(i, op)| pipelined_latency_ns(op, i))
        .sum()
}

/// The control-plane endpoint of a [`Switch`].
pub trait ControlPlane {
    /// Apply one operation, returning its modeled latency in ns. Unknown
    /// table/register names return an error.
    fn control(&mut self, op: &ControlPlaneOp) -> Result<u64, ControlError>;

    /// Apply a batch, returning the total modeled latency in ns.
    fn control_batch(&mut self, ops: &[ControlPlaneOp]) -> Result<u64, ControlError> {
        let mut i = 0usize;
        let mut total = 0u64;
        for op in ops {
            self.control(op)?;
            total += pipelined_latency_ns(op, i);
            if control_op_latency_ns(op) >= 100_000 {
                i += 1;
            }
        }
        Ok(total)
    }
}

impl ControlPlane for Switch {
    fn control(&mut self, op: &ControlPlaneOp) -> Result<u64, ControlError> {
        match op {
            ControlPlaneOp::TableInsert { table, key, value }
            | ControlPlaneOp::TableModify { table, key, value } => {
                let t = self
                    .table_mut(table)
                    .ok_or_else(|| ControlError::UnknownTable(table.clone()))?;
                let evicted = t.insert_main(key.clone(), value.clone()).map_err(|_| {
                    ControlError::TableFull {
                        table: table.clone(),
                    }
                })?;
                // Cache-mode FIFO displacement: surface the evicted keys to
                // whoever drives the control plane (drain_evictions).
                self.evictions
                    .extend(evicted.into_iter().map(|k| (table.clone(), k)));
            }
            ControlPlaneOp::TableDelete { table, key } => {
                self.table_mut(table)
                    .ok_or_else(|| ControlError::UnknownTable(table.clone()))?
                    .delete_main(key);
            }
            ControlPlaneOp::RegisterSet { register, value } => {
                if !self.set_register(register, *value) {
                    return Err(ControlError::UnknownRegister(register.clone()));
                }
            }
            ControlPlaneOp::WriteBackStage { table, key, value } => {
                self.table_mut(table)
                    .ok_or_else(|| ControlError::UnknownTable(table.clone()))?
                    .stage(key.clone(), value.clone());
            }
            ControlPlaneOp::SetWriteBackBit(b) => {
                self.wb_active = *b;
            }
            ControlPlaneOp::WriteBackClear { table } => {
                self.table_mut(table)
                    .ok_or_else(|| ControlError::UnknownTable(table.clone()))?
                    .drain_shadow();
            }
            ControlPlaneOp::LpmInsert {
                table,
                prefix,
                prefix_len,
                value,
            } => {
                let t = self
                    .table_mut(table)
                    .ok_or_else(|| ControlError::UnknownTable(table.clone()))?;
                let evicted =
                    t.lpm_insert(*prefix, *prefix_len, value.clone())
                        .map_err(|source| ControlError::Lpm {
                            table: table.clone(),
                            source,
                        })?;
                self.evictions.extend(
                    evicted
                        .into_iter()
                        .map(|(p, l)| (table.clone(), vec![p, u64::from(l)])),
                );
            }
        }
        Ok(control_op_latency_ns(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert(table: &str, k: u64, v: u64) -> ControlPlaneOp {
        ControlPlaneOp::TableInsert {
            table: table.into(),
            key: vec![k],
            value: vec![v],
        }
    }

    #[test]
    fn single_op_latencies_match_table3_row1() {
        assert_eq!(control_op_latency_ns(&insert("t", 1, 1)), 135_200);
        assert_eq!(
            control_op_latency_ns(&ControlPlaneOp::TableModify {
                table: "t".into(),
                key: vec![1],
                value: vec![1]
            }),
            128_600
        );
        assert_eq!(
            control_op_latency_ns(&ControlPlaneOp::TableDelete {
                table: "t".into(),
                key: vec![1]
            }),
            131_300
        );
    }

    #[test]
    fn batch_latencies_match_table3() {
        let one = vec![insert("a", 1, 1)];
        let two = vec![insert("a", 1, 1), insert("b", 1, 1)];
        let four = vec![
            insert("a", 1, 1),
            insert("b", 1, 1),
            insert("c", 1, 1),
            insert("d", 1, 1),
        ];
        assert_eq!(batch_latency_ns(&one), 135_200);
        assert_eq!(batch_latency_ns(&two), 270_400);
        assert_eq!(batch_latency_ns(&four), 371_000);
    }

    #[test]
    fn bit_flip_is_cheap() {
        assert!(control_op_latency_ns(&ControlPlaneOp::SetWriteBackBit(true)) < 50_000);
    }
}
