//! The compiled dataplane execution plan.
//!
//! Real RMT backends do not interpret a program AST per packet: the
//! compiler lowers the match-action pipeline into a fixed stage program
//! before any packet arrives. This module is that lowering for the
//! simulator. [`ExecPlan::build`] runs once at [`crate::Switch`] load time
//! and produces, per traversal (pre/post):
//!
//! * **Interned metadata** — every metadata field name is assigned a dense
//!   slot index; per-packet metadata becomes one reusable `Vec<u64>`
//!   scratch buffer instead of a `HashMap<String, u64>`.
//! * **Flattened expressions** — every [`P4Expr`] tree is compiled to a
//!   postfix opcode run evaluated with a reusable value stack (no
//!   recursion, no per-packet allocation).
//! * **A linear instruction stream** — the control-flow node DAG becomes
//!   one opcode vector with resolved jump targets, executed by a tight
//!   loop. Cyclic node graphs are rejected at build time (the interpreter
//!   only catches them mid-packet).
//! * **Pre-resolved transfer layouts** — each transfer-header field is
//!   mapped to its metadata slot, so encap/decap read and write the
//!   scratch buffer directly instead of going through name-keyed maps.
//!
//! Equivalence with the AST interpreter in [`crate::switch`] is enforced
//! by the differential suites (`tests/prop_plan.rs`, `bench_pr3`): both
//! paths share `BinOp::eval`, `hash_values`, header field access, and the
//! table runtime, and the lowering preserves statement order, branch
//! semantics (missing metadata reads as zero), and foreign-work tracking.

use crate::fasthash::FastBuildHasher;
use crate::switch::SwitchStats;
use crate::table::{KeyBuf, RtTable};
use gallium_mir::interp::{
    hash_values, read_header_field, refresh_ip_checksum, write_header_field,
};
use gallium_mir::types::mask_to_width;
use gallium_mir::{BinOp, HeaderField};
use gallium_net::{Packet, PortId};
use gallium_p4::{NodeNext, P4Expr, P4Program, P4Stmt};
use gallium_telemetry::trace::{DropReason, EventKind, Hop, Tracer};
use std::collections::HashMap;

/// Why a program could not be lowered to an execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A node's control transfer targets a node the traversal does not
    /// declare.
    BadNodeTarget {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The out-of-range node index.
        target: usize,
        /// Number of declared nodes.
        declared: usize,
    },
    /// The node graph contains a cycle — the generated pipeline must be a
    /// DAG (the interpreter would abort mid-packet on this input).
    CyclicPipeline {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// A node on the cycle.
        node: usize,
    },
    /// The entry node index is out of range.
    BadEntry {
        /// The entry index.
        entry: usize,
        /// Number of declared nodes.
        declared: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadNodeTarget {
                traversal,
                target,
                declared,
            } => write!(
                f,
                "{traversal} traversal jumps to node #{target}, but only {declared} declared"
            ),
            PlanError::CyclicPipeline { traversal, node } => {
                write!(f, "{traversal} traversal has a cycle through node #{node}")
            }
            PlanError::BadEntry { entry, declared } => {
                write!(f, "entry node #{entry} out of range ({declared} declared)")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One postfix expression opcode.
#[derive(Debug, Clone, Copy)]
enum EOp {
    Const(u64),
    Meta(u16),
    Header(HeaderField),
    Ingress,
    Bin(BinOp),
    Not,
    Cast(u8),
    Hash { arity: u16, width: u8 },
}

/// A compiled expression: a contiguous postfix run in the expression pool.
#[derive(Debug, Clone, Copy)]
struct ExprRef {
    start: u32,
    len: u32,
}

/// One lowered statement/control opcode.
#[derive(Debug, Clone, Copy)]
enum PlanOp {
    SetMeta {
        slot: u16,
        width: u8,
        expr: ExprRef,
    },
    SetHeader {
        field: HeaderField,
        expr: ExprRef,
    },
    TableLookup {
        table: u16,
        keys_start: u32,
        keys_len: u16,
        hit_slot: u16,
        vals_start: u32,
        vals_len: u16,
    },
    RegRead {
        reg: u16,
        dst: u16,
    },
    RegWrite {
        reg: u16,
        width: u8,
        expr: ExprRef,
    },
    RegFetchAdd {
        reg: u16,
        width: u8,
        dst: u16,
        expr: ExprRef,
    },
    UpdateChecksum,
    EmitCopy,
    MarkDrop,
    /// Record that this path encountered later-stage work (pre only).
    Foreign,
    Jump(u32),
    Branch {
        slot: u16,
        then_ip: u32,
        else_ip: u32,
    },
    Halt,
}

/// One compiled traversal: the opcode stream plus its constant pools.
#[derive(Debug, Default)]
pub(crate) struct TraversalPlan {
    ops: Vec<PlanOp>,
    exprs: Vec<EOp>,
    /// Key expressions for `TableLookup` ops, referenced by range.
    key_exprs: Vec<ExprRef>,
    /// Value destination slots for `TableLookup` ops, referenced by range.
    value_slots: Vec<u16>,
    entry_ip: u32,
}

/// The complete pre-lowered program: both traversals plus the transfer
/// slot maps and the interned slot space.
#[derive(Debug)]
pub struct ExecPlan {
    pub(crate) pre: TraversalPlan,
    pub(crate) post: TraversalPlan,
    /// Metadata slot per `header_to_server` field, in field order.
    pub(crate) to_server_slots: Vec<u16>,
    /// Metadata slot per `header_to_switch` field, in field order.
    pub(crate) from_server_slots: Vec<u16>,
    /// Total interned metadata slots (sizes the scratch buffer).
    pub(crate) n_slots: usize,
}

impl ExecPlan {
    /// Lower `prog` into an execution plan. Fails on malformed control
    /// flow (dangling node targets, cyclic node graphs) — conditions the
    /// AST interpreter only detects mid-packet.
    pub fn build(prog: &P4Program) -> Result<ExecPlan, PlanError> {
        let mut interner = Interner::default();
        let meta_bits: HashMap<&str, u16> = prog
            .metadata
            .iter()
            .map(|m| (m.name.as_str(), m.bits))
            .collect();
        let reg_widths: Vec<u8> = prog.registers.iter().map(|r| r.width).collect();
        let pre = compile_traversal(prog, true, "pre", &mut interner, &meta_bits, &reg_widths)?;
        let post = compile_traversal(prog, false, "post", &mut interner, &meta_bits, &reg_widths)?;
        let to_server_slots = prog
            .header_to_server
            .fields()
            .iter()
            .map(|f| interner.slot(&f.name))
            .collect();
        let from_server_slots = prog
            .header_to_switch
            .fields()
            .iter()
            .map(|f| interner.slot(&f.name))
            .collect();
        Ok(ExecPlan {
            pre,
            post,
            to_server_slots,
            from_server_slots,
            n_slots: interner.len(),
        })
    }

    /// Total lowered opcodes across both traversals (telemetry).
    pub fn op_count(&self) -> usize {
        self.pre.ops.len() + self.post.ops.len()
    }

    /// Number of interned metadata slots (telemetry).
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }
}

/// Metadata-name interner: dense slot indices assigned in first-seen order.
#[derive(Debug, Default)]
struct Interner {
    slots: HashMap<String, u16>,
}

impl Interner {
    fn slot(&mut self, name: &str) -> u16 {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = u16::try_from(self.slots.len()).expect("metadata slot space");
        self.slots.insert(name.to_string(), s);
        s
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Verify the node graph reachable from `entry` is a DAG with in-range
/// targets (iterative three-color DFS).
fn check_dag(prog: &P4Program, is_pre: bool, traversal: &'static str) -> Result<(), PlanError> {
    let nodes = if is_pre {
        &prog.pre_nodes
    } else {
        &prog.post_nodes
    };
    let n = nodes.len();
    if prog.entry >= n {
        return Err(PlanError::BadEntry {
            entry: prog.entry,
            declared: n,
        });
    }
    let succs = |i: usize| -> Vec<usize> {
        match &nodes[i].next {
            NodeNext::Jump(t) => vec![*t],
            NodeNext::Cond { then_n, else_n, .. } => vec![*then_n, *else_n],
            NodeNext::SkipJoin { join: Some(j), .. } => vec![*j],
            NodeNext::SkipJoin { join: None, .. } | NodeNext::End => vec![],
        }
    };
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut stack: Vec<(usize, usize)> = vec![(prog.entry, 0)];
    color[prog.entry] = 1;
    while let Some(&mut (node, ref mut next_child)) = stack.last_mut() {
        let ss = succs(node);
        if *next_child >= ss.len() {
            color[node] = 2;
            stack.pop();
            continue;
        }
        let t = ss[*next_child];
        *next_child += 1;
        if t >= n {
            return Err(PlanError::BadNodeTarget {
                traversal,
                target: t,
                declared: n,
            });
        }
        match color[t] {
            0 => {
                color[t] = 1;
                stack.push((t, 0));
            }
            1 => {
                return Err(PlanError::CyclicPipeline { traversal, node: t });
            }
            _ => {}
        }
    }
    Ok(())
}

fn compile_traversal(
    prog: &P4Program,
    is_pre: bool,
    traversal: &'static str,
    interner: &mut Interner,
    meta_bits: &HashMap<&str, u16>,
    reg_widths: &[u8],
) -> Result<TraversalPlan, PlanError> {
    check_dag(prog, is_pre, traversal)?;
    let nodes = if is_pre {
        &prog.pre_nodes
    } else {
        &prog.post_nodes
    };
    let mut plan = TraversalPlan::default();
    let mut node_ip = vec![0u32; nodes.len()];
    // (op index, target node) pairs patched once every node has an address.
    let mut fixups: Vec<(usize, usize)> = Vec::new();
    let width_of = |name: &str| -> u8 { meta_bits.get(name).copied().unwrap_or(64).min(64) as u8 };

    for (i, node) in nodes.iter().enumerate() {
        node_ip[i] = plan.ops.len() as u32;
        if is_pre && node.has_foreign_work {
            plan.ops.push(PlanOp::Foreign);
        }
        for stmt in &node.stmts {
            match stmt {
                P4Stmt::SetMeta(name, e) => {
                    let expr = compile_expr(e, &mut plan.exprs, interner);
                    plan.ops.push(PlanOp::SetMeta {
                        slot: interner.slot(name),
                        width: width_of(name),
                        expr,
                    });
                }
                P4Stmt::SetHeader(f, e) => {
                    let expr = compile_expr(e, &mut plan.exprs, interner);
                    plan.ops.push(PlanOp::SetHeader { field: *f, expr });
                }
                P4Stmt::TableLookup {
                    table,
                    keys,
                    hit_meta,
                    value_metas,
                } => {
                    let keys_start = plan.key_exprs.len() as u32;
                    for k in keys {
                        let e = compile_expr(k, &mut plan.exprs, interner);
                        plan.key_exprs.push(e);
                    }
                    let vals_start = plan.value_slots.len() as u32;
                    for m in value_metas {
                        let s = interner.slot(m);
                        plan.value_slots.push(s);
                    }
                    plan.ops.push(PlanOp::TableLookup {
                        table: *table as u16,
                        keys_start,
                        keys_len: keys.len() as u16,
                        hit_slot: interner.slot(hit_meta),
                        vals_start,
                        vals_len: value_metas.len() as u16,
                    });
                }
                P4Stmt::RegRead { reg, dst } => {
                    plan.ops.push(PlanOp::RegRead {
                        reg: *reg as u16,
                        dst: interner.slot(dst),
                    });
                }
                P4Stmt::RegWrite { reg, src } => {
                    let expr = compile_expr(src, &mut plan.exprs, interner);
                    plan.ops.push(PlanOp::RegWrite {
                        reg: *reg as u16,
                        width: reg_widths[*reg],
                        expr,
                    });
                }
                P4Stmt::RegFetchAdd { reg, dst, delta } => {
                    let expr = compile_expr(delta, &mut plan.exprs, interner);
                    plan.ops.push(PlanOp::RegFetchAdd {
                        reg: *reg as u16,
                        width: reg_widths[*reg],
                        dst: interner.slot(dst),
                        expr,
                    });
                }
                P4Stmt::UpdateChecksum => plan.ops.push(PlanOp::UpdateChecksum),
                P4Stmt::EmitCopy => plan.ops.push(PlanOp::EmitCopy),
                P4Stmt::MarkDrop => plan.ops.push(PlanOp::MarkDrop),
            }
        }
        match &node.next {
            NodeNext::Jump(t) => {
                fixups.push((plan.ops.len(), *t));
                plan.ops.push(PlanOp::Jump(u32::MAX));
            }
            NodeNext::Cond {
                meta,
                then_n,
                else_n,
            } => {
                // Branch carries two fixups; encode the else target in the
                // fixup list right after the then target.
                fixups.push((plan.ops.len(), *then_n));
                fixups.push((plan.ops.len(), *else_n));
                plan.ops.push(PlanOp::Branch {
                    slot: interner.slot(meta),
                    then_ip: u32::MAX,
                    else_ip: u32::MAX,
                });
            }
            NodeNext::SkipJoin {
                join,
                skipped_has_foreign,
            } => {
                if is_pre && *skipped_has_foreign {
                    plan.ops.push(PlanOp::Foreign);
                }
                match join {
                    Some(j) => {
                        fixups.push((plan.ops.len(), *j));
                        plan.ops.push(PlanOp::Jump(u32::MAX));
                    }
                    None => plan.ops.push(PlanOp::Halt),
                }
            }
            NodeNext::End => plan.ops.push(PlanOp::Halt),
        }
    }
    // Patch jump targets now that every node has an instruction address.
    // Branch ops consume two consecutive fixup entries (then, else).
    let mut it = fixups.into_iter().peekable();
    while let Some((op_idx, target)) = it.next() {
        let ip = node_ip[target];
        match &mut plan.ops[op_idx] {
            PlanOp::Jump(t) => *t = ip,
            PlanOp::Branch {
                then_ip, else_ip, ..
            } => {
                *then_ip = ip;
                let (_, else_target) = it.next().expect("branch has two fixups");
                *else_ip = node_ip[else_target];
            }
            other => unreachable!("fixup on non-jump op {other:?}"),
        }
    }
    plan.entry_ip = node_ip[prog.entry];
    Ok(plan)
}

/// Lower an expression tree to postfix opcodes appended to `pool`.
fn compile_expr(e: &P4Expr, pool: &mut Vec<EOp>, interner: &mut Interner) -> ExprRef {
    let start = pool.len() as u32;
    emit_expr(e, pool, interner);
    ExprRef {
        start,
        len: pool.len() as u32 - start,
    }
}

fn emit_expr(e: &P4Expr, pool: &mut Vec<EOp>, interner: &mut Interner) {
    match e {
        P4Expr::Const(v, _) => pool.push(EOp::Const(*v)),
        P4Expr::Meta(n) => pool.push(EOp::Meta(interner.slot(n))),
        P4Expr::Header(f) => pool.push(EOp::Header(*f)),
        P4Expr::IngressPort => pool.push(EOp::Ingress),
        P4Expr::Bin(op, a, b) => {
            emit_expr(a, pool, interner);
            emit_expr(b, pool, interner);
            pool.push(EOp::Bin(*op));
        }
        P4Expr::Not(a) => {
            emit_expr(a, pool, interner);
            pool.push(EOp::Not);
        }
        P4Expr::Cast(a, w) => {
            emit_expr(a, pool, interner);
            pool.push(EOp::Cast(*w));
        }
        P4Expr::Hash(parts, w) => {
            for p in parts {
                emit_expr(p, pool, interner);
            }
            pool.push(EOp::Hash {
                arity: parts.len() as u16,
                width: *w,
            });
        }
    }
}

/// Reusable per-switch scratch buffers: zero allocation per packet.
#[derive(Debug, Default)]
pub(crate) struct PlanScratch {
    /// Dense metadata (one word per interned slot).
    pub meta: Vec<u64>,
    /// Expression evaluation stack.
    pub stack: Vec<u64>,
    /// Table key assembly buffer — inline up to [`crate::INLINE_KEY_WORDS`]
    /// words, matching the fixed-width match keys of the table layer.
    pub key: KeyBuf,
}

impl PlanScratch {
    pub(crate) fn sized_for(plan: &ExecPlan) -> Self {
        PlanScratch {
            meta: vec![0; plan.n_slots],
            stack: Vec::with_capacity(16),
            key: KeyBuf::new(),
        }
    }
}

/// The mutable runtime state a traversal touches, borrowed field-by-field
/// from the [`crate::Switch`] so the plan (borrowed from the same switch)
/// stays immutably shared.
pub(crate) struct PlanCtx<'a> {
    pub tables: &'a [RtTable],
    pub registers: &'a mut [u64],
    pub wb_active: bool,
    pub routes: &'a HashMap<u32, PortId, FastBuildHasher>,
    pub default_port: PortId,
    /// Flight-recorder hook for the sampled packet in flight, with the
    /// hop label of this traversal. `None` keeps the loop trace-free.
    pub trace: Option<(&'a Tracer, u32, Hop)>,
    pub stats: &'a mut SwitchStats,
}

/// What a plan traversal reported.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PlanRun {
    /// Pre only: the path crossed later-stage work (slow path).
    pub saw_foreign: bool,
    /// A lookup missed in a cache-mode table (voids the traversal).
    pub cache_missed: bool,
}

/// Route a packet by IPv4 destination, falling back to the default port.
#[inline]
pub(crate) fn route_for(
    routes: &HashMap<u32, PortId, FastBuildHasher>,
    default_port: PortId,
    pkt: &Packet,
) -> PortId {
    let daddr = read_header_field(pkt.bytes(), HeaderField::IpDaddr) as u32;
    routes.get(&daddr).copied().unwrap_or(default_port)
}

/// Evaluate a leaf opcode (no operands) directly; `None` for operators.
#[inline]
fn eval_leaf(op: &EOp, meta: &[u64], pkt: &Packet) -> Option<u64> {
    match op {
        EOp::Const(v) => Some(*v),
        EOp::Meta(s) => Some(meta[*s as usize]),
        EOp::Header(f) => Some(read_header_field(pkt.bytes(), *f)),
        EOp::Ingress => Some(u64::from(pkt.ingress.0)),
        _ => None,
    }
}

/// Evaluate one postfix expression run against the metadata scratch.
#[inline]
fn eval_expr(eops: &[EOp], stack: &mut Vec<u64>, meta: &[u64], pkt: &Packet) -> u64 {
    // The overwhelming majority of compiled expressions are tiny: a leaf
    // load, a cast of a leaf, or a binary op over two leaves (key fields,
    // branch predicates). Evaluate those shapes without touching the
    // stack; anything deeper falls through to the general machine.
    match eops {
        [op] => {
            if let Some(v) = eval_leaf(op, meta, pkt) {
                return v;
            }
        }
        [a, EOp::Cast(w)] => {
            if let Some(v) = eval_leaf(a, meta, pkt) {
                return mask_to_width(v, *w);
            }
        }
        [a, EOp::Not] => {
            if let Some(v) = eval_leaf(a, meta, pkt) {
                return !v;
            }
        }
        [a, b, EOp::Bin(op)] => {
            if let (Some(x), Some(y)) = (eval_leaf(a, meta, pkt), eval_leaf(b, meta, pkt)) {
                return op.eval(x, y, 64);
            }
        }
        _ => {}
    }
    stack.clear();
    for op in eops {
        match op {
            EOp::Const(v) => stack.push(*v),
            EOp::Meta(s) => stack.push(meta[*s as usize]),
            EOp::Header(f) => stack.push(read_header_field(pkt.bytes(), *f)),
            EOp::Ingress => stack.push(u64::from(pkt.ingress.0)),
            EOp::Bin(op) => {
                let b = stack.pop().expect("postfix arity");
                let a = stack.pop().expect("postfix arity");
                stack.push(op.eval(a, b, 64));
            }
            EOp::Not => {
                let a = stack.pop().expect("postfix arity");
                stack.push(!a);
            }
            EOp::Cast(w) => {
                let a = stack.pop().expect("postfix arity");
                stack.push(mask_to_width(a, *w));
            }
            EOp::Hash { arity, width } => {
                let at = stack.len() - usize::from(*arity);
                let h = hash_values(&stack[at..], *width);
                stack.truncate(at);
                stack.push(h);
            }
        }
    }
    stack.pop().unwrap_or(0)
}

/// Execute one compiled traversal over `pkt`. Emitted copies are appended
/// to `out`; metadata lives in `scratch.meta` (caller zeroes or pre-seeds
/// it). The node graph was proven acyclic at build time, so the loop needs
/// no step guard.
pub(crate) fn run_plan(
    plan: &TraversalPlan,
    ctx: &mut PlanCtx<'_>,
    scratch: &mut PlanScratch,
    pkt: &mut Packet,
    out: &mut Vec<(PortId, Packet)>,
) -> PlanRun {
    let mut run = PlanRun::default();
    let meta = &mut scratch.meta;
    let stack = &mut scratch.stack;
    let key = &mut scratch.key;
    let mut ip = plan.entry_ip as usize;
    loop {
        match &plan.ops[ip] {
            PlanOp::SetMeta { slot, width, expr } => {
                let v = eval_expr(
                    &plan.exprs[expr.start as usize..(expr.start + expr.len) as usize],
                    stack,
                    meta,
                    pkt,
                );
                meta[*slot as usize] = mask_to_width(v, *width);
            }
            PlanOp::SetHeader { field, expr } => {
                let v = eval_expr(
                    &plan.exprs[expr.start as usize..(expr.start + expr.len) as usize],
                    stack,
                    meta,
                    pkt,
                );
                write_header_field(pkt.bytes_mut(), *field, mask_to_width(v, field.bits()));
            }
            PlanOp::TableLookup {
                table,
                keys_start,
                keys_len,
                hit_slot,
                vals_start,
                vals_len,
            } => {
                key.clear();
                let krange = &plan.key_exprs
                    [*keys_start as usize..(*keys_start + u32::from(*keys_len)) as usize];
                for kref in krange {
                    let v = eval_expr(
                        &plan.exprs[kref.start as usize..(kref.start + kref.len) as usize],
                        stack,
                        meta,
                        pkt,
                    );
                    key.push(v);
                }
                let slots = &plan.value_slots
                    [*vals_start as usize..(*vals_start + u32::from(*vals_len)) as usize];
                let t = &ctx.tables[*table as usize];
                match t.lookup_ref(key.as_slice(), ctx.wb_active) {
                    Some(vals) => {
                        if let Some((tr, id, hop)) = ctx.trace {
                            tr.emit(id, hop, EventKind::TableHit, u64::from(*table));
                        }
                        meta[*hit_slot as usize] = 1;
                        for (s, v) in slots.iter().zip(vals) {
                            meta[*s as usize] = *v;
                        }
                    }
                    None => {
                        // A miss in a cached table is inconclusive — the
                        // authoritative map may hold the entry.
                        let cached = t.is_cache();
                        if cached {
                            run.cache_missed = true;
                        }
                        if let Some((tr, id, hop)) = ctx.trace {
                            let kind = if cached {
                                EventKind::CacheMiss
                            } else {
                                EventKind::TableMiss
                            };
                            tr.emit(id, hop, kind, u64::from(*table));
                        }
                        meta[*hit_slot as usize] = 0;
                        for s in slots {
                            meta[*s as usize] = 0;
                        }
                    }
                }
            }
            PlanOp::RegRead { reg, dst } => {
                meta[*dst as usize] = ctx.registers[*reg as usize];
            }
            PlanOp::RegWrite { reg, width, expr } => {
                let v = eval_expr(
                    &plan.exprs[expr.start as usize..(expr.start + expr.len) as usize],
                    stack,
                    meta,
                    pkt,
                );
                ctx.registers[*reg as usize] = mask_to_width(v, *width);
            }
            PlanOp::RegFetchAdd {
                reg,
                width,
                dst,
                expr,
            } => {
                let d = eval_expr(
                    &plan.exprs[expr.start as usize..(expr.start + expr.len) as usize],
                    stack,
                    meta,
                    pkt,
                );
                let old = ctx.registers[*reg as usize];
                ctx.registers[*reg as usize] = mask_to_width(old.wrapping_add(d), *width);
                meta[*dst as usize] = old;
            }
            PlanOp::UpdateChecksum => refresh_ip_checksum(pkt.bytes_mut()),
            PlanOp::EmitCopy => {
                ctx.stats.emitted += 1;
                let port = route_for(ctx.routes, ctx.default_port, pkt);
                if let Some((tr, id, hop)) = ctx.trace {
                    tr.emit(id, hop, EventKind::Emit, u64::from(port.0));
                }
                out.push((port, pkt.clone()));
            }
            PlanOp::MarkDrop => {
                ctx.stats.dropped += 1;
                ctx.stats.drop_marked += 1;
                if let Some((tr, id, hop)) = ctx.trace {
                    tr.emit(id, hop, EventKind::Drop, DropReason::SwitchMarked as u64);
                }
            }
            PlanOp::Foreign => {
                run.saw_foreign = true;
            }
            PlanOp::Jump(t) => {
                ip = *t as usize;
                continue;
            }
            PlanOp::Branch {
                slot,
                then_ip,
                else_ip,
            } => {
                ip = if meta[*slot as usize] != 0 {
                    *then_ip as usize
                } else {
                    *else_ip as usize
                };
                continue;
            }
            PlanOp::Halt => break,
        }
        ip += 1;
    }
    run
}
