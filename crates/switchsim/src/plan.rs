//! The compiled dataplane execution plan.
//!
//! Real RMT backends do not interpret a program AST per packet: the
//! compiler lowers the match-action pipeline into a fixed stage program
//! before any packet arrives. This module is that lowering for the
//! simulator. [`ExecPlan::build`] runs once at [`crate::Switch`] load time
//! and produces, per traversal (pre/post):
//!
//! * **Interned metadata** — every metadata field name is assigned a dense
//!   slot index; per-packet metadata becomes one reusable `Vec<u64>`
//!   scratch buffer instead of a `HashMap<String, u64>`.
//! * **Register-compiled expressions** — every [`P4Expr`] tree is lowered
//!   to a flat three-address micro-op stream ([`MOp`]) over a small
//!   virtual register file (reused via [`PlanScratch`]). The compiler
//!   folds constants, reuses common subexpressions within a node (value
//!   numbering keyed on resolved operands, so invalidation cascades
//!   automatically), eliminates dead values, and compacts the register
//!   file with a linear-scan allocation, all at build time.
//! * **Fused superinstructions** — the `SetMeta` runs that build table
//!   keys are absorbed into a single [`PlanOp::BuildKeyProbe`] that
//!   evaluates the pending micro-ops, applies the surviving metadata
//!   stores, assembles the `KeyBuf` straight from registers/immediates,
//!   and probes the table. Branch conditions materialized in the same
//!   node read their register directly (or constant-fold the branch into
//!   a jump); metadata stores whose value is never read outside the
//!   defining node are elided entirely.
//! * **A linear instruction stream** — the control-flow node DAG becomes
//!   one opcode vector with resolved jump targets, executed by a tight
//!   loop. Cyclic node graphs are rejected at build time (the interpreter
//!   only catches them mid-packet), and every register reference is
//!   validated def-before-use at build time, so execution never consults
//!   arity or bounds.
//! * **Pre-resolved transfer layouts** — each transfer-header field is
//!   mapped to its metadata slot, so encap/decap read and write the
//!   scratch buffer directly instead of going through name-keyed maps.
//!
//! Equivalence with the AST interpreter in [`crate::switch`] is enforced
//! by the differential suites (`tests/prop_plan.rs`, `bench_pr8`): both
//! paths share `BinOp::eval`, `hash_values`, header field access, and the
//! table runtime, and the lowering preserves statement order, branch
//! semantics (missing metadata reads as zero), and foreign-work tracking.
//! Dead-store elimination only ever removes writes to metadata slots that
//! are provably never read outside the defining node (and never packed
//! into a transfer header) — metadata is not externally observable, so
//! the differential surface (emissions, stats, state, transfers) is
//! untouched. [`PlanOptions`] can disable the fusion/elision layer, which
//! the fused ≡ unfused property tests exploit.

use crate::fasthash::FastBuildHasher;
use crate::switch::SwitchStats;
use crate::table::{KeyBuf, RtTable};
use gallium_mir::interp::{
    hash_values, hash_values_iter, read_header_field, refresh_ip_checksum, write_header_field,
};
use gallium_mir::types::mask_to_width;
use gallium_mir::{BinOp, HeaderField};
use gallium_net::{Packet, PortId};
use gallium_p4::{BlockNode, NodeNext, P4Expr, P4Program, P4Stmt};
use gallium_telemetry::trace::{DropReason, EventKind, Hop, Tracer};
use std::collections::HashMap;

/// Why a program could not be lowered to an execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A node's control transfer targets a node the traversal does not
    /// declare.
    BadNodeTarget {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The out-of-range node index.
        target: usize,
        /// Number of declared nodes.
        declared: usize,
    },
    /// The node graph contains a cycle — the generated pipeline must be a
    /// DAG (the interpreter would abort mid-packet on this input).
    CyclicPipeline {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// A node on the cycle.
        node: usize,
    },
    /// The entry node index is out of range.
    BadEntry {
        /// The entry index.
        entry: usize,
        /// Number of declared nodes.
        declared: usize,
    },
    /// A single node needed more virtual registers than the register file
    /// can address.
    RegisterOverflow {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The node that overflowed.
        node: usize,
    },
    /// The build-time validator found a micro-op reading a register before
    /// any micro-op defines it (a compiler invariant violation — caught at
    /// load instead of panicking mid-packet).
    UndefinedRegister {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The node with the malformed micro-op stream.
        node: usize,
    },
    /// A compiled pool (micro-ops, stores, keys, hash args) outgrew its
    /// index width.
    PoolOverflow {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// Which pool overflowed.
        what: &'static str,
    },
    /// The post-commit structural audit found an op referencing a pool
    /// range, metadata slot, register, or table index outside the plan's
    /// bounds — a corrupt pool is rejected with a typed error instead of
    /// panicking on a slice access at packet time.
    OutOfBounds {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// Opcode index of the malformed op.
        ip: u32,
        /// Which reference was out of bounds.
        what: &'static str,
    },
    /// A committed jump or branch targets an instruction outside the
    /// opcode stream (`ip == u32::MAX` marks the traversal entry point).
    BadJumpTarget {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// Opcode index of the jump/branch (`u32::MAX` for the entry).
        ip: u32,
        /// The out-of-range target instruction.
        target: u32,
    },
    /// The committed prefetch section is not the canonical projection of
    /// the pre traversal — re-deriving it from the committed opcode stream
    /// produced a different prologue or probe point. A stale or corrupt
    /// prefetch section would warm the wrong table slot (harmless) or
    /// execute ops with side effects off the packet path (not harmless),
    /// so it is rejected at load.
    BadPrefetch {
        /// What disagreed.
        what: &'static str,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadNodeTarget {
                traversal,
                target,
                declared,
            } => write!(
                f,
                "{traversal} traversal jumps to node #{target}, but only {declared} declared"
            ),
            PlanError::CyclicPipeline { traversal, node } => {
                write!(f, "{traversal} traversal has a cycle through node #{node}")
            }
            PlanError::BadEntry { entry, declared } => {
                write!(f, "entry node #{entry} out of range ({declared} declared)")
            }
            PlanError::RegisterOverflow { traversal, node } => write!(
                f,
                "{traversal} traversal node #{node} exceeds the virtual register file"
            ),
            PlanError::UndefinedRegister { traversal, node } => write!(
                f,
                "{traversal} traversal node #{node} reads a register before it is defined"
            ),
            PlanError::PoolOverflow { traversal, what } => {
                write!(f, "{traversal} traversal overflowed the {what} pool")
            }
            PlanError::OutOfBounds {
                traversal,
                ip,
                what,
            } => write!(
                f,
                "{traversal} traversal op #{ip} references an out-of-bounds {what}"
            ),
            PlanError::BadJumpTarget {
                traversal,
                ip,
                target,
            } => {
                if *ip == u32::MAX {
                    write!(
                        f,
                        "{traversal} traversal entry targets instruction #{target}, out of range"
                    )
                } else {
                    write!(
                        f,
                        "{traversal} traversal op #{ip} jumps to instruction #{target}, out of range"
                    )
                }
            }
            PlanError::BadPrefetch { what } => write!(
                f,
                "prefetch section is not the canonical pre-traversal projection ({what})"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Build-time switches for the expression compiler.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Enable the optimizing layer: cross-statement CSE, store fusion into
    /// host ops, dead-store/dead-value elimination, and branch folding.
    /// With `fuse: false` every statement compiles to a standalone op with
    /// its own metadata store and table keys reload metadata — the
    /// "unfused sequence" baseline the property tests compare against.
    pub fuse: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { fuse: true }
    }
}

/// Build-time statistics from the expression compiler (telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanExprStats {
    /// Micro-ops in the committed pools (both traversals).
    pub micro_ops: u64,
    /// Constants folded / algebraic identities applied at build time.
    pub folded: u64,
    /// Common-subexpression table hits.
    pub cse_hits: u64,
    /// Fused superinstructions: key probes that absorbed builder stores,
    /// plus branches reading a register or folded to a jump.
    pub fused: u64,
    /// Micro-ops and metadata stores removed as dead.
    pub dead: u64,
    /// Virtual register file size (max over all nodes).
    pub regs: u64,
}

/// A compiled value handle: a build-time constant or a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ExprVal {
    Const(u64),
    Reg(u16),
}

/// Resolve a value handle against the register file.
#[inline(always)]
fn resolve(v: ExprVal, regs: &[u64]) -> u64 {
    match v {
        ExprVal::Const(c) => c,
        ExprVal::Reg(r) => regs[usize::from(r)],
    }
}

/// One three-address micro-op. Operands and destinations are virtual
/// registers in the per-packet file; immediates are folded in at build
/// time. All arithmetic evaluates at width 64, exactly like the AST
/// interpreter (`BinOp::eval(a, b, 64)`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum MOp {
    LoadMeta {
        dst: u16,
        slot: u16,
    },
    LoadHeader {
        dst: u16,
        field: HeaderField,
    },
    LoadIngress {
        dst: u16,
    },
    BinRR {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    BinRI {
        op: BinOp,
        dst: u16,
        a: u16,
        imm: u64,
    },
    BinIR {
        op: BinOp,
        dst: u16,
        imm: u64,
        b: u16,
    },
    NotR {
        dst: u16,
        a: u16,
    },
    MaskR {
        dst: u16,
        a: u16,
        width: u8,
    },
    Hash {
        dst: u16,
        args_start: u32,
        args_len: u16,
        width: u8,
    },
}

impl MOp {
    pub(crate) fn dst(&self) -> u16 {
        match *self {
            MOp::LoadMeta { dst, .. }
            | MOp::LoadHeader { dst, .. }
            | MOp::LoadIngress { dst }
            | MOp::BinRR { dst, .. }
            | MOp::BinRI { dst, .. }
            | MOp::BinIR { dst, .. }
            | MOp::NotR { dst, .. }
            | MOp::MaskR { dst, .. }
            | MOp::Hash { dst, .. } => dst,
        }
    }
}

/// A contiguous range into one of the per-traversal pools.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PoolRef {
    pub(crate) start: u32,
    pub(crate) len: u16,
}

impl PoolRef {
    #[inline(always)]
    pub(crate) fn range(self) -> std::ops::Range<usize> {
        self.start as usize..self.start as usize + usize::from(self.len)
    }

    fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One pending metadata store: `meta[slot] = resolve(src)`. The source is
/// already masked to the slot width at build time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StoreSlot {
    pub(crate) slot: u16,
    pub(crate) src: ExprVal,
}

/// Where a branch reads its condition: a register defined in the same
/// node (fused) or the metadata slot (fallback for conditions set in an
/// earlier node).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BranchSrc {
    Reg(u16),
    Slot(u16),
}

/// One lowered statement/control opcode. Expression-bearing ops carry the
/// micro-op run to execute first (`run`) and the metadata stores to apply
/// after it (`stores`) — fused work from preceding `SetMeta` statements
/// rides along in both.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PlanOp {
    /// Execute micro-ops and apply stores, no other effect (flush point
    /// before non-hosting ops and node exits).
    Eval {
        run: PoolRef,
        stores: PoolRef,
    },
    SetHeader {
        run: PoolRef,
        stores: PoolRef,
        field: HeaderField,
        out: ExprVal,
    },
    /// The fused `SetMeta`+`TableLookup` superinstruction: run the pending
    /// micro-ops, apply the surviving builder stores, assemble the key
    /// buffer from registers/immediates, and probe the table.
    BuildKeyProbe {
        run: PoolRef,
        stores: PoolRef,
        table: u16,
        keys: PoolRef,
        hit_slot: u16,
        vals: PoolRef,
    },
    RegRead {
        reg: u16,
        dst: u16,
    },
    RegWrite {
        run: PoolRef,
        stores: PoolRef,
        reg: u16,
        out: ExprVal,
    },
    RegFetchAdd {
        run: PoolRef,
        stores: PoolRef,
        reg: u16,
        width: u8,
        dst: u16,
        out: ExprVal,
    },
    UpdateChecksum,
    EmitCopy,
    MarkDrop,
    /// Record that this path encountered later-stage work (pre only).
    Foreign,
    Jump(u32),
    Branch {
        run: PoolRef,
        stores: PoolRef,
        src: BranchSrc,
        then_ip: u32,
        else_ip: u32,
    },
    Halt,
}

/// One compiled traversal: the opcode stream plus its constant pools.
#[derive(Debug, Default)]
pub(crate) struct TraversalPlan {
    pub(crate) ops: Vec<PlanOp>,
    /// The micro-op pool; each op's `run` is a contiguous range.
    pub(crate) micro: Vec<MOp>,
    /// Metadata stores, referenced by range.
    pub(crate) stores: Vec<StoreSlot>,
    /// Table key sources for `BuildKeyProbe`, referenced by range.
    pub(crate) keys: Vec<ExprVal>,
    /// Hash inputs for `MOp::Hash`, referenced by range.
    pub(crate) hash_args: Vec<ExprVal>,
    /// Value destination slots for `BuildKeyProbe`, referenced by range.
    pub(crate) value_slots: Vec<u16>,
    pub(crate) entry_ip: u32,
    /// First opcode index of each declared node, in node order (monotone:
    /// nodes commit sequentially). Retained for the symbolic validator and
    /// the read-only plan view — the execution loop never consults it.
    pub(crate) node_ips: Vec<u32>,
}

/// The pipelining projection of the pre traversal: the straight-line
/// prefix that computes the first table key, precomputed at build time so
/// batch processing can warm packet *n+1*'s match-table cache line while
/// packet *n* resolves.
///
/// `prologue` lists the instruction pointers of the [`PlanOp::Eval`] and
/// [`PlanOp::RegRead`] ops on the entry path (in execution order, with
/// [`PlanOp::Jump`]s followed and [`PlanOp::Foreign`] markers stepped
/// over); `probe_ip` is the first [`PlanOp::BuildKeyProbe`] that path
/// reaches. Traversals whose entry path hits a branch, header write,
/// register mutation, or emission before the first probe have no static
/// projection and carry no prefetch section — correctness never depends
/// on one existing. The section is *validated by re-derivation*: load and
/// translation validation recompute the projection from the committed
/// opcode stream and require bit-identical agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PrefetchPlan {
    /// Instruction pointers of the side-effect-free prologue ops.
    pub(crate) prologue: Vec<u32>,
    /// Instruction pointer of the first key probe on the entry path.
    pub(crate) probe_ip: u32,
    /// Whether the projection is a *pure* function of the packet bytes
    /// and ingress port alone: no `RegRead` in the prologue and no
    /// `Foreign` marker stepped over before the probe. Only pure
    /// projections may be **resumed** — the primed scratch handed to the
    /// resolving run with the prologue skipped. A register read could go
    /// stale between hint and resolve, and skipping a `Foreign` would
    /// lose the to-server routing decision; impure projections still
    /// warm the cache line, they just replay from the entry point.
    pub(crate) pure: bool,
}

/// Compute the canonical prefetch projection of a committed traversal.
/// Walks from the entry point recording pure prologue ops, following
/// jumps, and stepping over `Foreign` markers; stops successfully at the
/// first `BuildKeyProbe` and bails (no projection) at any op whose
/// execution off the packet path would be observable. Total, even on
/// corrupt streams: out-of-range targets and jump cycles return `None`
/// via the step bound instead of looping.
pub(crate) fn derive_prefetch(plan: &TraversalPlan) -> Option<PrefetchPlan> {
    let mut prologue = Vec::new();
    let mut pure = true;
    let mut ip = plan.entry_ip as usize;
    let mut steps = 0usize;
    loop {
        if steps > plan.ops.len() {
            return None;
        }
        steps += 1;
        match plan.ops.get(ip)? {
            PlanOp::Eval { .. } => prologue.push(ip as u32),
            // Replayable (registers are read through a stable snapshot)
            // but not *resumable*: the value could change between the
            // hint and the resolving run.
            PlanOp::RegRead { .. } => {
                prologue.push(ip as u32);
                pure = false;
            }
            // `Foreign` only flags the *real* run's slow path; the
            // prefetch pass ignores it (and must not record it) — but a
            // resume skipping it would drop `saw_foreign`.
            PlanOp::Foreign => pure = false,
            PlanOp::Jump(t) => {
                ip = *t as usize;
                continue;
            }
            PlanOp::BuildKeyProbe { .. } => {
                return Some(PrefetchPlan {
                    prologue,
                    probe_ip: ip as u32,
                    pure,
                })
            }
            // Branches make the path dynamic; every other op mutates the
            // packet, registers, stats, or emissions.
            _ => return None,
        }
        ip += 1;
    }
}

/// The complete pre-lowered program: both traversals plus the transfer
/// slot maps and the interned slot space.
#[derive(Debug)]
pub struct ExecPlan {
    pub(crate) pre: TraversalPlan,
    pub(crate) post: TraversalPlan,
    /// Static pipelining projection of `pre`, if one exists (see
    /// [`PrefetchPlan`]).
    pub(crate) prefetch: Option<PrefetchPlan>,
    /// Metadata slot per `header_to_server` field, in field order.
    pub(crate) to_server_slots: Vec<u16>,
    /// Metadata slot per `header_to_switch` field, in field order.
    pub(crate) from_server_slots: Vec<u16>,
    /// Total interned metadata slots (sizes the scratch buffer).
    pub(crate) n_slots: usize,
    /// Virtual register file size (sizes the scratch buffer).
    pub(crate) n_regs: usize,
    /// Interned slot per metadata name (debugging / test hooks).
    pub(crate) slots: HashMap<String, u16>,
    expr_stats: PlanExprStats,
}

impl ExecPlan {
    /// Lower `prog` into an execution plan with default options. Fails on
    /// malformed control flow (dangling node targets, cyclic node graphs)
    /// or compiler invariant violations — conditions the AST interpreter
    /// only detects mid-packet, if at all.
    pub fn build(prog: &P4Program) -> Result<ExecPlan, PlanError> {
        Self::build_with(prog, PlanOptions::default())
    }

    /// Lower `prog` with explicit [`PlanOptions`].
    pub fn build_with(prog: &P4Program, opts: PlanOptions) -> Result<ExecPlan, PlanError> {
        let mut interner = Interner::default();
        let meta_bits: HashMap<&str, u16> = prog
            .metadata
            .iter()
            .map(|m| (m.name.as_str(), m.bits))
            .collect();
        let reg_widths: Vec<u8> = prog.registers.iter().map(|r| r.width).collect();
        // Intern the transfer slots up front: the pre traversal must treat
        // to-server fields as externally read (attach_with reads them from
        // the scratch after the run), which pins their metadata stores.
        let to_server_slots: Vec<u16> = prog
            .header_to_server
            .fields()
            .iter()
            .map(|f| interner.slot(&f.name))
            .collect();
        let from_server_slots: Vec<u16> = prog
            .header_to_switch
            .fields()
            .iter()
            .map(|f| interner.slot(&f.name))
            .collect();
        let mut stats = PlanExprStats::default();
        let (pre, pre_regs) = compile_traversal(
            prog,
            true,
            "pre",
            &mut interner,
            &meta_bits,
            &reg_widths,
            &to_server_slots,
            opts,
            &mut stats,
        )?;
        let (post, post_regs) = compile_traversal(
            prog,
            false,
            "post",
            &mut interner,
            &meta_bits,
            &reg_widths,
            &[],
            opts,
            &mut stats,
        )?;
        let n_regs = usize::from(pre_regs.max(post_regs));
        stats.micro_ops = (pre.micro.len() + post.micro.len()) as u64;
        stats.regs = n_regs as u64;
        let prefetch = derive_prefetch(&pre);
        let plan = ExecPlan {
            pre,
            post,
            prefetch,
            to_server_slots,
            from_server_slots,
            n_slots: interner.len(),
            n_regs,
            slots: interner.slots,
            expr_stats: stats,
        };
        plan.validate_committed(prog.tables.len(), prog.registers.len())?;
        Ok(plan)
    }

    /// Post-commit structural audit over both committed streams: every
    /// pool range, metadata slot, register, table index, and jump target
    /// must be in bounds, so the execution loop (which indexes without
    /// checks by design) can never be handed a corrupt pool. Runs once per
    /// build; a violation is a compiler bug surfaced as a typed error at
    /// load instead of a slice panic at packet time.
    pub(crate) fn validate_committed(
        &self,
        n_tables: usize,
        n_registers: usize,
    ) -> Result<(), PlanError> {
        validate_traversal(
            &self.pre,
            "pre",
            self.n_slots,
            self.n_regs,
            n_tables,
            n_registers,
        )?;
        validate_traversal(
            &self.post,
            "post",
            self.n_slots,
            self.n_regs,
            n_tables,
            n_registers,
        )?;
        // The prefetch section must be exactly the canonical projection
        // of the committed pre stream. Equality against a fresh
        // derivation subsumes structural checks: the derivation only
        // yields in-bounds instruction pointers, and both the presence
        // and the shape of the section are pinned.
        if self.prefetch != derive_prefetch(&self.pre) {
            return Err(PlanError::BadPrefetch {
                what: "re-derivation disagrees with the committed section",
            });
        }
        Ok(())
    }

    /// Whether the plan carries a static prefetch projection (telemetry /
    /// bench introspection).
    pub fn has_prefetch(&self) -> bool {
        self.prefetch.is_some()
    }

    /// Total lowered opcodes across both traversals (telemetry).
    pub fn op_count(&self) -> usize {
        self.pre.ops.len() + self.post.ops.len()
    }

    /// Number of interned metadata slots (telemetry).
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// Total micro-ops across both traversals (telemetry).
    pub fn micro_op_count(&self) -> usize {
        self.pre.micro.len() + self.post.micro.len()
    }

    /// Virtual register file size (telemetry).
    pub fn reg_count(&self) -> usize {
        self.n_regs
    }

    /// Build-time expression compiler statistics.
    pub fn expr_stats(&self) -> PlanExprStats {
        self.expr_stats
    }
}

/// Metadata-name interner: dense slot indices assigned in first-seen order.
#[derive(Debug, Default)]
pub(crate) struct Interner {
    pub(crate) slots: HashMap<String, u16>,
}

impl Interner {
    pub(crate) fn slot(&mut self, name: &str) -> u16 {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = u16::try_from(self.slots.len()).expect("metadata slot space");
        self.slots.insert(name.to_string(), s);
        s
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Verify the node graph reachable from `entry` is a DAG with in-range
/// targets (iterative three-color DFS).
fn check_dag(prog: &P4Program, is_pre: bool, traversal: &'static str) -> Result<(), PlanError> {
    let nodes = if is_pre {
        &prog.pre_nodes
    } else {
        &prog.post_nodes
    };
    let n = nodes.len();
    if prog.entry >= n {
        return Err(PlanError::BadEntry {
            entry: prog.entry,
            declared: n,
        });
    }
    let succs = |i: usize| -> Vec<usize> {
        match &nodes[i].next {
            NodeNext::Jump(t) => vec![*t],
            NodeNext::Cond { then_n, else_n, .. } => vec![*then_n, *else_n],
            NodeNext::SkipJoin { join: Some(j), .. } => vec![*j],
            NodeNext::SkipJoin { join: None, .. } | NodeNext::End => vec![],
        }
    };
    // Every declared node's targets must be in range, even for nodes the
    // entry cannot reach: commit resolves an instruction address for every
    // declared node, so a dangling target in unreachable code would
    // otherwise index past the address table during jump patching.
    for i in 0..n {
        for t in succs(i) {
            if t >= n {
                return Err(PlanError::BadNodeTarget {
                    traversal,
                    target: t,
                    declared: n,
                });
            }
        }
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut stack: Vec<(usize, usize)> = vec![(prog.entry, 0)];
    color[prog.entry] = 1;
    while let Some(&mut (node, ref mut next_child)) = stack.last_mut() {
        let ss = succs(node);
        if *next_child >= ss.len() {
            color[node] = 2;
            stack.pop();
            continue;
        }
        let t = ss[*next_child];
        *next_child += 1;
        if t >= n {
            return Err(PlanError::BadNodeTarget {
                traversal,
                target: t,
                declared: n,
            });
        }
        match color[t] {
            0 => {
                color[t] = 1;
                stack.push((t, 0));
            }
            1 => {
                return Err(PlanError::CyclicPipeline { traversal, node: t });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Which nodes read each metadata slot. Drives dead-store elimination: a
/// write in node `n` needs a memory store only if the slot is read by a
/// different node or by the transfer attach after the run.
#[derive(Debug, Default)]
pub(crate) struct MetaReaders {
    map: HashMap<u16, Readers>,
}

#[derive(Debug, Clone, Copy)]
enum Readers {
    One(usize),
    Many,
}

impl MetaReaders {
    fn note(&mut self, slot: u16, node: usize) {
        match self.map.get(&slot) {
            None => {
                self.map.insert(slot, Readers::One(node));
            }
            Some(Readers::One(n)) if *n == node => {}
            Some(_) => {
                self.map.insert(slot, Readers::Many);
            }
        }
    }

    fn mark_external(&mut self, slot: u16) {
        self.map.insert(slot, Readers::Many);
    }

    pub(crate) fn needs_store(&self, slot: u16, node: usize) -> bool {
        match self.map.get(&slot) {
            None => false,
            Some(Readers::One(n)) => *n != node,
            Some(Readers::Many) => true,
        }
    }
}

/// Walk the metadata names an expression reads.
fn visit_meta_reads(e: &P4Expr, f: &mut impl FnMut(&str)) {
    match e {
        P4Expr::Meta(n) => f(n),
        P4Expr::Bin(_, a, b) => {
            visit_meta_reads(a, f);
            visit_meta_reads(b, f);
        }
        P4Expr::Not(a) | P4Expr::Cast(a, _) => visit_meta_reads(a, f),
        P4Expr::Hash(parts, _) => {
            for p in parts {
                visit_meta_reads(p, f);
            }
        }
        P4Expr::Const(..) | P4Expr::Header(_) | P4Expr::IngressPort => {}
    }
}

/// Collect every metadata read site across a traversal (expression leaves
/// and branch conditions), plus the externally read transfer slots.
pub(crate) fn scan_reads(
    nodes: &[BlockNode],
    interner: &mut Interner,
    external: &[u16],
) -> MetaReaders {
    let mut readers = MetaReaders::default();
    for &slot in external {
        readers.mark_external(slot);
    }
    for (i, node) in nodes.iter().enumerate() {
        let mut note = |interner: &mut Interner, e: &P4Expr| {
            visit_meta_reads(e, &mut |name| {
                let slot = interner.slot(name);
                readers.note(slot, i);
            });
        };
        for stmt in &node.stmts {
            match stmt {
                P4Stmt::SetMeta(_, e) | P4Stmt::SetHeader(_, e) => note(interner, e),
                P4Stmt::TableLookup { keys, .. } => {
                    for k in keys {
                        note(interner, k);
                    }
                }
                P4Stmt::RegWrite { src, .. } => note(interner, src),
                P4Stmt::RegFetchAdd { delta, .. } => note(interner, delta),
                P4Stmt::RegRead { .. }
                | P4Stmt::UpdateChecksum
                | P4Stmt::EmitCopy
                | P4Stmt::MarkDrop => {}
            }
        }
        if let NodeNext::Cond { meta, .. } = &node.next {
            let slot = interner.slot(meta);
            readers.note(slot, i);
        }
    }
    readers
}

/// Value-numbering key: derived entries are keyed on *resolved* operands
/// (registers/constants), so invalidating a leaf automatically invalidates
/// everything built on top of it — a re-resolved leaf lands in a fresh
/// register and derived keys stop matching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MKey {
    Meta(u16),
    Header(HeaderField),
    Ingress,
    Bin(BinOp, ExprVal, ExprVal),
    Not(u16),
    Mask(u16, u8),
    Hash(Vec<ExprVal>, u8),
}

/// Node-local action skeleton; becomes a [`PlanOp`] at commit.
#[derive(Debug)]
enum ActKind {
    Eval,
    SetHeader {
        field: HeaderField,
        out: ExprVal,
    },
    Probe {
        table: u16,
        keys: (u32, u32),
        hit_slot: u16,
        vals: (u32, u32),
    },
    RegRead {
        reg: u16,
        dst: u16,
    },
    RegWrite {
        reg: u16,
        out: ExprVal,
    },
    RegFetchAdd {
        reg: u16,
        width: u8,
        dst: u16,
        out: ExprVal,
    },
    UpdateChecksum,
    EmitCopy,
    MarkDrop,
    Foreign,
    Jump {
        node: usize,
    },
    Branch {
        src: BranchSrc,
        then_node: usize,
        else_node: usize,
    },
    Halt,
}

#[derive(Debug)]
struct ActionRec {
    /// Range into the node-local store list.
    stores: (u32, u32),
    kind: ActKind,
}

/// Number of significant bits a constant needs.
pub(crate) fn const_bits(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Compiles one control-flow node: forward pass with folding and value
/// numbering into SSA micro-ops, then dead-value elimination, def-before-
/// use validation, linear-scan register allocation, and commit into the
/// traversal pools.
struct NodeCompiler<'a> {
    interner: &'a mut Interner,
    meta_bits: &'a HashMap<&'a str, u16>,
    reg_widths: &'a [u8],
    readers: &'a MetaReaders,
    opts: PlanOptions,
    stats: &'a mut PlanExprStats,
    traversal: &'static str,
    node: usize,
    /// SSA micro-ops (destinations numbered 0..bits.len()).
    ops: Vec<MOp>,
    /// Owning action index per op (assigned when the action is emitted).
    op_owner: Vec<usize>,
    /// Node-local hash-arg pool (SSA refs; remapped at commit).
    hash_args: Vec<ExprVal>,
    /// Node-local key pool (SSA refs).
    keys: Vec<ExprVal>,
    /// Node-local value-slot pool.
    val_slots: Vec<u16>,
    /// Node-local committed stores (SSA refs).
    stores: Vec<StoreSlot>,
    actions: Vec<ActionRec>,
    /// Stores awaiting a host action.
    pending_stores: Vec<StoreSlot>,
    /// First op index not yet owned by an action.
    pending_op_start: usize,
    cse: HashMap<MKey, ExprVal>,
    /// Per-SSA-register conservative bound on significant bits (used to
    /// elide redundant width masks).
    bits: Vec<u8>,
}

impl<'a> NodeCompiler<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        interner: &'a mut Interner,
        meta_bits: &'a HashMap<&'a str, u16>,
        reg_widths: &'a [u8],
        readers: &'a MetaReaders,
        opts: PlanOptions,
        stats: &'a mut PlanExprStats,
        traversal: &'static str,
        node: usize,
    ) -> Self {
        NodeCompiler {
            interner,
            meta_bits,
            reg_widths,
            readers,
            opts,
            stats,
            traversal,
            node,
            ops: Vec::new(),
            op_owner: Vec::new(),
            hash_args: Vec::new(),
            keys: Vec::new(),
            val_slots: Vec::new(),
            stores: Vec::new(),
            actions: Vec::new(),
            pending_stores: Vec::new(),
            pending_op_start: 0,
            cse: HashMap::new(),
            bits: Vec::new(),
        }
    }

    fn width_of(&self, name: &str) -> u8 {
        self.meta_bits.get(name).copied().unwrap_or(64).min(64) as u8
    }

    fn fresh(&mut self, bits: u8) -> Result<u16, PlanError> {
        let r = u16::try_from(self.bits.len()).map_err(|_| PlanError::RegisterOverflow {
            traversal: self.traversal,
            node: self.node,
        })?;
        self.bits.push(bits.min(64));
        Ok(r)
    }

    fn val_bits(&self, v: ExprVal) -> u8 {
        match v {
            ExprVal::Const(c) => const_bits(c),
            ExprVal::Reg(r) => self.bits[usize::from(r)],
        }
    }

    /// Emit-or-reuse: value-numbered emission of a single micro-op.
    fn cached(
        &mut self,
        key: MKey,
        bits: u8,
        f: impl FnOnce(u16) -> MOp,
    ) -> Result<ExprVal, PlanError> {
        if let Some(v) = self.cse.get(&key) {
            self.stats.cse_hits += 1;
            return Ok(*v);
        }
        let dst = self.fresh(bits)?;
        self.ops.push(f(dst));
        self.op_owner.push(usize::MAX);
        let v = ExprVal::Reg(dst);
        self.cse.insert(key, v);
        Ok(v)
    }

    /// Mask `v` to `width`, eliding the op when the value provably fits.
    fn masked(&mut self, v: ExprVal, width: u8) -> Result<ExprVal, PlanError> {
        if width >= 64 {
            return Ok(v);
        }
        match v {
            ExprVal::Const(c) => Ok(ExprVal::Const(mask_to_width(c, width))),
            ExprVal::Reg(r) => {
                if self.bits[usize::from(r)] <= width {
                    self.stats.folded += 1;
                    return Ok(v);
                }
                self.cached(MKey::Mask(r, width), width, |dst| MOp::MaskR {
                    dst,
                    a: r,
                    width,
                })
            }
        }
    }

    /// Conservative bound on the significant bits of a binary result.
    fn bin_bits(&self, op: BinOp, va: ExprVal, vb: ExprVal) -> u8 {
        let (a, b) = (self.val_bits(va), self.val_bits(vb));
        match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::And => a.min(b),
            BinOp::Or | BinOp::Xor => a.max(b),
            BinOp::Add => (a.max(b) + 1).min(64),
            BinOp::Sub => 64,
            BinOp::Mul => (a + b).min(64),
            BinOp::Div => a,
            BinOp::Mod => a.min(b),
            BinOp::Shl => match vb {
                ExprVal::Const(c) if c < 64 => (a + c as u8).min(64),
                ExprVal::Const(_) => 0,
                ExprVal::Reg(_) => 64,
            },
            BinOp::Shr => match vb {
                ExprVal::Const(c) if c < 64 => a.saturating_sub(c as u8),
                ExprVal::Const(_) => 0,
                ExprVal::Reg(_) => a,
            },
        }
    }

    /// Compile a binary op: fold constants, apply algebraic identities
    /// (these can orphan already-emitted operand ops — dead-value
    /// elimination sweeps them), then emit with immediates folded in.
    fn bin(&mut self, op: BinOp, va: ExprVal, vb: ExprVal) -> Result<ExprVal, PlanError> {
        use ExprVal::{Const, Reg};
        if let (Const(a), Const(b)) = (va, vb) {
            self.stats.folded += 1;
            return Ok(Const(op.eval(a, b, 64)));
        }
        // Identical operands: registers are immutable within a node, so
        // `x op x` identities are exact.
        if va == vb {
            let folded = match op {
                BinOp::Sub | BinOp::Xor | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Mod => {
                    Some(Const(0))
                }
                BinOp::Eq | BinOp::Le | BinOp::Ge => Some(Const(1)),
                BinOp::And | BinOp::Or => Some(va),
                _ => None,
            };
            if let Some(v) = folded {
                self.stats.folded += 1;
                return Ok(v);
            }
        }
        // One-constant identities, matching `BinOp::eval` at width 64
        // exactly (including div/mod-by-zero → 0 and shift-≥64 → 0).
        let ident = match (op, va, vb) {
            (BinOp::And, _, Const(0)) | (BinOp::And, Const(0), _) => Some(Const(0)),
            (BinOp::And, v, Const(u64::MAX)) | (BinOp::And, Const(u64::MAX), v) => Some(v),
            (BinOp::Or, v, Const(0)) | (BinOp::Or, Const(0), v) => Some(v),
            (BinOp::Or, _, Const(u64::MAX)) | (BinOp::Or, Const(u64::MAX), _) => {
                Some(Const(u64::MAX))
            }
            (BinOp::Xor, v, Const(0)) | (BinOp::Xor, Const(0), v) => Some(v),
            (BinOp::Add, v, Const(0)) | (BinOp::Add, Const(0), v) => Some(v),
            (BinOp::Sub, v, Const(0)) => Some(v),
            (BinOp::Mul, _, Const(0)) | (BinOp::Mul, Const(0), _) => Some(Const(0)),
            (BinOp::Mul, v, Const(1)) | (BinOp::Mul, Const(1), v) => Some(v),
            (BinOp::Shl | BinOp::Shr, v, Const(0)) => Some(v),
            (BinOp::Shl | BinOp::Shr, _, Const(c)) if c >= 64 => Some(Const(0)),
            (BinOp::Div | BinOp::Mod, _, Const(0)) => Some(Const(0)),
            (BinOp::Div, v, Const(1)) => Some(v),
            (BinOp::Mod, _, Const(1)) => Some(Const(0)),
            (BinOp::Div | BinOp::Mod, Const(0), _) => Some(Const(0)),
            _ => None,
        };
        if let Some(v) = ident {
            self.stats.folded += 1;
            return Ok(v);
        }
        // Canonicalize commutative const-left to const-right so CSE keys
        // and the emitted form agree.
        let commutative = matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        );
        let (va, vb) = match (va, vb) {
            (Const(i), Reg(r)) if commutative => (Reg(r), Const(i)),
            other => other,
        };
        let bits = self.bin_bits(op, va, vb);
        match (va, vb) {
            (Reg(a), Reg(b)) => self.cached(MKey::Bin(op, va, vb), bits, |dst| MOp::BinRR {
                op,
                dst,
                a,
                b,
            }),
            (Reg(a), Const(imm)) => self.cached(MKey::Bin(op, va, vb), bits, |dst| MOp::BinRI {
                op,
                dst,
                a,
                imm,
            }),
            (Const(imm), Reg(b)) => self.cached(MKey::Bin(op, va, vb), bits, |dst| MOp::BinIR {
                op,
                dst,
                imm,
                b,
            }),
            (Const(_), Const(_)) => unreachable!("const-const folded above"),
        }
    }

    /// Lower an expression tree to a value handle, emitting micro-ops on
    /// demand.
    fn compile_expr(&mut self, e: &P4Expr) -> Result<ExprVal, PlanError> {
        match e {
            P4Expr::Const(v, _) => Ok(ExprVal::Const(*v)),
            P4Expr::Meta(n) => {
                let slot = self.interner.slot(n);
                // Slot contents are not guaranteed masked to the declared
                // width (table values and register reads land unmasked),
                // so a metadata load has unknown significant bits.
                self.cached(MKey::Meta(slot), 64, |dst| MOp::LoadMeta { dst, slot })
            }
            P4Expr::Header(f) => {
                let field = *f;
                self.cached(MKey::Header(field), field.bits(), |dst| MOp::LoadHeader {
                    dst,
                    field,
                })
            }
            P4Expr::IngressPort => self.cached(MKey::Ingress, 16, |dst| MOp::LoadIngress { dst }),
            P4Expr::Bin(op, a, b) => {
                let va = self.compile_expr(a)?;
                let vb = self.compile_expr(b)?;
                self.bin(*op, va, vb)
            }
            P4Expr::Not(a) => {
                let va = self.compile_expr(a)?;
                match va {
                    ExprVal::Const(c) => {
                        self.stats.folded += 1;
                        Ok(ExprVal::Const(!c))
                    }
                    ExprVal::Reg(r) => self.cached(MKey::Not(r), 64, |dst| MOp::NotR { dst, a: r }),
                }
            }
            P4Expr::Cast(a, w) => {
                let va = self.compile_expr(a)?;
                self.masked(va, *w)
            }
            P4Expr::Hash(parts, w) => {
                let mut vals = Vec::with_capacity(parts.len());
                for p in parts {
                    vals.push(self.compile_expr(p)?);
                }
                if vals.iter().all(|v| matches!(v, ExprVal::Const(_))) {
                    let ins: Vec<u64> = vals
                        .iter()
                        .map(|v| match v {
                            ExprVal::Const(c) => *c,
                            ExprVal::Reg(_) => 0,
                        })
                        .collect();
                    self.stats.folded += 1;
                    return Ok(ExprVal::Const(hash_values(&ins, *w)));
                }
                let key = MKey::Hash(vals.clone(), *w);
                if let Some(v) = self.cse.get(&key) {
                    self.stats.cse_hits += 1;
                    return Ok(*v);
                }
                let args_start =
                    u32::try_from(self.hash_args.len()).map_err(|_| PlanError::PoolOverflow {
                        traversal: self.traversal,
                        what: "hash args",
                    })?;
                let args_len = u16::try_from(vals.len()).map_err(|_| PlanError::PoolOverflow {
                    traversal: self.traversal,
                    what: "hash args",
                })?;
                self.hash_args.extend_from_slice(&vals);
                let width = *w;
                let dst = self.fresh(width.min(64))?;
                self.ops.push(MOp::Hash {
                    dst,
                    args_start,
                    args_len,
                    width,
                });
                self.op_owner.push(usize::MAX);
                let v = ExprVal::Reg(dst);
                self.cse.insert(key, v);
                Ok(v)
            }
        }
    }

    /// Emit an action, absorbing all pending micro-ops and stores.
    fn emit_action(&mut self, kind: ActKind) -> Result<(), PlanError> {
        let idx = self.actions.len();
        for owner in &mut self.op_owner[self.pending_op_start..] {
            *owner = idx;
        }
        self.pending_op_start = self.ops.len();
        let s_start = u32::try_from(self.stores.len()).map_err(|_| PlanError::PoolOverflow {
            traversal: self.traversal,
            what: "stores",
        })?;
        self.stores.append(&mut self.pending_stores);
        let s_end = self.stores.len() as u32;
        self.actions.push(ActionRec {
            stores: (s_start, s_end),
            kind,
        });
        Ok(())
    }

    /// Flush pending micro-ops/stores into a standalone `Eval` before an
    /// op that cannot host them.
    fn flush(&mut self) -> Result<(), PlanError> {
        if self.pending_op_start < self.ops.len() || !self.pending_stores.is_empty() {
            self.emit_action(ActKind::Eval)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &P4Stmt) -> Result<(), PlanError> {
        match stmt {
            P4Stmt::SetMeta(name, e) => {
                let raw = self.compile_expr(e)?;
                let val = self.masked(raw, self.width_of(name))?;
                let slot = self.interner.slot(name);
                self.cse.remove(&MKey::Meta(slot));
                self.cse.insert(MKey::Meta(slot), val);
                if !self.opts.fuse || self.readers.needs_store(slot, self.node) {
                    self.pending_stores.push(StoreSlot { slot, src: val });
                } else {
                    self.stats.dead += 1;
                }
                if !self.opts.fuse {
                    self.flush()?;
                    self.cse.clear();
                }
            }
            P4Stmt::SetHeader(f, e) => {
                let raw = self.compile_expr(e)?;
                let val = self.masked(raw, f.bits())?;
                self.cse.remove(&MKey::Header(*f));
                self.emit_action(ActKind::SetHeader {
                    field: *f,
                    out: val,
                })?;
                if !self.opts.fuse {
                    self.cse.clear();
                }
            }
            P4Stmt::TableLookup {
                table,
                keys,
                hit_meta,
                value_metas,
            } => {
                let k_start = self.keys.len() as u32;
                for k in keys {
                    let v = self.compile_expr(k)?;
                    self.keys.push(v);
                }
                let k_end = self.keys.len() as u32;
                let hit_slot = self.interner.slot(hit_meta);
                self.cse.remove(&MKey::Meta(hit_slot));
                let v_start = self.val_slots.len() as u32;
                for m in value_metas {
                    let s = self.interner.slot(m);
                    self.cse.remove(&MKey::Meta(s));
                    self.val_slots.push(s);
                }
                let v_end = self.val_slots.len() as u32;
                let had_stores = !self.pending_stores.is_empty();
                self.emit_action(ActKind::Probe {
                    table: *table as u16,
                    keys: (k_start, k_end),
                    hit_slot,
                    vals: (v_start, v_end),
                })?;
                if self.opts.fuse && had_stores {
                    // A true SetMeta+TableLookup fusion: the key builders'
                    // stores ride the probe superinstruction.
                    self.stats.fused += 1;
                }
                if !self.opts.fuse {
                    self.cse.clear();
                }
            }
            P4Stmt::RegRead { reg, dst } => {
                self.flush()?;
                let dst_slot = self.interner.slot(dst);
                self.cse.remove(&MKey::Meta(dst_slot));
                self.emit_action(ActKind::RegRead {
                    reg: *reg as u16,
                    dst: dst_slot,
                })?;
            }
            P4Stmt::RegWrite { reg, src } => {
                let raw = self.compile_expr(src)?;
                // Register writes mask to the register width; fold the
                // mask into the compiled value.
                let width = self.reg_width(*reg);
                let val = self.masked(raw, width)?;
                self.emit_action(ActKind::RegWrite {
                    reg: *reg as u16,
                    out: val,
                })?;
                if !self.opts.fuse {
                    self.cse.clear();
                }
            }
            P4Stmt::RegFetchAdd { reg, dst, delta } => {
                let val = self.compile_expr(delta)?;
                let dst_slot = self.interner.slot(dst);
                self.cse.remove(&MKey::Meta(dst_slot));
                self.emit_action(ActKind::RegFetchAdd {
                    reg: *reg as u16,
                    width: self.reg_width(*reg),
                    dst: dst_slot,
                    out: val,
                })?;
                if !self.opts.fuse {
                    self.cse.clear();
                }
            }
            P4Stmt::UpdateChecksum => {
                self.flush()?;
                // The checksum refresh rewrites the IP checksum field;
                // drop every cached header load rather than tracking which
                // field it was.
                self.cse.retain(|k, _| !matches!(k, MKey::Header(_)));
                self.emit_action(ActKind::UpdateChecksum)?;
            }
            P4Stmt::EmitCopy => {
                self.flush()?;
                self.emit_action(ActKind::EmitCopy)?;
            }
            P4Stmt::MarkDrop => {
                self.flush()?;
                self.emit_action(ActKind::MarkDrop)?;
            }
        }
        Ok(())
    }

    fn reg_width(&self, reg: usize) -> u8 {
        self.reg_widths.get(reg).copied().unwrap_or(64)
    }

    fn terminator(&mut self, next: &NodeNext, is_pre: bool) -> Result<(), PlanError> {
        match next {
            NodeNext::Jump(t) => {
                self.flush()?;
                self.emit_action(ActKind::Jump { node: *t })?;
            }
            NodeNext::Cond {
                meta,
                then_n,
                else_n,
            } => {
                let slot = self.interner.slot(meta);
                match self.cse.get(&MKey::Meta(slot)).copied() {
                    Some(ExprVal::Const(c)) => {
                        // The condition is a build-time constant within
                        // this node: the branch folds to a jump.
                        self.stats.fused += 1;
                        let t = if c != 0 { *then_n } else { *else_n };
                        self.flush()?;
                        self.emit_action(ActKind::Jump { node: t })?;
                    }
                    Some(ExprVal::Reg(r)) => {
                        self.stats.fused += 1;
                        self.emit_action(ActKind::Branch {
                            src: BranchSrc::Reg(r),
                            then_node: *then_n,
                            else_node: *else_n,
                        })?;
                    }
                    None => {
                        self.emit_action(ActKind::Branch {
                            src: BranchSrc::Slot(slot),
                            then_node: *then_n,
                            else_node: *else_n,
                        })?;
                    }
                }
            }
            NodeNext::SkipJoin {
                join,
                skipped_has_foreign,
            } => {
                self.flush()?;
                if is_pre && *skipped_has_foreign {
                    self.emit_action(ActKind::Foreign)?;
                }
                match join {
                    Some(j) => self.emit_action(ActKind::Jump { node: *j })?,
                    None => self.emit_action(ActKind::Halt)?,
                }
            }
            NodeNext::End => {
                self.flush()?;
                self.emit_action(ActKind::Halt)?;
            }
        }
        Ok(())
    }

    /// Mark the registers an action consumes.
    fn mark_action_refs(&self, a: &ActionRec, mut mark: impl FnMut(ExprVal)) {
        for s in &self.stores[a.stores.0 as usize..a.stores.1 as usize] {
            mark(s.src);
        }
        match &a.kind {
            ActKind::SetHeader { out, .. }
            | ActKind::RegWrite { out, .. }
            | ActKind::RegFetchAdd { out, .. } => mark(*out),
            ActKind::Probe { keys, .. } => {
                for k in &self.keys[keys.0 as usize..keys.1 as usize] {
                    mark(*k);
                }
            }
            ActKind::Branch {
                src: BranchSrc::Reg(r),
                ..
            } => mark(ExprVal::Reg(*r)),
            _ => {}
        }
    }

    /// Dead-value elimination: drop micro-ops whose results feed nothing
    /// (orphaned by algebraic identities or elided stores).
    fn dve(&mut self) {
        let n = self.bits.len();
        let mut used = vec![false; n];
        for i in 0..self.actions.len() {
            let a = &self.actions[i];
            let mut marks: Vec<u16> = Vec::new();
            self.mark_action_refs(a, |v| {
                if let ExprVal::Reg(r) = v {
                    marks.push(r);
                }
            });
            for r in marks {
                used[usize::from(r)] = true;
            }
        }
        for op in self.ops.iter().rev() {
            if !used[usize::from(op.dst())] {
                continue;
            }
            match *op {
                MOp::BinRR { a, b, .. } => {
                    used[usize::from(a)] = true;
                    used[usize::from(b)] = true;
                }
                MOp::BinRI { a, .. } | MOp::NotR { a, .. } | MOp::MaskR { a, .. } => {
                    used[usize::from(a)] = true;
                }
                MOp::BinIR { b, .. } => used[usize::from(b)] = true,
                MOp::Hash {
                    args_start,
                    args_len,
                    ..
                } => {
                    let range = args_start as usize..args_start as usize + usize::from(args_len);
                    for v in &self.hash_args[range] {
                        if let ExprVal::Reg(r) = v {
                            used[usize::from(*r)] = true;
                        }
                    }
                }
                MOp::LoadMeta { .. } | MOp::LoadHeader { .. } | MOp::LoadIngress { .. } => {}
            }
        }
        let before = self.ops.len();
        let mut kept_owner = Vec::with_capacity(self.op_owner.len());
        let mut kept_ops = Vec::with_capacity(self.ops.len());
        for (op, owner) in self.ops.iter().zip(&self.op_owner) {
            if used[usize::from(op.dst())] {
                kept_ops.push(*op);
                kept_owner.push(*owner);
            }
        }
        self.stats.dead += (before - kept_ops.len()) as u64;
        self.ops = kept_ops;
        self.op_owner = kept_owner;
    }

    /// Def-before-use validation over the surviving SSA stream: every
    /// register an op or action reads must have been defined by an earlier
    /// op in this node. Guards compiler invariants with a typed error so
    /// the execution loop never needs bounds or arity checks.
    fn validate(&self) -> Result<(), PlanError> {
        let err = || PlanError::UndefinedRegister {
            traversal: self.traversal,
            node: self.node,
        };
        let n = self.bits.len();
        let mut defined = vec![false; n];
        let check = |defined: &[bool], r: u16| -> Result<(), PlanError> {
            if defined.get(usize::from(r)).copied().unwrap_or(false) {
                Ok(())
            } else {
                Err(err())
            }
        };
        let check_val = |defined: &[bool], v: ExprVal| -> Result<(), PlanError> {
            match v {
                ExprVal::Const(_) => Ok(()),
                ExprVal::Reg(r) => check(defined, r),
            }
        };
        let mut op_ptr = 0usize;
        for (i, a) in self.actions.iter().enumerate() {
            while op_ptr < self.ops.len() && self.op_owner[op_ptr] == i {
                let op = &self.ops[op_ptr];
                match *op {
                    MOp::BinRR { a, b, .. } => {
                        check(&defined, a)?;
                        check(&defined, b)?;
                    }
                    MOp::BinRI { a, .. } | MOp::NotR { a, .. } | MOp::MaskR { a, .. } => {
                        check(&defined, a)?;
                    }
                    MOp::BinIR { b, .. } => check(&defined, b)?,
                    MOp::Hash {
                        args_start,
                        args_len,
                        ..
                    } => {
                        let range =
                            args_start as usize..args_start as usize + usize::from(args_len);
                        for v in &self.hash_args[range] {
                            check_val(&defined, *v)?;
                        }
                    }
                    MOp::LoadMeta { .. } | MOp::LoadHeader { .. } | MOp::LoadIngress { .. } => {}
                }
                defined[usize::from(op.dst())] = true;
                op_ptr += 1;
            }
            let mut bad = false;
            self.mark_action_refs(a, |v| {
                if let ExprVal::Reg(r) = v {
                    if !defined.get(usize::from(r)).copied().unwrap_or(false) {
                        bad = true;
                    }
                }
            });
            if bad {
                return Err(err());
            }
        }
        // Every op must be owned (the terminator flushes the tail).
        if op_ptr != self.ops.len() {
            return Err(err());
        }
        Ok(())
    }

    /// Linear-scan register allocation: compute each SSA value's last use,
    /// then map SSA ids onto a compact physical file with a free list.
    /// Rewrites ops, stores, keys, hash args, and action refs in place.
    /// Returns the physical file size this node needs.
    fn allocate(&mut self) -> Result<u16, PlanError> {
        let n = self.bits.len();
        // Event index: op k is event 2k, action i's consumption is the
        // event right after its last op. Simpler: walk ops and actions in
        // the same interleaved order twice, counting a monotonic clock.
        let mut last_use = vec![0usize; n];
        let mut def_at = vec![usize::MAX; n];
        let mut clock = 0usize;
        let mut op_ptr = 0usize;
        for (i, a) in self.actions.iter().enumerate() {
            while op_ptr < self.ops.len() && self.op_owner[op_ptr] == i {
                let op = &self.ops[op_ptr];
                let mut touch = |r: u16| last_use[usize::from(r)] = clock;
                match *op {
                    MOp::BinRR { a, b, .. } => {
                        touch(a);
                        touch(b);
                    }
                    MOp::BinRI { a, .. } | MOp::NotR { a, .. } | MOp::MaskR { a, .. } => touch(a),
                    MOp::BinIR { b, .. } => touch(b),
                    MOp::Hash {
                        args_start,
                        args_len,
                        ..
                    } => {
                        let range =
                            args_start as usize..args_start as usize + usize::from(args_len);
                        for v in &self.hash_args[range] {
                            if let ExprVal::Reg(r) = v {
                                last_use[usize::from(*r)] = clock;
                            }
                        }
                    }
                    _ => {}
                }
                let d = usize::from(op.dst());
                def_at[d] = clock;
                last_use[d] = last_use[d].max(clock);
                clock += 1;
                op_ptr += 1;
            }
            self.mark_action_refs(a, |v| {
                if let ExprVal::Reg(r) = v {
                    last_use[usize::from(r)] = clock;
                }
            });
            clock += 1;
        }
        // Assignment pass.
        let mut phys = vec![u16::MAX; n];
        let mut free: Vec<u16> = Vec::new();
        let mut high: u16 = 0;
        let mut clock = 0usize;
        let mut op_ptr = 0usize;
        let release = |phys: &[u16], free: &mut Vec<u16>, last: &[usize], r: u16, now: usize| {
            if last[usize::from(r)] == now && phys[usize::from(r)] != u16::MAX {
                free.push(phys[usize::from(r)]);
            }
        };
        for (i, a) in self.actions.iter().enumerate() {
            while op_ptr < self.ops.len() && self.op_owner[op_ptr] == i {
                let op = self.ops[op_ptr];
                match op {
                    MOp::BinRR { a, b, .. } => {
                        release(&phys, &mut free, &last_use, a, clock);
                        if b != a {
                            release(&phys, &mut free, &last_use, b, clock);
                        }
                    }
                    MOp::BinRI { a, .. } | MOp::NotR { a, .. } | MOp::MaskR { a, .. } => {
                        release(&phys, &mut free, &last_use, a, clock);
                    }
                    MOp::BinIR { b, .. } => release(&phys, &mut free, &last_use, b, clock),
                    MOp::Hash {
                        args_start,
                        args_len,
                        ..
                    } => {
                        let range =
                            args_start as usize..args_start as usize + usize::from(args_len);
                        let mut seen: Vec<u16> = Vec::new();
                        for v in self.hash_args[range].iter() {
                            if let ExprVal::Reg(r) = v {
                                if !seen.contains(r) {
                                    seen.push(*r);
                                    release(&phys, &mut free, &last_use, *r, clock);
                                }
                            }
                        }
                    }
                    _ => {}
                }
                let d = usize::from(op.dst());
                let p = match free.pop() {
                    Some(p) => p,
                    None => {
                        let p = high;
                        high = high.checked_add(1).ok_or(PlanError::RegisterOverflow {
                            traversal: self.traversal,
                            node: self.node,
                        })?;
                        p
                    }
                };
                phys[d] = p;
                // A value never read frees its register immediately.
                if last_use[d] == clock {
                    free.push(p);
                }
                clock += 1;
                op_ptr += 1;
            }
            // Action consumption frees operands at their last use so later
            // actions in the node can reuse their registers.
            let mut consumed: Vec<u16> = Vec::new();
            self.mark_action_refs(a, |v| {
                if let ExprVal::Reg(r) = v {
                    if !consumed.contains(&r) {
                        consumed.push(r);
                    }
                }
            });
            for r in consumed {
                release(&phys, &mut free, &last_use, r, clock);
            }
            clock += 1;
        }
        // Rewrite SSA ids to physical registers everywhere.
        let map = |r: u16| phys[usize::from(r)];
        let map_val = |v: ExprVal| match v {
            ExprVal::Reg(r) => ExprVal::Reg(map(r)),
            c => c,
        };
        for op in &mut self.ops {
            match op {
                MOp::LoadMeta { dst, .. }
                | MOp::LoadHeader { dst, .. }
                | MOp::LoadIngress { dst }
                | MOp::Hash { dst, .. } => *dst = map(*dst),
                MOp::BinRR { dst, a, b, .. } => {
                    *a = map(*a);
                    *b = map(*b);
                    *dst = map(*dst);
                }
                MOp::BinRI { dst, a, .. } | MOp::NotR { dst, a } | MOp::MaskR { dst, a, .. } => {
                    *a = map(*a);
                    *dst = map(*dst);
                }
                MOp::BinIR { dst, b, .. } => {
                    *b = map(*b);
                    *dst = map(*dst);
                }
            }
        }
        for v in &mut self.hash_args {
            *v = map_val(*v);
        }
        for v in &mut self.keys {
            *v = map_val(*v);
        }
        for s in &mut self.stores {
            s.src = map_val(s.src);
        }
        for a in &mut self.actions {
            match &mut a.kind {
                ActKind::SetHeader { out, .. }
                | ActKind::RegWrite { out, .. }
                | ActKind::RegFetchAdd { out, .. } => *out = map_val(*out),
                ActKind::Branch {
                    src: BranchSrc::Reg(r),
                    ..
                } => *r = map(*r),
                _ => {}
            }
        }
        Ok(high)
    }

    /// Append the node's actions to the traversal, remapping node-local
    /// pool ranges to the global pools and recording jump fixups.
    fn commit(
        self,
        plan: &mut TraversalPlan,
        fixups: &mut Vec<(usize, usize)>,
    ) -> Result<(), PlanError> {
        let overflow = |what: &'static str| PlanError::PoolOverflow {
            traversal: self.traversal,
            what,
        };
        let pool_ref =
            |start: usize, end: usize, what: &'static str| -> Result<PoolRef, PlanError> {
                Ok(PoolRef {
                    start: u32::try_from(start).map_err(|_| overflow(what))?,
                    len: u16::try_from(end - start).map_err(|_| overflow(what))?,
                })
            };
        let mut op_ptr = 0usize;
        for (i, a) in self.actions.iter().enumerate() {
            // Copy this action's micro-ops, remapping hash-arg ranges.
            let run_start = plan.micro.len();
            while op_ptr < self.ops.len() && self.op_owner[op_ptr] == i {
                let mut op = self.ops[op_ptr];
                if let MOp::Hash {
                    args_start,
                    args_len,
                    ..
                } = &mut op
                {
                    let local = *args_start as usize..*args_start as usize + usize::from(*args_len);
                    let new_start =
                        u32::try_from(plan.hash_args.len()).map_err(|_| overflow("hash args"))?;
                    plan.hash_args.extend_from_slice(&self.hash_args[local]);
                    *args_start = new_start;
                }
                plan.micro.push(op);
                op_ptr += 1;
            }
            let run = pool_ref(run_start, plan.micro.len(), "micro-ops")?;
            let st_start = plan.stores.len();
            plan.stores
                .extend_from_slice(&self.stores[a.stores.0 as usize..a.stores.1 as usize]);
            let stores = pool_ref(st_start, plan.stores.len(), "stores")?;
            match &a.kind {
                ActKind::Eval => {
                    if !run.is_empty() || !stores.is_empty() {
                        plan.ops.push(PlanOp::Eval { run, stores });
                    }
                }
                ActKind::SetHeader { field, out } => plan.ops.push(PlanOp::SetHeader {
                    run,
                    stores,
                    field: *field,
                    out: *out,
                }),
                ActKind::Probe {
                    table,
                    keys,
                    hit_slot,
                    vals,
                } => {
                    let gk_start = plan.keys.len();
                    plan.keys
                        .extend_from_slice(&self.keys[keys.0 as usize..keys.1 as usize]);
                    let gkeys = pool_ref(gk_start, plan.keys.len(), "table keys")?;
                    let gv_start = plan.value_slots.len();
                    plan.value_slots
                        .extend_from_slice(&self.val_slots[vals.0 as usize..vals.1 as usize]);
                    let gvals = pool_ref(gv_start, plan.value_slots.len(), "value slots")?;
                    plan.ops.push(PlanOp::BuildKeyProbe {
                        run,
                        stores,
                        table: *table,
                        keys: gkeys,
                        hit_slot: *hit_slot,
                        vals: gvals,
                    });
                }
                ActKind::RegRead { reg, dst } => {
                    debug_assert!(run.is_empty() && stores.is_empty());
                    plan.ops.push(PlanOp::RegRead {
                        reg: *reg,
                        dst: *dst,
                    });
                }
                ActKind::RegWrite { reg, out } => plan.ops.push(PlanOp::RegWrite {
                    run,
                    stores,
                    reg: *reg,
                    out: *out,
                }),
                ActKind::RegFetchAdd {
                    reg,
                    width,
                    dst,
                    out,
                } => plan.ops.push(PlanOp::RegFetchAdd {
                    run,
                    stores,
                    reg: *reg,
                    width: *width,
                    dst: *dst,
                    out: *out,
                }),
                ActKind::UpdateChecksum => plan.ops.push(PlanOp::UpdateChecksum),
                ActKind::EmitCopy => plan.ops.push(PlanOp::EmitCopy),
                ActKind::MarkDrop => plan.ops.push(PlanOp::MarkDrop),
                ActKind::Foreign => plan.ops.push(PlanOp::Foreign),
                ActKind::Jump { node } => {
                    fixups.push((plan.ops.len(), *node));
                    plan.ops.push(PlanOp::Jump(u32::MAX));
                }
                ActKind::Branch {
                    src,
                    then_node,
                    else_node,
                } => {
                    // Branch carries two fixups; encode the else target in
                    // the fixup list right after the then target.
                    fixups.push((plan.ops.len(), *then_node));
                    fixups.push((plan.ops.len(), *else_node));
                    plan.ops.push(PlanOp::Branch {
                        run,
                        stores,
                        src: *src,
                        then_ip: u32::MAX,
                        else_ip: u32::MAX,
                    });
                }
                ActKind::Halt => plan.ops.push(PlanOp::Halt),
            }
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn compile_traversal(
    prog: &P4Program,
    is_pre: bool,
    traversal: &'static str,
    interner: &mut Interner,
    meta_bits: &HashMap<&str, u16>,
    reg_widths: &[u8],
    external_reads: &[u16],
    opts: PlanOptions,
    stats: &mut PlanExprStats,
) -> Result<(TraversalPlan, u16), PlanError> {
    check_dag(prog, is_pre, traversal)?;
    let nodes = if is_pre {
        &prog.pre_nodes
    } else {
        &prog.post_nodes
    };
    let mut plan = TraversalPlan::default();
    let mut node_ip = vec![0u32; nodes.len()];
    // (op index, target node) pairs patched once every node has an address.
    let mut fixups: Vec<(usize, usize)> = Vec::new();
    let readers = scan_reads(nodes, interner, external_reads);
    let mut max_regs: u16 = 0;

    for (i, node) in nodes.iter().enumerate() {
        node_ip[i] = u32::try_from(plan.ops.len()).map_err(|_| PlanError::PoolOverflow {
            traversal,
            what: "ops",
        })?;
        let mut nc = NodeCompiler::new(
            interner, meta_bits, reg_widths, &readers, opts, stats, traversal, i,
        );
        if is_pre && node.has_foreign_work {
            nc.emit_action(ActKind::Foreign)?;
        }
        for stmt in &node.stmts {
            nc.stmt(stmt)?;
        }
        nc.terminator(&node.next, is_pre)?;
        if opts.fuse {
            nc.dve();
        }
        nc.validate()?;
        let regs = nc.allocate()?;
        max_regs = max_regs.max(regs);
        nc.commit(&mut plan, &mut fixups)?;
    }
    // Patch jump targets now that every node has an instruction address.
    // Branch ops consume two consecutive fixup entries (then, else).
    let mut it = fixups.into_iter().peekable();
    while let Some((op_idx, target)) = it.next() {
        let ip = node_ip[target];
        match &mut plan.ops[op_idx] {
            PlanOp::Jump(t) => *t = ip,
            PlanOp::Branch {
                then_ip, else_ip, ..
            } => {
                *then_ip = ip;
                let (_, else_target) = it.next().expect("branch has two fixups");
                *else_ip = node_ip[else_target];
            }
            other => unreachable!("fixup on non-jump op {other:?}"),
        }
    }
    plan.entry_ip = node_ip[prog.entry];
    plan.node_ips = node_ip;
    Ok((plan, max_regs))
}

/// One traversal's share of [`ExecPlan::validate_committed`]: walk every
/// committed op and bounds-check each pool range, slot, register, table
/// index, and control target it references.
fn validate_traversal(
    plan: &TraversalPlan,
    traversal: &'static str,
    n_slots: usize,
    n_regs: usize,
    n_tables: usize,
    n_registers: usize,
) -> Result<(), PlanError> {
    let oob = |ip: u32, what: &'static str| PlanError::OutOfBounds {
        traversal,
        ip,
        what,
    };
    let check_range = |ip: u32, r: PoolRef, pool_len: usize, what: &'static str| {
        if r.start as usize + usize::from(r.len) > pool_len {
            Err(oob(ip, what))
        } else {
            Ok(())
        }
    };
    let check_slot = |ip: u32, s: u16, what: &'static str| {
        if usize::from(s) >= n_slots {
            Err(oob(ip, what))
        } else {
            Ok(())
        }
    };
    let check_reg = |ip: u32, r: u16, what: &'static str| {
        if usize::from(r) >= n_regs {
            Err(oob(ip, what))
        } else {
            Ok(())
        }
    };
    let check_val = |ip: u32, v: ExprVal, what: &'static str| match v {
        ExprVal::Const(_) => Ok(()),
        ExprVal::Reg(r) => check_reg(ip, r, what),
    };
    let check_run = |ip: u32, r: PoolRef| -> Result<(), PlanError> {
        check_range(ip, r, plan.micro.len(), "micro-op range")?;
        for op in &plan.micro[r.range()] {
            check_reg(ip, op.dst(), "micro-op register")?;
            match *op {
                MOp::LoadMeta { slot, .. } => check_slot(ip, slot, "micro-op slot")?,
                MOp::BinRR { a, b, .. } => {
                    check_reg(ip, a, "micro-op register")?;
                    check_reg(ip, b, "micro-op register")?;
                }
                MOp::BinRI { a, .. } | MOp::NotR { a, .. } | MOp::MaskR { a, .. } => {
                    check_reg(ip, a, "micro-op register")?;
                }
                MOp::BinIR { b, .. } => check_reg(ip, b, "micro-op register")?,
                MOp::Hash {
                    args_start,
                    args_len,
                    ..
                } => {
                    let hr = PoolRef {
                        start: args_start,
                        len: args_len,
                    };
                    check_range(ip, hr, plan.hash_args.len(), "hash-arg range")?;
                    for v in &plan.hash_args[hr.range()] {
                        check_val(ip, *v, "hash-arg register")?;
                    }
                }
                MOp::LoadHeader { .. } | MOp::LoadIngress { .. } => {}
            }
        }
        Ok(())
    };
    let check_stores = |ip: u32, s: PoolRef| -> Result<(), PlanError> {
        check_range(ip, s, plan.stores.len(), "store range")?;
        for st in &plan.stores[s.range()] {
            check_slot(ip, st.slot, "store slot")?;
            check_val(ip, st.src, "store register")?;
        }
        Ok(())
    };
    let n_ops = plan.ops.len();
    let check_target = |ip: u32, target: u32| {
        if (target as usize) < n_ops {
            Ok(())
        } else {
            Err(PlanError::BadJumpTarget {
                traversal,
                ip,
                target,
            })
        }
    };
    for (i, op) in plan.ops.iter().enumerate() {
        let ip = i as u32;
        match op {
            PlanOp::Eval { run, stores } => {
                check_run(ip, *run)?;
                check_stores(ip, *stores)?;
            }
            PlanOp::SetHeader {
                run, stores, out, ..
            } => {
                check_run(ip, *run)?;
                check_stores(ip, *stores)?;
                check_val(ip, *out, "header-out register")?;
            }
            PlanOp::BuildKeyProbe {
                run,
                stores,
                table,
                keys,
                hit_slot,
                vals,
            } => {
                check_run(ip, *run)?;
                check_stores(ip, *stores)?;
                if usize::from(*table) >= n_tables {
                    return Err(oob(ip, "table"));
                }
                check_range(ip, *keys, plan.keys.len(), "key range")?;
                for k in &plan.keys[keys.range()] {
                    check_val(ip, *k, "key register")?;
                }
                check_slot(ip, *hit_slot, "hit slot")?;
                check_range(ip, *vals, plan.value_slots.len(), "value-slot range")?;
                for s in &plan.value_slots[vals.range()] {
                    check_slot(ip, *s, "value slot")?;
                }
            }
            PlanOp::RegRead { reg, dst } => {
                if usize::from(*reg) >= n_registers {
                    return Err(oob(ip, "state register"));
                }
                check_slot(ip, *dst, "register-read slot")?;
            }
            PlanOp::RegWrite {
                run,
                stores,
                reg,
                out,
            } => {
                check_run(ip, *run)?;
                check_stores(ip, *stores)?;
                if usize::from(*reg) >= n_registers {
                    return Err(oob(ip, "state register"));
                }
                check_val(ip, *out, "register-write register")?;
            }
            PlanOp::RegFetchAdd {
                run,
                stores,
                reg,
                dst,
                out,
                ..
            } => {
                check_run(ip, *run)?;
                check_stores(ip, *stores)?;
                if usize::from(*reg) >= n_registers {
                    return Err(oob(ip, "state register"));
                }
                check_slot(ip, *dst, "fetch-add slot")?;
                check_val(ip, *out, "fetch-add register")?;
            }
            PlanOp::Jump(t) => check_target(ip, *t)?,
            PlanOp::Branch {
                run,
                stores,
                src,
                then_ip,
                else_ip,
            } => {
                check_run(ip, *run)?;
                check_stores(ip, *stores)?;
                match src {
                    BranchSrc::Reg(r) => check_reg(ip, *r, "branch register")?,
                    BranchSrc::Slot(s) => check_slot(ip, *s, "branch slot")?,
                }
                check_target(ip, *then_ip)?;
                check_target(ip, *else_ip)?;
            }
            PlanOp::UpdateChecksum
            | PlanOp::EmitCopy
            | PlanOp::MarkDrop
            | PlanOp::Foreign
            | PlanOp::Halt => {}
        }
    }
    check_target(u32::MAX, plan.entry_ip)
}

/// Reusable per-switch scratch buffers: zero allocation per packet.
#[derive(Debug, Default)]
pub(crate) struct PlanScratch {
    /// Dense metadata (one word per interned slot).
    pub meta: Vec<u64>,
    /// The virtual register file (one word per physical register).
    pub regs: Vec<u64>,
    /// Table key assembly buffer — inline up to [`crate::INLINE_KEY_WORDS`]
    /// words, matching the fixed-width match keys of the table layer.
    pub key: KeyBuf,
}

impl PlanScratch {
    pub(crate) fn sized_for(plan: &ExecPlan) -> Self {
        PlanScratch {
            meta: vec![0; plan.n_slots],
            regs: vec![0; plan.n_regs],
            key: KeyBuf::new(),
        }
    }
}

/// The mutable runtime state a traversal touches, borrowed field-by-field
/// from the [`crate::Switch`] so the plan (borrowed from the same switch)
/// stays immutably shared.
pub(crate) struct PlanCtx<'a> {
    pub tables: &'a [RtTable],
    pub registers: &'a mut [u64],
    pub wb_active: bool,
    pub routes: &'a HashMap<u32, PortId, FastBuildHasher>,
    pub default_port: PortId,
    /// Flight-recorder hook for the sampled packet in flight, with the
    /// hop label of this traversal. `None` keeps the loop trace-free.
    pub trace: Option<(&'a Tracer, u32, Hop)>,
    pub stats: &'a mut SwitchStats,
}

/// What a plan traversal reported.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PlanRun {
    /// Pre only: the path crossed later-stage work (slow path).
    pub saw_foreign: bool,
    /// A lookup missed in a cache-mode table (voids the traversal).
    pub cache_missed: bool,
}

/// Route a packet by IPv4 destination, falling back to the default port.
#[inline]
pub(crate) fn route_for(
    routes: &HashMap<u32, PortId, FastBuildHasher>,
    default_port: PortId,
    pkt: &Packet,
) -> PortId {
    let daddr = read_header_field(pkt.bytes(), HeaderField::IpDaddr) as u32;
    routes.get(&daddr).copied().unwrap_or(default_port)
}

/// Execute one micro-op run against the register file. All register
/// indices were validated def-before-use at build time and the file is
/// sized to the plan's high-water mark, so plain indexing cannot fail.
#[inline]
fn run_micro(ops: &[MOp], hash_args: &[ExprVal], regs: &mut [u64], meta: &[u64], pkt: &Packet) {
    for op in ops {
        match *op {
            MOp::LoadMeta { dst, slot } => regs[usize::from(dst)] = meta[usize::from(slot)],
            MOp::LoadHeader { dst, field } => {
                regs[usize::from(dst)] = read_header_field(pkt.bytes(), field)
            }
            MOp::LoadIngress { dst } => regs[usize::from(dst)] = u64::from(pkt.ingress.0),
            MOp::BinRR { op, dst, a, b } => {
                regs[usize::from(dst)] = op.eval(regs[usize::from(a)], regs[usize::from(b)], 64)
            }
            MOp::BinRI { op, dst, a, imm } => {
                regs[usize::from(dst)] = op.eval(regs[usize::from(a)], imm, 64)
            }
            MOp::BinIR { op, dst, imm, b } => {
                regs[usize::from(dst)] = op.eval(imm, regs[usize::from(b)], 64)
            }
            MOp::NotR { dst, a } => regs[usize::from(dst)] = !regs[usize::from(a)],
            MOp::MaskR { dst, a, width } => {
                regs[usize::from(dst)] = mask_to_width(regs[usize::from(a)], width)
            }
            MOp::Hash {
                dst,
                args_start,
                args_len,
                width,
            } => {
                let args =
                    &hash_args[args_start as usize..args_start as usize + usize::from(args_len)];
                let h = hash_values_iter(args.iter().map(|a| resolve(*a, regs)), width);
                regs[usize::from(dst)] = h;
            }
        }
    }
}

/// Apply the metadata stores attached to an op (values are pre-masked at
/// build time).
#[inline(always)]
fn apply_stores(stores: &[StoreSlot], regs: &[u64], meta: &mut [u64]) {
    for s in stores {
        meta[usize::from(s.slot)] = resolve(s.src, regs);
    }
}

/// Assemble a table key from its compiled sources — the key-build half of
/// `BuildKeyProbe`, shared between the resolving run and the prefetch
/// pass so both produce bit-identical keys.
#[inline(always)]
fn build_key(keys: &[ExprVal], regs: &[u64], key: &mut KeyBuf) {
    key.clear();
    for k in keys {
        key.push(resolve(*k, regs));
    }
}

/// Execute one compiled traversal over `pkt`. Emitted copies are appended
/// to `out`; metadata lives in `scratch.meta` (caller zeroes or pre-seeds
/// it). The node graph was proven acyclic at build time, so the loop needs
/// no step guard.
///
/// `resume_at`: when the caller holds a scratch *primed* by
/// [`run_prefetch`] for this exact packet (pure projection, matching
/// content stamp — see [`crate::switch`]), pass the projection's
/// `probe_ip` to skip the already-executed prologue: execution starts at
/// the probe with the key, registers, and metadata the prefetch pass
/// left in `scratch`, and the probe itself skips its redundant key
/// build. `None` runs from the entry point on a caller-zeroed scratch.
pub(crate) fn run_plan(
    plan: &TraversalPlan,
    ctx: &mut PlanCtx<'_>,
    scratch: &mut PlanScratch,
    pkt: &mut Packet,
    out: &mut Vec<(PortId, Packet)>,
    resume_at: Option<u32>,
) -> PlanRun {
    let mut run = PlanRun::default();
    let meta = &mut scratch.meta;
    let regs = &mut scratch.regs;
    let key = &mut scratch.key;
    let (mut ip, mut primed) = match resume_at {
        Some(probe_ip) => (probe_ip as usize, true),
        None => (plan.entry_ip as usize, false),
    };
    loop {
        match &plan.ops[ip] {
            PlanOp::Eval { run: r, stores } => {
                run_micro(&plan.micro[r.range()], &plan.hash_args, regs, meta, pkt);
                apply_stores(&plan.stores[stores.range()], regs, meta);
            }
            PlanOp::SetHeader {
                run: r,
                stores,
                field,
                out: o,
            } => {
                run_micro(&plan.micro[r.range()], &plan.hash_args, regs, meta, pkt);
                apply_stores(&plan.stores[stores.range()], regs, meta);
                write_header_field(pkt.bytes_mut(), *field, resolve(*o, regs));
            }
            PlanOp::BuildKeyProbe {
                run: r,
                stores,
                table,
                keys,
                hit_slot,
                vals,
            } => {
                // A resumed run reaches its first probe with the key
                // (and the regs/meta feeding it) already built by the
                // prefetch pass; every later probe builds normally.
                if primed {
                    primed = false;
                } else {
                    run_micro(&plan.micro[r.range()], &plan.hash_args, regs, meta, pkt);
                    apply_stores(&plan.stores[stores.range()], regs, meta);
                    build_key(&plan.keys[keys.range()], regs, key);
                }
                let slots = &plan.value_slots[vals.range()];
                let t = &ctx.tables[usize::from(*table)];
                match t.lookup_ref(key.as_slice(), ctx.wb_active) {
                    Some(found) => {
                        if let Some((tr, id, hop)) = ctx.trace {
                            tr.emit(id, hop, EventKind::TableHit, u64::from(*table));
                        }
                        meta[usize::from(*hit_slot)] = 1;
                        for (s, v) in slots.iter().zip(found) {
                            meta[usize::from(*s)] = *v;
                        }
                    }
                    None => {
                        // A miss in a cached table is inconclusive — the
                        // authoritative map may hold the entry.
                        let cached = t.is_cache();
                        if cached {
                            run.cache_missed = true;
                        }
                        if let Some((tr, id, hop)) = ctx.trace {
                            let kind = if cached {
                                EventKind::CacheMiss
                            } else {
                                EventKind::TableMiss
                            };
                            tr.emit(id, hop, kind, u64::from(*table));
                        }
                        meta[usize::from(*hit_slot)] = 0;
                        for s in slots {
                            meta[usize::from(*s)] = 0;
                        }
                    }
                }
            }
            PlanOp::RegRead { reg, dst } => {
                meta[usize::from(*dst)] = ctx.registers[usize::from(*reg)];
            }
            PlanOp::RegWrite {
                run: r,
                stores,
                reg,
                out: o,
            } => {
                run_micro(&plan.micro[r.range()], &plan.hash_args, regs, meta, pkt);
                apply_stores(&plan.stores[stores.range()], regs, meta);
                ctx.registers[usize::from(*reg)] = resolve(*o, regs);
            }
            PlanOp::RegFetchAdd {
                run: r,
                stores,
                reg,
                width,
                dst,
                out: o,
            } => {
                run_micro(&plan.micro[r.range()], &plan.hash_args, regs, meta, pkt);
                apply_stores(&plan.stores[stores.range()], regs, meta);
                let d = resolve(*o, regs);
                let old = ctx.registers[usize::from(*reg)];
                ctx.registers[usize::from(*reg)] = mask_to_width(old.wrapping_add(d), *width);
                meta[usize::from(*dst)] = old;
            }
            PlanOp::UpdateChecksum => refresh_ip_checksum(pkt.bytes_mut()),
            PlanOp::EmitCopy => {
                ctx.stats.emitted += 1;
                let port = route_for(ctx.routes, ctx.default_port, pkt);
                if let Some((tr, id, hop)) = ctx.trace {
                    tr.emit(id, hop, EventKind::Emit, u64::from(port.0));
                }
                out.push((port, pkt.clone()));
            }
            PlanOp::MarkDrop => {
                ctx.stats.dropped += 1;
                ctx.stats.drop_marked += 1;
                if let Some((tr, id, hop)) = ctx.trace {
                    tr.emit(id, hop, EventKind::Drop, DropReason::SwitchMarked as u64);
                }
            }
            PlanOp::Foreign => {
                run.saw_foreign = true;
            }
            PlanOp::Jump(t) => {
                ip = *t as usize;
                continue;
            }
            PlanOp::Branch {
                run: r,
                stores,
                src,
                then_ip,
                else_ip,
            } => {
                run_micro(&plan.micro[r.range()], &plan.hash_args, regs, meta, pkt);
                apply_stores(&plan.stores[stores.range()], regs, meta);
                let cond = match src {
                    BranchSrc::Reg(r) => regs[usize::from(*r)],
                    BranchSrc::Slot(s) => meta[usize::from(*s)],
                };
                ip = if cond != 0 {
                    *then_ip as usize
                } else {
                    *else_ip as usize
                };
                continue;
            }
            PlanOp::Halt => break,
        }
        ip += 1;
    }
    run
}

/// The key-build + prefetch half of the pipelined batch: replay the pre
/// traversal's static prologue for `pkt` on a *dedicated* scratch, build
/// the first probe's key, and touch its match-table slot so the line is
/// in flight while the previous packet resolves.
///
/// Semantics-free by construction: the prologue contains only pure
/// evaluations and global-register *reads* (validated by re-derivation
/// at load), the packet is borrowed immutably, and the scratch must not
/// be the one the resolving run uses. A register write landing between
/// prefetch and resolve merely warms the wrong slot — the resolving run
/// recomputes the key from scratch. No-op for plans without a static
/// projection.
///
/// Returns `true` iff `scratch` is now fully **primed for resume**: the
/// projection is [pure](PrefetchPlan::pure) and the whole prologue plus
/// key build executed, so a resolving run for a packet with identical
/// bytes and ingress may start at `probe_ip` via [`run_plan`]'s
/// `resume_at` instead of replaying the prologue. `false` means the
/// pass was hint-only (cache line possibly warmed, scratch state
/// unusable).
pub(crate) fn run_prefetch(
    plan: &ExecPlan,
    tables: &[RtTable],
    registers: &[u64],
    scratch: &mut PlanScratch,
    pkt: &Packet,
) -> bool {
    let Some(pf) = &plan.prefetch else {
        return false;
    };
    let pre = &plan.pre;
    // Mirror the network-ingress zeroing so LoadMeta sees the same
    // prefix state the real run will.
    scratch.meta.fill(0);
    let meta = &mut scratch.meta;
    let regs = &mut scratch.regs;
    for &ip in &pf.prologue {
        match &pre.ops[ip as usize] {
            PlanOp::Eval { run, stores } => {
                run_micro(&pre.micro[run.range()], &pre.hash_args, regs, meta, pkt);
                apply_stores(&pre.stores[stores.range()], regs, meta);
            }
            PlanOp::RegRead { reg, dst } => {
                meta[usize::from(*dst)] = registers[usize::from(*reg)];
            }
            // Unreachable: the committed section re-derives to exactly
            // Eval/RegRead prologue ips (checked at load).
            _ => return false,
        }
    }
    let PlanOp::BuildKeyProbe {
        run,
        stores,
        table,
        keys,
        ..
    } = &pre.ops[pf.probe_ip as usize]
    else {
        return false;
    };
    run_micro(&pre.micro[run.range()], &pre.hash_args, regs, meta, pkt);
    apply_stores(&pre.stores[stores.range()], regs, meta);
    build_key(&pre.keys[keys.range()], regs, &mut scratch.key);
    tables[usize::from(*table)].prefetch(scratch.key.as_slice());
    pf.pure
}

/// Differential-testing hooks for the expression compiler: evaluate a
/// standalone [`P4Expr`] through the full compiled pipeline (lower →
/// register-allocate → execute) and through the AST interpreter's
/// reference evaluator, so property tests can compare them bit-for-bit.
pub mod expr_check {
    use super::*;
    use gallium_net::{TransferField, TransferHeaderLayout};
    use gallium_p4::MetaField;

    /// Slot name the synthetic program stores the expression result into.
    const OUT: &str = "__expr_check_out";

    fn synthetic_program(expr: &P4Expr, metas: &[(String, u16, u64)]) -> P4Program {
        let mut metadata: Vec<MetaField> = metas
            .iter()
            .map(|(name, bits, _)| MetaField {
                name: name.clone(),
                bits: *bits,
            })
            .collect();
        metadata.push(MetaField {
            name: OUT.to_string(),
            bits: 64,
        });
        // Packing the result into the to-server header marks its slot as
        // externally read, so dead-store elimination must keep the write —
        // exactly the invariant the production lowering relies on.
        let header_to_server =
            TransferHeaderLayout::new(vec![TransferField::new(OUT.to_string(), 64)])
                .expect("synthetic layout");
        let header_to_switch = TransferHeaderLayout::new(vec![]).expect("empty layout");
        P4Program {
            name: "__expr_check".to_string(),
            metadata,
            tables: vec![],
            registers: vec![],
            pre_nodes: vec![BlockNode {
                stmts: vec![P4Stmt::SetMeta(OUT.to_string(), expr.clone())],
                has_foreign_work: false,
                next: NodeNext::End,
            }],
            post_nodes: vec![BlockNode {
                stmts: vec![],
                has_foreign_work: false,
                next: NodeNext::End,
            }],
            entry: 0,
            header_to_server,
            header_to_switch,
            to_server_fields: vec![OUT.to_string()],
        }
    }

    /// Compile `expr` (with the given metadata declarations and seed
    /// values) and execute it against `pkt`, returning the 64-bit result.
    /// Seed values are written to the scratch unmasked, mirroring how
    /// table values and register reads land in slots at runtime.
    pub fn compiled_eval(
        expr: &P4Expr,
        metas: &[(String, u16, u64)],
        pkt: &Packet,
        fuse: bool,
    ) -> Result<u64, PlanError> {
        let prog = synthetic_program(expr, metas);
        let plan = ExecPlan::build_with(&prog, PlanOptions { fuse })?;
        let mut scratch = PlanScratch::sized_for(&plan);
        for (name, _, v) in metas {
            if let Some(&slot) = plan.slots.get(name) {
                scratch.meta[usize::from(slot)] = *v;
            }
        }
        let mut registers: Vec<u64> = vec![];
        let routes: HashMap<u32, PortId, FastBuildHasher> = HashMap::default();
        let mut stats = SwitchStats::default();
        let mut ctx = PlanCtx {
            tables: &[],
            registers: &mut registers,
            wb_active: false,
            routes: &routes,
            default_port: PortId(0),
            trace: None,
            stats: &mut stats,
        };
        let mut pkt = pkt.clone();
        let mut out = Vec::new();
        run_plan(&plan.pre, &mut ctx, &mut scratch, &mut pkt, &mut out, None);
        let slot = plan.slots.get(OUT).copied().expect("out slot interned");
        Ok(scratch.meta[usize::from(slot)])
    }

    /// Evaluate `expr` with the AST interpreter's reference evaluator over
    /// the same seed metadata (also unmasked).
    pub fn reference_eval(expr: &P4Expr, metas: &[(String, u16, u64)], pkt: &Packet) -> u64 {
        let map: HashMap<String, u64> = metas
            .iter()
            .map(|(name, _, v)| (name.clone(), *v))
            .collect();
        crate::switch::eval_ast(expr, pkt, &map)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gallium_mir::StateId;
    use gallium_net::{TransferField, TransferHeaderLayout};
    use gallium_p4::{MetaField, P4Register, P4Table, TableMatchKind};

    fn bin(op: BinOp, a: P4Expr, b: P4Expr) -> P4Expr {
        P4Expr::Bin(op, Box::new(a), Box::new(b))
    }

    fn meta(name: &str) -> P4Expr {
        P4Expr::Meta(name.to_string())
    }

    /// A small two-traversal program exercising every committed op shape:
    /// metadata arithmetic with masking, a hash, a fused two-key table
    /// probe, register ops, a computed branch, jumps, and pinned transfer
    /// stores. Shared with the symbolic-validator tests.
    pub(crate) fn fixture() -> P4Program {
        let mf = |name: &str, bits: u16| MetaField {
            name: name.to_string(),
            bits,
        };
        let set = |name: &str, e: P4Expr| P4Stmt::SetMeta(name.to_string(), e);
        let n0 = BlockNode {
            stmts: vec![
                set("a", P4Expr::Header(HeaderField::IpSaddr)),
                set(
                    "k0",
                    bin(
                        BinOp::Add,
                        P4Expr::Header(HeaderField::IpSaddr),
                        P4Expr::Const(7, 8),
                    ),
                ),
                set(
                    "k1",
                    P4Expr::Cast(
                        Box::new(bin(
                            BinOp::Add,
                            P4Expr::Header(HeaderField::IpDaddr),
                            meta("a"),
                        )),
                        16,
                    ),
                ),
                set(
                    "sum",
                    bin(BinOp::Add, P4Expr::Const(2, 8), P4Expr::Const(3, 8)),
                ),
                set(
                    "hh",
                    P4Expr::Hash(vec![meta("a"), P4Expr::Header(HeaderField::IpDaddr)], 16),
                ),
                P4Stmt::TableLookup {
                    table: 0,
                    keys: vec![meta("k0"), meta("k1")],
                    hit_meta: "t_hit".to_string(),
                    value_metas: vec!["t_v0".to_string()],
                },
                set("out", bin(BinOp::Add, meta("t_v0"), meta("a"))),
                set("cond", bin(BinOp::Eq, meta("t_hit"), P4Expr::Const(1, 1))),
            ],
            has_foreign_work: false,
            next: NodeNext::Cond {
                meta: "cond".to_string(),
                then_n: 1,
                else_n: 2,
            },
        };
        let n1 = BlockNode {
            stmts: vec![
                P4Stmt::RegFetchAdd {
                    reg: 0,
                    dst: "cnt_old".to_string(),
                    delta: P4Expr::Const(1, 8),
                },
                P4Stmt::RegWrite {
                    reg: 0,
                    src: meta("out"),
                },
                P4Stmt::SetHeader(
                    HeaderField::IpTtl,
                    bin(BinOp::Xor, meta("t_v0"), meta("hh")),
                ),
                P4Stmt::UpdateChecksum,
            ],
            has_foreign_work: false,
            next: NodeNext::Jump(3),
        };
        let n2 = BlockNode {
            stmts: vec![P4Stmt::MarkDrop],
            has_foreign_work: false,
            next: NodeNext::Jump(3),
        };
        let n3 = BlockNode {
            stmts: vec![
                P4Stmt::RegRead {
                    reg: 0,
                    dst: "rr".to_string(),
                },
                P4Stmt::EmitCopy,
            ],
            has_foreign_work: false,
            next: NodeNext::End,
        };
        let header_to_server = TransferHeaderLayout::new(vec![
            TransferField::new("sum".to_string(), 64),
            TransferField::new("out".to_string(), 64),
        ])
        .expect("layout");
        let header_to_switch = TransferHeaderLayout::new(vec![]).expect("layout");
        P4Program {
            name: "__plan_fixture".to_string(),
            metadata: vec![
                mf("a", 16),
                mf("k0", 32),
                mf("k1", 32),
                mf("sum", 64),
                mf("hh", 16),
                mf("t_hit", 1),
                mf("t_v0", 32),
                mf("out", 64),
                mf("cond", 1),
                mf("cnt_old", 64),
                mf("rr", 64),
            ],
            tables: vec![P4Table {
                name: "t".to_string(),
                state: StateId(0),
                key_widths: vec![32, 32],
                value_widths: vec![32],
                size: 16,
                match_kind: TableMatchKind::Exact,
            }],
            registers: vec![P4Register {
                name: "r".to_string(),
                state: StateId(1),
                width: 32,
            }],
            pre_nodes: vec![n0, n1, n2, n3],
            post_nodes: vec![BlockNode {
                stmts: vec![],
                has_foreign_work: false,
                next: NodeNext::End,
            }],
            entry: 0,
            header_to_server,
            header_to_switch,
            to_server_fields: vec!["sum".to_string(), "out".to_string()],
        }
    }

    fn plan() -> ExecPlan {
        ExecPlan::build(&fixture()).expect("fixture builds")
    }

    #[test]
    fn fixture_builds_fused_and_unfused() {
        for fuse in [true, false] {
            let p = ExecPlan::build_with(&fixture(), PlanOptions { fuse }).expect("builds");
            assert!(p.validate_committed(1, 1).is_ok());
        }
    }

    #[test]
    fn audit_rejects_micro_range_past_pool() {
        let mut p = plan();
        let found = p.pre.ops.iter_mut().any(|op| {
            if let PlanOp::Branch { run, .. } = op {
                run.start = u32::MAX - 1;
                true
            } else {
                false
            }
        });
        assert!(found, "fixture has a branch with a run");
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds {
                what: "micro-op range",
                ..
            })
        ));
    }

    #[test]
    fn audit_rejects_store_slot_past_scratch() {
        let mut p = plan();
        assert!(!p.pre.stores.is_empty(), "fixture has pinned stores");
        p.pre.stores[0].slot = p.n_slots as u16;
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds {
                what: "store slot",
                ..
            })
        ));
    }

    #[test]
    fn audit_rejects_store_register_past_file() {
        let mut p = plan();
        let idx = p
            .pre
            .stores
            .iter()
            .position(|s| matches!(s.src, ExprVal::Reg(_)))
            .expect("fixture has a register-sourced store");
        p.pre.stores[idx].src = ExprVal::Reg(p.n_regs as u16);
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds {
                what: "store register",
                ..
            })
        ));
    }

    #[test]
    fn audit_rejects_hash_arg_range_past_pool() {
        let mut p = plan();
        let bad = p.pre.hash_args.len() as u32;
        let found = p.pre.micro.iter_mut().any(|op| {
            if let MOp::Hash { args_start, .. } = op {
                *args_start = bad + 1;
                true
            } else {
                false
            }
        });
        assert!(found, "fixture has a hash micro-op");
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds {
                what: "hash-arg range",
                ..
            })
        ));
    }

    #[test]
    fn audit_rejects_key_register_past_file() {
        let mut p = plan();
        assert!(!p.pre.keys.is_empty(), "fixture probes a two-key table");
        p.pre.keys[0] = ExprVal::Reg(p.n_regs as u16);
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds {
                what: "key register",
                ..
            })
        ));
    }

    #[test]
    fn audit_rejects_table_index_past_declared() {
        let mut p = plan();
        let found = p.pre.ops.iter_mut().any(|op| {
            if let PlanOp::BuildKeyProbe { table, .. } = op {
                *table = 9;
                true
            } else {
                false
            }
        });
        assert!(found, "fixture has a probe");
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds { what: "table", .. })
        ));
    }

    #[test]
    fn audit_rejects_state_register_past_declared() {
        let mut p = plan();
        let found = p.pre.ops.iter_mut().any(|op| {
            if let PlanOp::RegFetchAdd { reg, .. } = op {
                *reg = 4;
                true
            } else {
                false
            }
        });
        assert!(found, "fixture has a fetch-add");
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::OutOfBounds {
                what: "state register",
                ..
            })
        ));
    }

    #[test]
    fn audit_rejects_jump_past_stream() {
        let mut p = plan();
        let bad = p.pre.ops.len() as u32;
        let found = p.pre.ops.iter_mut().any(|op| {
            if let PlanOp::Jump(t) = op {
                *t = bad;
                true
            } else {
                false
            }
        });
        assert!(found, "fixture has a jump");
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::BadJumpTarget { .. })
        ));
    }

    #[test]
    fn audit_rejects_branch_target_past_stream() {
        let mut p = plan();
        let bad = p.pre.ops.len() as u32;
        let found = p.pre.ops.iter_mut().any(|op| {
            if let PlanOp::Branch { else_ip, .. } = op {
                *else_ip = bad;
                true
            } else {
                false
            }
        });
        assert!(found, "fixture has a branch");
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::BadJumpTarget { .. })
        ));
    }

    #[test]
    fn audit_rejects_entry_past_stream() {
        let mut p = plan();
        p.post.entry_ip = p.post.ops.len() as u32;
        assert!(matches!(
            p.validate_committed(1, 1),
            Err(PlanError::BadJumpTarget {
                traversal: "post",
                ip: u32::MAX,
                ..
            })
        ));
    }

    #[test]
    fn dangling_target_in_unreachable_node_rejected_at_build() {
        let mut prog = fixture();
        // Node 4 is unreachable from the entry but still declared; its
        // dangling target must be caught before jump patching.
        prog.pre_nodes.push(BlockNode {
            stmts: vec![],
            has_foreign_work: false,
            next: NodeNext::Jump(99),
        });
        assert!(matches!(
            ExecPlan::build(&prog),
            Err(PlanError::BadNodeTarget {
                traversal: "pre",
                target: 99,
                ..
            })
        ));
    }
}
