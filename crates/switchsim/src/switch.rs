//! The data-plane execution engine.
//!
//! Two packet paths share the same runtime state (tables, registers,
//! routes, counters):
//!
//! * the **compiled plan** (default, [`Switch::load`]) — the program is
//!   lowered once at load time by [`crate::plan`] and each packet runs a
//!   flat opcode stream with a reusable scratch buffer;
//! * the **AST interpreter** ([`Switch::load_interpreter`]) — the original
//!   reference semantics, retained as the differential-testing oracle.

use crate::fasthash::{FastBuildHasher, FxHasher64};
use crate::loader::{load_check, LoadError};
use crate::plan::{route_for, run_plan, run_prefetch, ExecPlan, PlanCtx, PlanOptions, PlanScratch};
use crate::table::RtTable;
use gallium_mir::interp::{
    hash_values, read_header_field, refresh_ip_checksum, write_header_field,
};
use gallium_mir::types::mask_to_width;
use gallium_net::transfer::{FLAG_TO_SERVER, FLAG_TO_SWITCH};
use gallium_net::{Packet, PortId, TransferValues};
use gallium_p4::{NodeNext, P4Expr, P4Program, P4Stmt};
use gallium_partition::SwitchModel;
use gallium_telemetry::names;
use gallium_telemetry::trace::{DropReason, EventKind, Hop, Tracer};
use std::collections::HashMap;
use std::sync::Arc;

/// Flag bit on server→switch packets: run the post-processing traversal.
pub const FLAG_RUN_POST: u8 = 0x04;
/// Flag bit on server→switch packets: the server already emitted this
/// packet (a server-side `send`); forward it out without processing.
pub const FLAG_PASSTHROUGH: u8 = 0x08;
/// Flag bit on switch→server packets: a lookup missed in a *cached* table
/// (§7 extension); the server must replay the whole program against its
/// authoritative state.
pub const FLAG_CACHE_MISS: u8 = 0x10;

/// Static switch configuration.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Port the middlebox server is attached to.
    pub server_port: PortId,
    /// Egress for destinations without an explicit route.
    pub default_port: PortId,
    /// Resource model enforced at load time.
    pub model: SwitchModel,
    /// Tables operated as FIFO caches of the server's authoritative map,
    /// with the given entry capacity (§7 "reducing memory usage").
    pub cached_tables: Vec<(String, usize)>,
    /// Enable the plan compiler's fusion layer (cross-statement CSE,
    /// store fusion into superinstructions, dead-store elimination,
    /// branch folding). On by default; the unfused lowering is kept for
    /// fused ≡ unfused differential tests.
    pub plan_fusion: bool,
    /// Run the symbolic translation validator ([`crate::symcheck`]) on
    /// the compiled plan at load time, rejecting a load whose plan is
    /// not provably equal to the P4 AST. On by default in debug builds
    /// and tests; opt-in in release (validation is load-time only — the
    /// warm path never pays for it either way).
    pub validate_plan: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            server_port: PortId::SERVER,
            default_port: PortId(0),
            model: SwitchModel::tofino_like(),
            cached_tables: Vec::new(),
            plan_fusion: true,
            validate_plan: cfg!(debug_assertions),
        }
    }
}

/// Data-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets received from the network.
    pub rx_network: u64,
    /// Packets received from the server.
    pub rx_server: u64,
    /// Packets fully handled in the data plane (never saw the server).
    pub fast_path: u64,
    /// Packets encapsulated and forwarded to the server.
    pub to_server: u64,
    /// Packets emitted toward the network.
    pub emitted: u64,
    /// Packets dropped by `mark_to_drop`.
    pub dropped: u64,
    /// Pre-traversal lookups that missed in a cached table (each forces a
    /// server replay).
    pub cache_misses: u64,
    /// Drop attribution: drops from an explicit program `mark_to_drop`.
    /// Together with [`SwitchStats::drop_malformed`] this partitions
    /// [`SwitchStats::dropped`] — every switch drop has exactly one reason.
    pub drop_marked: u64,
    /// Drop attribution: server-origin frames that failed encapsulation
    /// sanity checks.
    pub drop_malformed: u64,
}

/// The simulated switch: a loaded program plus its runtime state.
#[derive(Debug)]
pub struct Switch {
    prog: P4Program,
    cfg: SwitchConfig,
    /// The compiled execution plan; `None` on the interpreter path.
    plan: Option<ExecPlan>,
    /// Per-switch scratch reused across packets on the plan path.
    scratch: PlanScratch,
    /// Dedicated scratches for the batch-pipelining prefetch pass — they
    /// run packet *n+1*'s key-build prologue while `scratch` still holds
    /// packet *n*'s state, so they must never share buffers with it.
    /// Double-buffered: the hint for packet *n+2* lands in the other
    /// slot, so *n+1*'s primed state survives until *n+1* resolves.
    prefetch_slots: [PlanScratch; 2],
    /// Content stamp of the packet each slot was primed for, `None` when
    /// the slot holds no resumable state (no hint yet, impure projection,
    /// or already consumed). See [`PrefetchStamp`] for why a stamp match
    /// is *sufficient* to hand the primed scratch to the resolving run.
    prefetch_stamps: [Option<PrefetchStamp>; 2],
    /// Which prefetch slot the next hint writes.
    prefetch_toggle: bool,
    /// Set by [`Switch::table_mut`] (the control-plane mutation doorway);
    /// cleared at the top of [`Switch::process_into`] after re-flattening
    /// every table's read layout, so steady-state packets probe a clean
    /// perfect-hash array with the delta overlay empty.
    tables_dirty: bool,
    tables: Vec<RtTable>,
    registers: Vec<u64>,
    pub(crate) wb_active: bool,
    routes: HashMap<u32, PortId, FastBuildHasher>,
    meta_bits: HashMap<String, u16>,
    /// Set during a traversal when a cached table misses.
    cache_missed: bool,
    /// Keys displaced from cache-mode tables by control-plane inserts,
    /// as `(table name, key)` pairs awaiting [`Switch::drain_evictions`].
    /// LPM evictions are recorded as `[prefix, prefix_len]`.
    pub(crate) evictions: Vec<(String, Vec<u64>)>,
    /// Flight recorder shared with the rest of the deployment; `None`
    /// (the default) keeps the packet path free of trace checks beyond
    /// one branch.
    tracer: Option<Arc<Tracer>>,
    /// Trace id of the packet currently in flight, when sampled.
    active_trace: Option<u32>,
    /// Data-plane counters.
    pub stats: SwitchStats,
}

/// Frame prefix the prefetch-resume fingerprint covers. Every header
/// field [`read_header_field`] can reach lies within the first 94 bytes
/// even with maximal IPv4 options (14 Ethernet + 60 IP + 20 TCP), so two
/// frames of equal length agreeing on this window — and on ingress port —
/// produce bit-identical prologue runs.
const PREFETCH_FP_WINDOW: usize = 96;

/// Content identity of a hinted packet: fingerprint of the parseable
/// header window plus total length and ingress port.
///
/// A *pure* prefetch projection reads nothing but header fields and the
/// ingress port (see `PrefetchPlan::pure`), so a stamp match proves the
/// primed scratch holds exactly the state the resolving run would compute
/// for the matching packet — the resume needs no pointer identity, packet
/// liveness, or expiry argument to be sound. Hash collisions aside (a
/// 64-bit Fx digest over simulator-built frames, the same trust level as
/// the match-table hashes), a stale or aliased stamp can only match a
/// packet the primed state is *correct* for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrefetchStamp {
    fp: u64,
    len: u32,
    ingress: u16,
}

/// Fingerprint of the header window (first [`PREFETCH_FP_WINDOW`] bytes,
/// or the whole frame if shorter).
#[inline]
fn prefetch_fp(bytes: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher64::default();
    h.write(&bytes[..bytes.len().min(PREFETCH_FP_WINDOW)]);
    h.finish()
}

impl Switch {
    /// Load `prog` after validating it against `cfg.model`, lowering it to
    /// a compiled execution plan (the default packet path).
    pub fn load(prog: P4Program, cfg: SwitchConfig) -> Result<Self, LoadError> {
        Self::load_inner(prog, cfg, true)
    }

    /// Load `prog` on the AST-interpreter path (no plan compilation).
    ///
    /// The interpreter is the reference semantics the plan is validated
    /// against; production paths should use [`Switch::load`].
    pub fn load_interpreter(prog: P4Program, cfg: SwitchConfig) -> Result<Self, LoadError> {
        Self::load_inner(prog, cfg, false)
    }

    fn load_inner(
        prog: P4Program,
        cfg: SwitchConfig,
        compile_plan: bool,
    ) -> Result<Self, LoadError> {
        load_check(&prog, &cfg.model)?;
        let plan = if compile_plan {
            let reg = gallium_telemetry::global();
            let timer = reg.histogram(names::PLAN_BUILD_NS).time();
            let built = ExecPlan::build_with(
                &prog,
                PlanOptions {
                    fuse: cfg.plan_fusion,
                },
            )
            .map_err(|e| LoadError::Plan {
                reason: e.to_string(),
            })?;
            drop(timer);
            reg.counter(names::PLAN_COMPILED).inc();
            reg.histogram(names::PLAN_OPS)
                .record(built.op_count() as u64);
            reg.histogram(names::PLAN_META_SLOTS)
                .record(built.slot_count() as u64);
            let xs = built.expr_stats();
            reg.histogram(names::PLAN_EXPR_MICRO_OPS)
                .record(xs.micro_ops);
            reg.histogram(names::PLAN_EXPR_REGS).record(xs.regs);
            reg.counter(names::PLAN_EXPR_CONST_FOLDED).add(xs.folded);
            reg.counter(names::PLAN_EXPR_CSE_HITS).add(xs.cse_hits);
            reg.counter(names::PLAN_EXPR_FUSED).add(xs.fused);
            reg.counter(names::PLAN_EXPR_DEAD_OPS).add(xs.dead);
            if cfg.validate_plan {
                let timer = reg.histogram(names::VERIFY_PLAN_SYMCHECK_NS).time();
                let checked = crate::symcheck::check_plan(&prog, &built);
                drop(timer);
                match checked {
                    Ok(_) => reg.counter(names::VERIFY_PLAN_PROVED).inc(),
                    Err(e) => {
                        reg.counter(names::VERIFY_PLAN_ERRORS).inc();
                        return Err(LoadError::PlanEquivalence(e));
                    }
                }
            }
            Some(built)
        } else {
            None
        };
        let scratch = plan
            .as_ref()
            .map(PlanScratch::sized_for)
            .unwrap_or_default();
        let prefetch_slots = [
            plan.as_ref()
                .map(PlanScratch::sized_for)
                .unwrap_or_default(),
            plan.as_ref()
                .map(PlanScratch::sized_for)
                .unwrap_or_default(),
        ];
        let mut tables: Vec<RtTable> = prog
            .tables
            .iter()
            .map(|t| {
                let mut rt = RtTable::new(t.size);
                if t.match_kind == gallium_p4::TableMatchKind::Lpm {
                    rt.make_lpm(t.key_widths.first().copied().unwrap_or(32));
                }
                rt
            })
            .collect();
        for (name, entries) in &cfg.cached_tables {
            if let Some(i) = prog.tables.iter().position(|t| &t.name == name) {
                tables[i].make_cache(*entries);
            }
        }
        let registers = vec![0; prog.registers.len()];
        let meta_bits = prog
            .metadata
            .iter()
            .map(|m| (m.name.clone(), m.bits))
            .collect();
        Ok(Switch {
            prog,
            cfg,
            plan,
            scratch,
            prefetch_slots,
            prefetch_stamps: [None, None],
            prefetch_toggle: false,
            tables_dirty: false,
            tables,
            registers,
            wb_active: false,
            routes: HashMap::default(),
            meta_bits,
            cache_missed: false,
            evictions: Vec::new(),
            tracer: None,
            active_trace: None,
            stats: SwitchStats::default(),
        })
    }

    /// Whether packets run through the compiled execution plan (`true`
    /// after [`Switch::load`]) or the AST interpreter (`false` after
    /// [`Switch::load_interpreter`]).
    pub fn uses_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Attach (or detach, with `None`) a flight recorder. Events are only
    /// emitted while a sampled packet is marked in flight via
    /// [`Switch::set_active_trace`].
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// Mark the packet currently being processed as sampled under the
    /// given trace id (or clear with `None`). Set by the deployment
    /// around each sampled packet's flight.
    #[inline]
    pub fn set_active_trace(&mut self, id: Option<u32>) {
        self.active_trace = id;
    }

    /// Number of cache-eviction records awaiting
    /// [`Switch::drain_evictions`] — lets observers detect eviction
    /// activity across a window without consuming the records.
    pub fn eviction_count(&self) -> usize {
        self.evictions.len()
    }

    /// Take the keys evicted from cache-mode tables since the last drain,
    /// as `(table name, key)` pairs in eviction order. The control plane
    /// uses this to learn which entries fell out of a FIFO cache (§7);
    /// LPM evictions are reported as `[prefix, prefix_len]`.
    pub fn drain_evictions(&mut self) -> Vec<(String, Vec<u64>)> {
        std::mem::take(&mut self.evictions)
    }

    /// The loaded program.
    pub fn program(&self) -> &P4Program {
        &self.prog
    }

    /// Install a route: packets whose IPv4 destination equals `daddr`
    /// egress on `port`.
    pub fn add_route(&mut self, daddr: u32, port: PortId) {
        self.routes.insert(daddr, port);
    }

    /// Runtime table access (tests and the control plane). Marks the
    /// table set dirty: the next packet re-flattens any mutated read
    /// layouts before probing (see [`RtTable::flush_layout`]).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut RtTable> {
        let i = self.prog.tables.iter().position(|t| t.name == name)?;
        self.tables_dirty = true;
        Some(&mut self.tables[i])
    }

    /// Read-only table access.
    pub fn table(&self, name: &str) -> Option<&RtTable> {
        let i = self.prog.tables.iter().position(|t| t.name == name)?;
        Some(&self.tables[i])
    }

    /// Read a register by name.
    pub fn register(&self, name: &str) -> Option<u64> {
        let i = self.prog.registers.iter().position(|r| r.name == name)?;
        Some(self.registers[i])
    }

    /// Set a register by name (control plane).
    pub(crate) fn set_register(&mut self, name: &str, value: u64) -> bool {
        if let Some(i) = self.prog.registers.iter().position(|r| r.name == name) {
            self.registers[i] = mask_to_width(value, self.prog.registers[i].width);
            true
        } else {
            false
        }
    }

    /// Whether staged write-back entries are currently visible.
    pub fn write_back_active(&self) -> bool {
        self.wb_active
    }

    /// Export the switch's runtime counters as a telemetry snapshot:
    /// data-plane totals under `gallium.switchsim.switch.*`, per-table
    /// hit/miss/eviction counters and occupancy under
    /// `gallium.switchsim.table.<name>.*`, and register occupancy under
    /// `gallium.switchsim.registers.*`.
    pub fn telemetry_snapshot(&self) -> gallium_telemetry::TelemetrySnapshot {
        let mut snap = gallium_telemetry::TelemetrySnapshot::default();
        let s = &self.stats;
        snap.set_counter(names::SWITCH_RX_NETWORK, s.rx_network);
        snap.set_counter(names::SWITCH_RX_SERVER, s.rx_server);
        snap.set_counter(names::SWITCH_FAST_PATH, s.fast_path);
        snap.set_counter(names::SWITCH_TO_SERVER, s.to_server);
        snap.set_counter(names::SWITCH_EMITTED, s.emitted);
        snap.set_counter(names::SWITCH_DROPPED, s.dropped);
        snap.set_counter(names::SWITCH_CACHE_MISSES, s.cache_misses);
        snap.set_counter(names::DROP_SWITCH_MARKED, s.drop_marked);
        snap.set_counter(names::DROP_SWITCH_MALFORMED_ENCAP, s.drop_malformed);
        let mut rebuilds = 0u64;
        let mut probes = 0u64;
        for (decl, rt) in self.prog.tables.iter().zip(&self.tables) {
            snap.set_counter(
                &names::table_metric(&decl.name, "hits"),
                rt.stats.hits.get(),
            );
            snap.set_counter(
                &names::table_metric(&decl.name, "misses"),
                rt.stats.misses.get(),
            );
            snap.set_counter(
                &names::table_metric(&decl.name, "evictions"),
                rt.stats.evictions.get(),
            );
            snap.set_counter(&names::table_metric(&decl.name, "entries"), rt.len() as u64);
            snap.set_counter(
                &names::table_metric(&decl.name, "capacity"),
                decl.size as u64,
            );
            snap.set_counter(
                &names::table_metric(&decl.name, "rebuilds"),
                rt.stats.rebuilds.get(),
            );
            snap.set_counter(
                &names::table_metric(&decl.name, "probe"),
                rt.stats.probes.get(),
            );
            rebuilds += rt.stats.rebuilds.get();
            probes += rt.stats.probes.get();
        }
        // Aggregates across all tables: perfect-hash layout rebuild count
        // and one-shot probes served by the flat layout.
        snap.set_counter(names::TABLE_REBUILDS, rebuilds);
        snap.set_counter(names::TABLE_PROBES, probes);
        snap.set_counter(names::SWITCH_REGISTERS_COUNT, self.registers.len() as u64);
        snap.set_counter(
            names::SWITCH_REGISTERS_NONZERO,
            self.registers.iter().filter(|&&v| v != 0).count() as u64,
        );
        snap
    }

    /// Process one packet; returns `(egress port, frame)` pairs.
    pub fn process(&mut self, pkt: Packet) -> Vec<(PortId, Packet)> {
        let mut out = Vec::new();
        self.process_into(pkt, &mut out);
        out
    }

    /// Process one packet, appending `(egress port, frame)` pairs to
    /// `out` — the allocation-reusing core of [`Switch::process`].
    pub fn process_into(&mut self, pkt: Packet, out: &mut Vec<(PortId, Packet)>) {
        // Control-plane mutations since the last packet dirty the read
        // layouts; re-flatten once here so the steady state pays a single
        // predicted-untaken branch and every probe below is one-shot.
        if self.tables_dirty {
            for t in &mut self.tables {
                t.flush_layout();
            }
            self.tables_dirty = false;
        }
        if self.plan.is_some() {
            self.process_planned(pkt, out);
        } else {
            self.process_interp(pkt, out);
        }
    }

    /// Warm the match-table slot the pre traversal's first probe will
    /// touch for `pkt` — the key-build + prefetch half of the pipelined
    /// batch (see [`crate::plan`]'s prefetch section). Runs on a
    /// dedicated scratch, mutates nothing observable, and is safe to call
    /// on any packet: server-ingress frames (which run the post
    /// traversal), interpreter-path switches, and plans without a static
    /// projection all skip in a branch or two.
    ///
    /// When the projection is *pure* the primed scratch is additionally
    /// stamped with the packet's content identity: if the next packets
    /// processed include one matching the stamp, its resolving run
    /// *resumes* from the primed state instead of replaying the prologue
    /// and key build (see [`PrefetchStamp`] — the stamp match itself
    /// guarantees the handoff is sound, so the hint stays semantics-free
    /// for arbitrary callers).
    #[inline]
    pub fn prefetch_hint(&mut self, pkt: &Packet) {
        let Some(plan) = &self.plan else { return };
        if pkt.ingress == self.cfg.server_port {
            return;
        }
        let slot = usize::from(self.prefetch_toggle);
        self.prefetch_toggle = !self.prefetch_toggle;
        let primed = run_prefetch(
            plan,
            &self.tables,
            &self.registers,
            &mut self.prefetch_slots[slot],
            pkt,
        );
        self.prefetch_stamps[slot] = primed.then(|| PrefetchStamp {
            fp: prefetch_fp(pkt.bytes()),
            len: pkt.len() as u32,
            ingress: pkt.ingress.0,
        });
    }

    /// If a prefetch slot was primed for a packet content-identical to
    /// `pkt`, consume it: swap the primed scratch in as the resolving
    /// scratch and return `true`. Cheap rejection first (length +
    /// ingress), fingerprint computed at most once.
    #[inline]
    fn take_resume(&mut self, pkt: &Packet) -> bool {
        let len = pkt.len() as u32;
        let ingress = pkt.ingress.0;
        let mut fp = None;
        for i in 0..2 {
            let Some(s) = self.prefetch_stamps[i] else {
                continue;
            };
            if s.len != len || s.ingress != ingress {
                continue;
            }
            let f = *fp.get_or_insert_with(|| prefetch_fp(pkt.bytes()));
            if s.fp == f {
                self.prefetch_stamps[i] = None;
                std::mem::swap(&mut self.scratch, &mut self.prefetch_slots[i]);
                return true;
            }
        }
        false
    }

    /// Process a burst of packets, appending every emission to `out` in
    /// arrival order. Amortizes dispatch, lets callers reuse one output
    /// buffer across bursts, and software-pipelines the burst: packet
    /// *n+1*'s table key is built and its match-table line prefetched
    /// before packet *n* resolves, so the probe's memory latency overlaps
    /// useful work instead of serializing behind it. For pure prefetch
    /// projections the primed state is then *resumed* when *n+1*
    /// resolves, so the prologue and key build run once per packet, not
    /// twice.
    pub fn process_batch(
        &mut self,
        pkts: impl IntoIterator<Item = Packet>,
        out: &mut Vec<(PortId, Packet)>,
    ) {
        let mut it = pkts.into_iter();
        let Some(mut cur) = it.next() else { return };
        for next in it {
            self.prefetch_hint(&next);
            self.process_into(cur, out);
            cur = next;
        }
        self.process_into(cur, out);
    }

    /// The compiled-plan packet path.
    fn process_planned(&mut self, mut pkt: Packet, out: &mut Vec<(PortId, Packet)>) {
        // Content-stamped prefetch handoff: when a hint already ran this
        // packet's prologue, resume the pre traversal from the probe.
        let resumed = self.take_resume(&pkt);
        let Switch {
            prog,
            cfg,
            plan,
            scratch,
            tables,
            registers,
            wb_active,
            routes,
            tracer,
            active_trace,
            stats,
            ..
        } = self;
        // One option construction per packet; `None` whenever tracing is
        // disabled or this packet was not sampled.
        let trace = match (tracer.as_deref(), *active_trace) {
            (Some(t), Some(id)) => Some((t, id)),
            _ => None,
        };
        let plan = plan
            .as_ref()
            .expect("planned path requires a compiled plan");
        if pkt.ingress == cfg.server_port {
            stats.rx_server += 1;
            scratch.meta.fill(0);
            let meta = &mut scratch.meta;
            let slots = &plan.from_server_slots;
            let Ok(flags) = prog
                .header_to_switch
                .detach_with(&mut pkt, |i, _, v| meta[usize::from(slots[i])] = v)
            else {
                // Malformed encapsulation: drop, as hardware would.
                stats.dropped += 1;
                stats.drop_malformed += 1;
                if let Some((t, id)) = trace {
                    t.emit(
                        id,
                        Hop::SwitchPost,
                        EventKind::Drop,
                        DropReason::SwitchMalformedEncap as u64,
                    );
                }
                return;
            };
            if flags & FLAG_PASSTHROUGH != 0 {
                stats.emitted += 1;
                let port = route_for(routes, cfg.default_port, &pkt);
                if let Some((t, id)) = trace {
                    t.emit(id, Hop::SwitchPost, EventKind::Emit, u64::from(port.0));
                }
                out.push((port, pkt));
                return;
            }
            let mut ctx = PlanCtx {
                tables: tables.as_slice(),
                registers: registers.as_mut_slice(),
                wb_active: *wb_active,
                routes,
                default_port: cfg.default_port,
                trace: trace.map(|(t, id)| (t, id, Hop::SwitchPost)),
                stats,
            };
            run_plan(&plan.post, &mut ctx, scratch, &mut pkt, out, None);
        } else {
            stats.rx_network += 1;
            // Cache mode: keep a pristine copy; a cached-table miss voids
            // the traversal and the original packet is replayed on the
            // server.
            let pristine = tables.iter().any(|t| t.is_cache()).then(|| pkt.clone());
            // A resumed scratch was zeroed and prologue-seeded by the
            // prefetch pass; zeroing it again would destroy that state.
            let resume_at = if resumed {
                let pf = plan
                    .prefetch
                    .as_ref()
                    .expect("stamped resume implies a projection");
                Some(pf.probe_ip)
            } else {
                scratch.meta.fill(0);
                None
            };
            let mark = out.len();
            let run = {
                let mut ctx = PlanCtx {
                    tables: tables.as_slice(),
                    registers: registers.as_mut_slice(),
                    wb_active: *wb_active,
                    routes,
                    default_port: cfg.default_port,
                    trace: trace.map(|(t, id)| (t, id, Hop::SwitchPre)),
                    stats: &mut *stats,
                };
                run_plan(&plan.pre, &mut ctx, scratch, &mut pkt, out, resume_at)
            };
            if run.cache_missed {
                out.truncate(mark);
                stats.cache_misses += 1;
                stats.to_server += 1;
                let mut orig = pristine.expect("pristine kept in cache mode");
                prog.header_to_server
                    .attach_with(&mut orig, FLAG_TO_SERVER | FLAG_CACHE_MISS, |_, _| 0)
                    .expect("plain frame");
                if let Some((t, id)) = trace {
                    t.emit(id, Hop::Transfer, EventKind::ToServer, orig.len() as u64);
                }
                out.push((cfg.server_port, orig));
                return;
            }
            if run.saw_foreign {
                stats.to_server += 1;
                let meta = &scratch.meta;
                let slots = &plan.to_server_slots;
                prog.header_to_server
                    .attach_with(&mut pkt, FLAG_TO_SERVER, |i, _| meta[usize::from(slots[i])])
                    .expect("plain frame");
                if let Some((t, id)) = trace {
                    t.emit(id, Hop::Transfer, EventKind::ToServer, pkt.len() as u64);
                }
                out.push((cfg.server_port, pkt));
            } else {
                stats.fast_path += 1;
            }
        }
    }

    /// The legacy AST-interpreter path (differential-testing oracle).
    fn process_interp(&mut self, mut pkt: Packet, out: &mut Vec<(PortId, Packet)>) {
        let Switch {
            prog,
            cfg,
            tables,
            registers,
            wb_active,
            routes,
            meta_bits,
            cache_missed,
            tracer,
            active_trace,
            stats,
            ..
        } = self;
        let trace = match (tracer.as_deref(), *active_trace) {
            (Some(t), Some(id)) => Some((t, id)),
            _ => None,
        };
        let prog = &*prog;
        if pkt.ingress == cfg.server_port {
            stats.rx_server += 1;
            let Ok((flags, values)) = prog.header_to_switch.detach(&mut pkt) else {
                // Malformed encapsulation: drop, as hardware would.
                stats.dropped += 1;
                stats.drop_malformed += 1;
                if let Some((t, id)) = trace {
                    t.emit(
                        id,
                        Hop::SwitchPost,
                        EventKind::Drop,
                        DropReason::SwitchMalformedEncap as u64,
                    );
                }
                return;
            };
            if flags & FLAG_PASSTHROUGH != 0 {
                stats.emitted += 1;
                let port = route_for(routes, cfg.default_port, &pkt);
                if let Some((t, id)) = trace {
                    t.emit(id, Hop::SwitchPost, EventKind::Emit, u64::from(port.0));
                }
                out.push((port, pkt));
                return;
            }
            let mut meta: HashMap<String, u64> =
                values.iter().map(|(k, v)| (k.to_string(), v)).collect();
            let mut ctx = InterpCtx {
                tables: tables.as_slice(),
                registers: registers.as_mut_slice(),
                meta_bits,
                routes,
                default_port: cfg.default_port,
                wb_active: *wb_active,
                trace: trace.map(|(t, id)| (t, id, Hop::SwitchPost)),
                stats: &mut *stats,
                cache_missed: &mut *cache_missed,
            };
            run_traversal(prog, false, &mut ctx, &mut pkt, &mut meta, out);
        } else {
            stats.rx_network += 1;
            // Cache mode: keep a pristine copy; a cached-table miss voids
            // the traversal and the original packet is replayed on the
            // server.
            let pristine = tables.iter().any(|t| t.is_cache()).then(|| pkt.clone());
            *cache_missed = false;
            let mut meta = HashMap::new();
            let mark = out.len();
            let needs_server = {
                let mut ctx = InterpCtx {
                    tables: tables.as_slice(),
                    registers: registers.as_mut_slice(),
                    meta_bits,
                    routes,
                    default_port: cfg.default_port,
                    wb_active: *wb_active,
                    trace: trace.map(|(t, id)| (t, id, Hop::SwitchPre)),
                    stats: &mut *stats,
                    cache_missed: &mut *cache_missed,
                };
                run_traversal(prog, true, &mut ctx, &mut pkt, &mut meta, out)
            };
            if *cache_missed {
                out.truncate(mark);
                stats.cache_misses += 1;
                stats.to_server += 1;
                let mut orig = pristine.expect("pristine kept in cache mode");
                prog.header_to_server
                    .attach(
                        &mut orig,
                        FLAG_TO_SERVER | FLAG_CACHE_MISS,
                        &TransferValues::default(),
                    )
                    .expect("plain frame");
                if let Some((t, id)) = trace {
                    t.emit(id, Hop::Transfer, EventKind::ToServer, orig.len() as u64);
                }
                out.push((cfg.server_port, orig));
                return;
            }
            if needs_server {
                stats.to_server += 1;
                prog.header_to_server
                    .attach_with(&mut pkt, FLAG_TO_SERVER, |_, f| {
                        meta.get(&f.name).copied().unwrap_or(0)
                    })
                    .expect("plain frame");
                if let Some((t, id)) = trace {
                    t.emit(id, Hop::Transfer, EventKind::ToServer, pkt.len() as u64);
                }
                out.push((cfg.server_port, pkt));
            } else {
                stats.fast_path += 1;
            }
        }
    }
}

/// The mutable runtime state the AST interpreter touches, borrowed
/// field-by-field so the program's node lists need no per-packet clone.
struct InterpCtx<'a> {
    tables: &'a [RtTable],
    registers: &'a mut [u64],
    meta_bits: &'a HashMap<String, u16>,
    routes: &'a HashMap<u32, PortId, FastBuildHasher>,
    default_port: PortId,
    wb_active: bool,
    /// Flight-recorder hook for the sampled packet in flight, with the
    /// hop label of this traversal.
    trace: Option<(&'a Tracer, u32, Hop)>,
    stats: &'a mut SwitchStats,
    cache_missed: &'a mut bool,
}

/// Walk one traversal of `prog` (pre or post). Emitted packets are
/// appended to `out`; returns whether later-stage work was encountered on
/// the path (meaningful for pre only).
fn run_traversal(
    prog: &P4Program,
    is_pre: bool,
    ctx: &mut InterpCtx<'_>,
    pkt: &mut Packet,
    meta: &mut HashMap<String, u64>,
    out: &mut Vec<(PortId, Packet)>,
) -> bool {
    let nodes = if is_pre {
        &prog.pre_nodes
    } else {
        &prog.post_nodes
    };
    let mut saw_foreign = false;
    let mut cur = prog.entry;
    let mut steps = 0usize;
    loop {
        steps += 1;
        assert!(
            steps <= nodes.len() + 1,
            "pipeline traversal revisited a node (loop in generated P4)"
        );
        let node = &nodes[cur];
        saw_foreign |= is_pre && node.has_foreign_work;
        for stmt in &node.stmts {
            exec_stmt(prog, stmt, ctx, pkt, meta, out);
        }
        match &node.next {
            NodeNext::Jump(n) => cur = *n,
            NodeNext::Cond {
                meta: m,
                then_n,
                else_n,
            } => {
                let v = meta.get(m).copied().unwrap_or(0);
                cur = if v != 0 { *then_n } else { *else_n };
            }
            NodeNext::SkipJoin {
                join,
                skipped_has_foreign,
            } => {
                saw_foreign |= is_pre && *skipped_has_foreign;
                match join {
                    Some(j) => cur = *j,
                    None => break,
                }
            }
            NodeNext::End => break,
        }
    }
    saw_foreign
}

fn exec_stmt(
    prog: &P4Program,
    stmt: &P4Stmt,
    ctx: &mut InterpCtx<'_>,
    pkt: &mut Packet,
    meta: &mut HashMap<String, u64>,
    out: &mut Vec<(PortId, Packet)>,
) {
    match stmt {
        P4Stmt::SetMeta(name, e) => {
            let w = ctx.meta_bits.get(name).copied().unwrap_or(64);
            let v = eval_ast(e, pkt, meta);
            meta.insert(name.clone(), mask_to_width(v, w.min(64) as u8));
        }
        P4Stmt::SetHeader(f, e) => {
            let v = mask_to_width(eval_ast(e, pkt, meta), f.bits());
            write_header_field(pkt.bytes_mut(), *f, v);
        }
        P4Stmt::TableLookup {
            table,
            keys,
            hit_meta,
            value_metas,
        } => {
            let key: Vec<u64> = keys.iter().map(|k| eval_ast(k, pkt, meta)).collect();
            match ctx.tables[*table].lookup_ref(&key, ctx.wb_active) {
                Some(vals) => {
                    if let Some((t, id, hop)) = ctx.trace {
                        t.emit(id, hop, EventKind::TableHit, *table as u64);
                    }
                    meta.insert(hit_meta.clone(), 1);
                    for (m, v) in value_metas.iter().zip(vals) {
                        meta.insert(m.clone(), *v);
                    }
                }
                None => {
                    // A miss in a cached table is inconclusive — the
                    // authoritative map may hold the entry.
                    let cached = ctx.tables[*table].is_cache();
                    if cached {
                        *ctx.cache_missed = true;
                    }
                    if let Some((t, id, hop)) = ctx.trace {
                        let kind = if cached {
                            EventKind::CacheMiss
                        } else {
                            EventKind::TableMiss
                        };
                        t.emit(id, hop, kind, *table as u64);
                    }
                    meta.insert(hit_meta.clone(), 0);
                    for m in value_metas {
                        meta.insert(m.clone(), 0);
                    }
                }
            }
        }
        P4Stmt::RegRead { reg, dst } => {
            meta.insert(dst.clone(), ctx.registers[*reg]);
        }
        P4Stmt::RegWrite { reg, src } => {
            let w = prog.registers[*reg].width;
            ctx.registers[*reg] = mask_to_width(eval_ast(src, pkt, meta), w);
        }
        P4Stmt::RegFetchAdd { reg, dst, delta } => {
            let w = prog.registers[*reg].width;
            let old = ctx.registers[*reg];
            let d = eval_ast(delta, pkt, meta);
            ctx.registers[*reg] = mask_to_width(old.wrapping_add(d), w);
            meta.insert(dst.clone(), old);
        }
        P4Stmt::UpdateChecksum => refresh_ip_checksum(pkt.bytes_mut()),
        P4Stmt::EmitCopy => {
            ctx.stats.emitted += 1;
            let port = route_for(ctx.routes, ctx.default_port, pkt);
            if let Some((t, id, hop)) = ctx.trace {
                t.emit(id, hop, EventKind::Emit, u64::from(port.0));
            }
            out.push((port, pkt.clone()));
        }
        P4Stmt::MarkDrop => {
            ctx.stats.dropped += 1;
            ctx.stats.drop_marked += 1;
            if let Some((t, id, hop)) = ctx.trace {
                t.emit(id, hop, EventKind::Drop, DropReason::SwitchMarked as u64);
            }
        }
    }
}

pub(crate) fn eval_ast(e: &P4Expr, pkt: &Packet, meta: &HashMap<String, u64>) -> u64 {
    match e {
        P4Expr::Const(v, _) => *v,
        P4Expr::Meta(n) => meta.get(n).copied().unwrap_or(0),
        P4Expr::Header(f) => read_header_field(pkt.bytes(), *f),
        P4Expr::IngressPort => u64::from(pkt.ingress.0),
        P4Expr::Bin(op, a, b) => op.eval(eval_ast(a, pkt, meta), eval_ast(b, pkt, meta), 64),
        P4Expr::Not(a) => !eval_ast(a, pkt, meta),
        P4Expr::Cast(a, w) => mask_to_width(eval_ast(a, pkt, meta), *w),
        P4Expr::Hash(parts, w) => {
            let inputs: Vec<u64> = parts.iter().map(|p| eval_ast(p, pkt, meta)).collect();
            hash_values(&inputs, *w)
        }
    }
}

/// Build a server→switch frame: attach the post-traversal header.
pub fn encapsulate_to_switch(
    prog: &P4Program,
    pkt: &mut Packet,
    values: &TransferValues,
    run_post: bool,
    passthrough: bool,
) {
    let mut flags = FLAG_TO_SWITCH;
    if run_post {
        flags |= FLAG_RUN_POST;
    }
    if passthrough {
        flags |= FLAG_PASSTHROUGH;
    }
    prog.header_to_switch
        .attach(pkt, flags, values)
        .expect("plain frame from server");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, TcpFlags};
    use gallium_partition::partition_program;

    fn minilb_p4() -> P4Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        gallium_p4::generate(&staged).unwrap()
    }

    fn minilb_switch() -> Switch {
        Switch::load(minilb_p4(), SwitchConfig::default()).unwrap()
    }

    fn tcp_pkt(saddr: u32, daddr: u32) -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr,
                daddr,
                sport: 1000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(1))
    }

    #[test]
    fn plan_is_the_default_path() {
        assert!(minilb_switch().uses_plan());
        assert!(
            !Switch::load_interpreter(minilb_p4(), SwitchConfig::default())
                .unwrap()
                .uses_plan()
        );
    }

    #[test]
    fn miss_goes_to_server_with_header() {
        let mut sw = minilb_switch();
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_eq!(out.len(), 1);
        let (port, pkt) = &out[0];
        assert_eq!(*port, PortId::SERVER);
        // The frame grew by the transfer header.
        assert_eq!(pkt.len(), 100 + sw.program().header_to_server.wire_bytes());
        assert_eq!(sw.stats.to_server, 1);
        assert_eq!(sw.stats.fast_path, 0);
        // The header carries hash32 (saddr ^ daddr) and the miss bit.
        let (flags, values) = {
            let mut p = pkt.clone();
            sw.program().header_to_server.detach(&mut p).unwrap()
        };
        assert_eq!(flags & FLAG_TO_SERVER, FLAG_TO_SERVER);
        assert_eq!(
            values.get("v2"),
            Some(u64::from(0x0A000001u32 ^ 0x0A000099))
        );
        assert_eq!(values.get("v7"), Some(1), "miss bit set");
    }

    #[test]
    fn hit_takes_fast_path() {
        let mut sw = minilb_switch();
        // Install the connection entry the way the server's control plane
        // would: key = low 16 bits of saddr ^ daddr.
        let key = u64::from((0x0A000001u32 ^ 0x0A000099) & 0xFFFF);
        sw.table_mut("map")
            .unwrap()
            .insert_main(vec![key], vec![0xC0A80001])
            .unwrap();
        sw.add_route(0xC0A80001, PortId(7));
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_eq!(out.len(), 1);
        let (port, pkt) = &out[0];
        assert_eq!(*port, PortId(7));
        assert_eq!(pkt.len(), 100, "no transfer header on the fast path");
        assert_eq!(
            read_header_field(pkt.bytes(), HeaderField::IpDaddr),
            0xC0A80001
        );
        assert_eq!(sw.stats.fast_path, 1);
        assert_eq!(sw.stats.emitted, 1);
    }

    #[test]
    fn post_traversal_rewrites_and_emits() {
        let mut sw = minilb_switch();
        // Simulate the server's reply: branch bit set (miss path), backend
        // chosen = v13.
        let mut pkt = tcp_pkt(0x0A000001, 0x0A000099);
        pkt.ingress = PortId::SERVER;
        let mut values = TransferValues::default();
        values.set("v7", 1);
        values.set("v13", 0xC0A80002);
        let prog = sw.program().clone();
        encapsulate_to_switch(&prog, &mut pkt, &values, true, false);
        let out = sw.process(pkt);
        assert_eq!(out.len(), 1);
        let (_, emitted) = &out[0];
        assert_eq!(emitted.len(), 100, "header stripped");
        assert_eq!(
            read_header_field(emitted.bytes(), HeaderField::IpDaddr),
            0xC0A80002
        );
    }

    #[test]
    fn passthrough_emits_without_processing() {
        let mut sw = minilb_switch();
        let mut pkt = tcp_pkt(1, 2);
        pkt.ingress = PortId::SERVER;
        let prog = sw.program().clone();
        encapsulate_to_switch(&prog, &mut pkt, &TransferValues::default(), false, true);
        let out = sw.process(pkt);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.len(), 100);
        assert_eq!(sw.stats.emitted, 1);
    }

    #[test]
    fn write_back_visibility_follows_bit() {
        let mut sw = minilb_switch();
        let key = u64::from((0x0A000001u32 ^ 0x0A000099) & 0xFFFF);
        sw.table_mut("map")
            .unwrap()
            .stage(vec![key], Some(vec![0xC0A80003]));
        // Bit clear: the staged entry is invisible, packet misses.
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_eq!(out[0].0, PortId::SERVER);
        // Bit set: the staged entry hits.
        sw.wb_active = true;
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_ne!(out[0].0, PortId::SERVER);
        assert_eq!(
            read_header_field(out[0].1.bytes(), HeaderField::IpDaddr),
            0xC0A80003
        );
    }

    #[test]
    fn malformed_server_frame_dropped() {
        let mut sw = minilb_switch();
        let mut pkt = tcp_pkt(1, 2);
        pkt.ingress = PortId::SERVER; // no gallium header attached
        let out = sw.process(pkt);
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped, 1);
    }

    /// Drive the same packet mix through a planned and an interpreted
    /// switch and demand identical emissions, state, and counters.
    #[test]
    fn interpreter_and_plan_agree_on_minilb() {
        let mut planned = minilb_switch();
        let mut interp = Switch::load_interpreter(minilb_p4(), SwitchConfig::default()).unwrap();
        for sw in [&mut planned, &mut interp] {
            sw.add_route(0xC0A80001, PortId(7));
            let key = u64::from((0x0A000001u32 ^ 0x0A000099) & 0xFFFF);
            sw.table_mut("map")
                .unwrap()
                .insert_main(vec![key], vec![0xC0A80001])
                .unwrap();
        }
        let flows = [
            (0x0A000001, 0x0A000099), // table hit → fast path
            (0x0A000002, 0x0A000098), // miss → server
            (0x0A000001, 0x0A000099), // hit again
        ];
        for (s, d) in flows {
            let a = planned.process(tcp_pkt(s, d));
            let b = interp.process(tcp_pkt(s, d));
            assert_eq!(a, b);
        }
        assert_eq!(planned.stats, interp.stats);
        assert_eq!(planned.registers, interp.registers);
    }

    #[test]
    fn process_batch_matches_sequential() {
        let mut one = minilb_switch();
        let mut batch = minilb_switch();
        let pkts: Vec<Packet> = (0..8)
            .map(|i| tcp_pkt(0x0A000001 + i, 0x0A000099))
            .collect();
        let mut expect = Vec::new();
        for p in pkts.clone() {
            expect.extend(one.process(p));
        }
        let mut got = Vec::new();
        batch.process_batch(pkts, &mut got);
        assert_eq!(expect, got);
        assert_eq!(one.stats, batch.stats);
    }
}
