//! The data-plane execution engine.

use crate::loader::{load_check, LoadError};
use crate::table::RtTable;
use gallium_mir::interp::{
    hash_values, read_header_field, refresh_ip_checksum, write_header_field,
};
use gallium_mir::types::mask_to_width;
use gallium_mir::HeaderField;
use gallium_net::transfer::{FLAG_TO_SERVER, FLAG_TO_SWITCH};
use gallium_net::{Packet, PortId, TransferValues};
use gallium_p4::{BlockNode, NodeNext, P4Expr, P4Program, P4Stmt};
use gallium_partition::SwitchModel;
use std::collections::HashMap;

/// Flag bit on server→switch packets: run the post-processing traversal.
pub const FLAG_RUN_POST: u8 = 0x04;
/// Flag bit on server→switch packets: the server already emitted this
/// packet (a server-side `send`); forward it out without processing.
pub const FLAG_PASSTHROUGH: u8 = 0x08;
/// Flag bit on switch→server packets: a lookup missed in a *cached* table
/// (§7 extension); the server must replay the whole program against its
/// authoritative state.
pub const FLAG_CACHE_MISS: u8 = 0x10;

/// Static switch configuration.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Port the middlebox server is attached to.
    pub server_port: PortId,
    /// Egress for destinations without an explicit route.
    pub default_port: PortId,
    /// Resource model enforced at load time.
    pub model: SwitchModel,
    /// Tables operated as FIFO caches of the server's authoritative map,
    /// with the given entry capacity (§7 "reducing memory usage").
    pub cached_tables: Vec<(String, usize)>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            server_port: PortId::SERVER,
            default_port: PortId(0),
            model: SwitchModel::tofino_like(),
            cached_tables: Vec::new(),
        }
    }
}

/// Data-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets received from the network.
    pub rx_network: u64,
    /// Packets received from the server.
    pub rx_server: u64,
    /// Packets fully handled in the data plane (never saw the server).
    pub fast_path: u64,
    /// Packets encapsulated and forwarded to the server.
    pub to_server: u64,
    /// Packets emitted toward the network.
    pub emitted: u64,
    /// Packets dropped by `mark_to_drop`.
    pub dropped: u64,
    /// Pre-traversal lookups that missed in a cached table (each forces a
    /// server replay).
    pub cache_misses: u64,
}

/// The simulated switch: a loaded program plus its runtime state.
#[derive(Debug)]
pub struct Switch {
    prog: P4Program,
    cfg: SwitchConfig,
    tables: Vec<RtTable>,
    registers: Vec<u64>,
    pub(crate) wb_active: bool,
    routes: HashMap<u32, PortId>,
    meta_bits: HashMap<String, u16>,
    /// Set during a traversal when a cached table misses.
    cache_missed: bool,
    /// Keys displaced from cache-mode tables by control-plane inserts,
    /// as `(table name, key)` pairs awaiting [`Switch::drain_evictions`].
    /// LPM evictions are recorded as `[prefix, prefix_len]`.
    pub(crate) evictions: Vec<(String, Vec<u64>)>,
    /// Data-plane counters.
    pub stats: SwitchStats,
}

impl Switch {
    /// Load `prog` after validating it against `cfg.model`.
    pub fn load(prog: P4Program, cfg: SwitchConfig) -> Result<Self, LoadError> {
        load_check(&prog, &cfg.model)?;
        let mut tables: Vec<RtTable> = prog
            .tables
            .iter()
            .map(|t| {
                let mut rt = RtTable::new(t.size);
                if t.match_kind == gallium_p4::TableMatchKind::Lpm {
                    rt.make_lpm(t.key_widths.first().copied().unwrap_or(32));
                }
                rt
            })
            .collect();
        for (name, entries) in &cfg.cached_tables {
            if let Some(i) = prog.tables.iter().position(|t| &t.name == name) {
                tables[i].make_cache(*entries);
            }
        }
        let registers = vec![0; prog.registers.len()];
        let meta_bits = prog
            .metadata
            .iter()
            .map(|m| (m.name.clone(), m.bits))
            .collect();
        Ok(Switch {
            prog,
            cfg,
            tables,
            registers,
            wb_active: false,
            routes: HashMap::new(),
            meta_bits,
            cache_missed: false,
            evictions: Vec::new(),
            stats: SwitchStats::default(),
        })
    }

    /// Take the keys evicted from cache-mode tables since the last drain,
    /// as `(table name, key)` pairs in eviction order. The control plane
    /// uses this to learn which entries fell out of a FIFO cache (§7);
    /// LPM evictions are reported as `[prefix, prefix_len]`.
    pub fn drain_evictions(&mut self) -> Vec<(String, Vec<u64>)> {
        std::mem::take(&mut self.evictions)
    }

    /// The loaded program.
    pub fn program(&self) -> &P4Program {
        &self.prog
    }

    /// Install a route: packets whose IPv4 destination equals `daddr`
    /// egress on `port`.
    pub fn add_route(&mut self, daddr: u32, port: PortId) {
        self.routes.insert(daddr, port);
    }

    /// Runtime table access (tests and the control plane).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut RtTable> {
        let i = self.prog.tables.iter().position(|t| t.name == name)?;
        Some(&mut self.tables[i])
    }

    /// Read-only table access.
    pub fn table(&self, name: &str) -> Option<&RtTable> {
        let i = self.prog.tables.iter().position(|t| t.name == name)?;
        Some(&self.tables[i])
    }

    /// Read a register by name.
    pub fn register(&self, name: &str) -> Option<u64> {
        let i = self.prog.registers.iter().position(|r| r.name == name)?;
        Some(self.registers[i])
    }

    /// Set a register by name (control plane).
    pub(crate) fn set_register(&mut self, name: &str, value: u64) -> bool {
        if let Some(i) = self.prog.registers.iter().position(|r| r.name == name) {
            self.registers[i] = mask_to_width(value, self.prog.registers[i].width);
            true
        } else {
            false
        }
    }

    /// Whether staged write-back entries are currently visible.
    pub fn write_back_active(&self) -> bool {
        self.wb_active
    }

    /// Export the switch's runtime counters as a telemetry snapshot:
    /// data-plane totals under `gallium.switchsim.switch.*`, per-table
    /// hit/miss/eviction counters and occupancy under
    /// `gallium.switchsim.table.<name>.*`, and register occupancy under
    /// `gallium.switchsim.registers.*`.
    pub fn telemetry_snapshot(&self) -> gallium_telemetry::TelemetrySnapshot {
        let mut snap = gallium_telemetry::TelemetrySnapshot::default();
        let s = &self.stats;
        snap.set_counter("gallium.switchsim.switch.rx_network", s.rx_network);
        snap.set_counter("gallium.switchsim.switch.rx_server", s.rx_server);
        snap.set_counter("gallium.switchsim.switch.fast_path", s.fast_path);
        snap.set_counter("gallium.switchsim.switch.to_server", s.to_server);
        snap.set_counter("gallium.switchsim.switch.emitted", s.emitted);
        snap.set_counter("gallium.switchsim.switch.dropped", s.dropped);
        snap.set_counter("gallium.switchsim.switch.cache_misses", s.cache_misses);
        for (decl, rt) in self.prog.tables.iter().zip(&self.tables) {
            let p = format!("gallium.switchsim.table.{}", decl.name);
            snap.set_counter(&format!("{p}.hits"), rt.stats.hits.get());
            snap.set_counter(&format!("{p}.misses"), rt.stats.misses.get());
            snap.set_counter(&format!("{p}.evictions"), rt.stats.evictions.get());
            snap.set_counter(&format!("{p}.entries"), rt.len() as u64);
            snap.set_counter(&format!("{p}.capacity"), decl.size as u64);
        }
        snap.set_counter(
            "gallium.switchsim.registers.count",
            self.registers.len() as u64,
        );
        snap.set_counter(
            "gallium.switchsim.registers.nonzero",
            self.registers.iter().filter(|&&v| v != 0).count() as u64,
        );
        snap
    }

    fn route(&self, pkt: &Packet) -> PortId {
        let daddr = read_header_field(pkt.bytes(), HeaderField::IpDaddr) as u32;
        self.routes
            .get(&daddr)
            .copied()
            .unwrap_or(self.cfg.default_port)
    }

    /// Process one packet; returns `(egress port, frame)` pairs.
    pub fn process(&mut self, mut pkt: Packet) -> Vec<(PortId, Packet)> {
        if pkt.ingress == self.cfg.server_port {
            self.stats.rx_server += 1;
            let layout = self.prog.header_to_switch.clone();
            let Ok((flags, values)) = layout.detach(&mut pkt) else {
                // Malformed encapsulation: drop, as hardware would.
                self.stats.dropped += 1;
                return vec![];
            };
            if flags & FLAG_PASSTHROUGH != 0 {
                self.stats.emitted += 1;
                return vec![(self.route(&pkt), pkt)];
            }
            let mut meta: HashMap<String, u64> =
                values.iter().map(|(k, v)| (k.to_string(), v)).collect();
            let nodes = self.prog.post_nodes.clone();
            let (out, _) = self.run_traversal(&nodes, &mut pkt, &mut meta, false);
            out
        } else {
            self.stats.rx_network += 1;
            // Cache mode: keep a pristine copy; a cached-table miss voids
            // the traversal and the original packet is replayed on the
            // server.
            let pristine = self
                .tables
                .iter()
                .any(|t| t.is_cache())
                .then(|| pkt.clone());
            self.cache_missed = false;
            let mut meta = HashMap::new();
            let nodes = self.prog.pre_nodes.clone();
            let (mut out, needs_server) = self.run_traversal(&nodes, &mut pkt, &mut meta, true);
            if self.cache_missed {
                self.stats.cache_misses += 1;
                self.stats.to_server += 1;
                let mut orig = pristine.expect("pristine kept in cache mode");
                let layout = self.prog.header_to_server.clone();
                layout
                    .attach(
                        &mut orig,
                        FLAG_TO_SERVER | FLAG_CACHE_MISS,
                        &TransferValues::default(),
                    )
                    .expect("plain frame");
                return vec![(self.cfg.server_port, orig)];
            }
            if needs_server {
                self.stats.to_server += 1;
                let mut values = TransferValues::default();
                for f in self.prog.header_to_server.fields() {
                    values.set(&f.name, meta.get(&f.name).copied().unwrap_or(0));
                }
                let layout = self.prog.header_to_server.clone();
                layout
                    .attach(&mut pkt, FLAG_TO_SERVER, &values)
                    .expect("plain frame");
                out.push((self.cfg.server_port, pkt));
            } else {
                self.stats.fast_path += 1;
            }
            out
        }
    }

    /// Walk one traversal. Returns emitted packets and (for pre) whether
    /// later-stage work was encountered on the path.
    fn run_traversal(
        &mut self,
        nodes: &[BlockNode],
        pkt: &mut Packet,
        meta: &mut HashMap<String, u64>,
        is_pre: bool,
    ) -> (Vec<(PortId, Packet)>, bool) {
        let mut out = Vec::new();
        let mut saw_foreign = false;
        let mut cur = self.prog.entry;
        let mut steps = 0usize;
        loop {
            steps += 1;
            assert!(
                steps <= nodes.len() + 1,
                "pipeline traversal revisited a node (loop in generated P4)"
            );
            let node = &nodes[cur];
            saw_foreign |= is_pre && node.has_foreign_work;
            for stmt in &node.stmts {
                self.exec_stmt(stmt, pkt, meta, &mut out);
            }
            match &node.next {
                NodeNext::Jump(n) => cur = *n,
                NodeNext::Cond {
                    meta: m,
                    then_n,
                    else_n,
                } => {
                    let v = meta.get(m).copied().unwrap_or(0);
                    cur = if v != 0 { *then_n } else { *else_n };
                }
                NodeNext::SkipJoin {
                    join,
                    skipped_has_foreign,
                } => {
                    saw_foreign |= is_pre && *skipped_has_foreign;
                    match join {
                        Some(j) => cur = *j,
                        None => break,
                    }
                }
                NodeNext::End => break,
            }
        }
        (out, saw_foreign)
    }

    fn exec_stmt(
        &mut self,
        stmt: &P4Stmt,
        pkt: &mut Packet,
        meta: &mut HashMap<String, u64>,
        out: &mut Vec<(PortId, Packet)>,
    ) {
        match stmt {
            P4Stmt::SetMeta(name, e) => {
                let w = self.meta_bits.get(name).copied().unwrap_or(64);
                let v = self.eval(e, pkt, meta);
                meta.insert(name.clone(), mask_to_width(v, w.min(64) as u8));
            }
            P4Stmt::SetHeader(f, e) => {
                let v = mask_to_width(self.eval(e, pkt, meta), f.bits());
                write_header_field(pkt.bytes_mut(), *f, v);
            }
            P4Stmt::TableLookup {
                table,
                keys,
                hit_meta,
                value_metas,
            } => {
                let key: Vec<u64> = keys.iter().map(|k| self.eval(k, pkt, meta)).collect();
                match self.tables[*table].lookup(&key, self.wb_active) {
                    Some(vals) => {
                        meta.insert(hit_meta.clone(), 1);
                        for (m, v) in value_metas.iter().zip(vals) {
                            meta.insert(m.clone(), v);
                        }
                    }
                    None => {
                        // A miss in a cached table is inconclusive — the
                        // authoritative map may hold the entry.
                        if self.tables[*table].is_cache() {
                            self.cache_missed = true;
                        }
                        meta.insert(hit_meta.clone(), 0);
                        for m in value_metas {
                            meta.insert(m.clone(), 0);
                        }
                    }
                }
            }
            P4Stmt::RegRead { reg, dst } => {
                meta.insert(dst.clone(), self.registers[*reg]);
            }
            P4Stmt::RegWrite { reg, src } => {
                let w = self.prog.registers[*reg].width;
                self.registers[*reg] = mask_to_width(self.eval(src, pkt, meta), w);
            }
            P4Stmt::RegFetchAdd { reg, dst, delta } => {
                let w = self.prog.registers[*reg].width;
                let old = self.registers[*reg];
                let d = self.eval(delta, pkt, meta);
                self.registers[*reg] = mask_to_width(old.wrapping_add(d), w);
                meta.insert(dst.clone(), old);
            }
            P4Stmt::UpdateChecksum => refresh_ip_checksum(pkt.bytes_mut()),
            P4Stmt::EmitCopy => {
                self.stats.emitted += 1;
                out.push((self.route(pkt), pkt.clone()));
            }
            P4Stmt::MarkDrop => {
                self.stats.dropped += 1;
            }
        }
    }

    fn eval(&self, e: &P4Expr, pkt: &Packet, meta: &HashMap<String, u64>) -> u64 {
        match e {
            P4Expr::Const(v, _) => *v,
            P4Expr::Meta(n) => meta.get(n).copied().unwrap_or(0),
            P4Expr::Header(f) => read_header_field(pkt.bytes(), *f),
            P4Expr::IngressPort => u64::from(pkt.ingress.0),
            P4Expr::Bin(op, a, b) => op.eval(self.eval(a, pkt, meta), self.eval(b, pkt, meta), 64),
            P4Expr::Not(a) => !self.eval(a, pkt, meta),
            P4Expr::Cast(a, w) => mask_to_width(self.eval(a, pkt, meta), *w),
            P4Expr::Hash(parts, w) => {
                let inputs: Vec<u64> = parts.iter().map(|p| self.eval(p, pkt, meta)).collect();
                hash_values(&inputs, *w)
            }
        }
    }
}

/// Build a server→switch frame: attach the post-traversal header.
pub fn encapsulate_to_switch(
    prog: &P4Program,
    pkt: &mut Packet,
    values: &TransferValues,
    run_post: bool,
    passthrough: bool,
) {
    let mut flags = FLAG_TO_SWITCH;
    if run_post {
        flags |= FLAG_RUN_POST;
    }
    if passthrough {
        flags |= FLAG_PASSTHROUGH;
    }
    prog.header_to_switch
        .attach(pkt, flags, values)
        .expect("plain frame from server");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, TcpFlags};
    use gallium_partition::partition_program;

    fn minilb_switch() -> Switch {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        let p4 = gallium_p4::generate(&staged).unwrap();
        Switch::load(p4, SwitchConfig::default()).unwrap()
    }

    fn tcp_pkt(saddr: u32, daddr: u32) -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr,
                daddr,
                sport: 1000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(1))
    }

    #[test]
    fn miss_goes_to_server_with_header() {
        let mut sw = minilb_switch();
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_eq!(out.len(), 1);
        let (port, pkt) = &out[0];
        assert_eq!(*port, PortId::SERVER);
        // The frame grew by the transfer header.
        assert_eq!(pkt.len(), 100 + sw.program().header_to_server.wire_bytes());
        assert_eq!(sw.stats.to_server, 1);
        assert_eq!(sw.stats.fast_path, 0);
        // The header carries hash32 (saddr ^ daddr) and the miss bit.
        let (flags, values) = {
            let mut p = pkt.clone();
            sw.program().header_to_server.detach(&mut p).unwrap()
        };
        assert_eq!(flags & FLAG_TO_SERVER, FLAG_TO_SERVER);
        assert_eq!(
            values.get("v2"),
            Some(u64::from(0x0A000001u32 ^ 0x0A000099))
        );
        assert_eq!(values.get("v7"), Some(1), "miss bit set");
    }

    #[test]
    fn hit_takes_fast_path() {
        let mut sw = minilb_switch();
        // Install the connection entry the way the server's control plane
        // would: key = low 16 bits of saddr ^ daddr.
        let key = u64::from((0x0A000001u32 ^ 0x0A000099) & 0xFFFF);
        sw.table_mut("map")
            .unwrap()
            .insert_main(vec![key], vec![0xC0A80001])
            .unwrap();
        sw.add_route(0xC0A80001, PortId(7));
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_eq!(out.len(), 1);
        let (port, pkt) = &out[0];
        assert_eq!(*port, PortId(7));
        assert_eq!(pkt.len(), 100, "no transfer header on the fast path");
        assert_eq!(
            read_header_field(pkt.bytes(), HeaderField::IpDaddr),
            0xC0A80001
        );
        assert_eq!(sw.stats.fast_path, 1);
        assert_eq!(sw.stats.emitted, 1);
    }

    #[test]
    fn post_traversal_rewrites_and_emits() {
        let mut sw = minilb_switch();
        // Simulate the server's reply: branch bit set (miss path), backend
        // chosen = v13.
        let mut pkt = tcp_pkt(0x0A000001, 0x0A000099);
        pkt.ingress = PortId::SERVER;
        let mut values = TransferValues::default();
        values.set("v7", 1);
        values.set("v13", 0xC0A80002);
        let prog = sw.program().clone();
        encapsulate_to_switch(&prog, &mut pkt, &values, true, false);
        let out = sw.process(pkt);
        assert_eq!(out.len(), 1);
        let (_, emitted) = &out[0];
        assert_eq!(emitted.len(), 100, "header stripped");
        assert_eq!(
            read_header_field(emitted.bytes(), HeaderField::IpDaddr),
            0xC0A80002
        );
    }

    #[test]
    fn passthrough_emits_without_processing() {
        let mut sw = minilb_switch();
        let mut pkt = tcp_pkt(1, 2);
        pkt.ingress = PortId::SERVER;
        let prog = sw.program().clone();
        encapsulate_to_switch(&prog, &mut pkt, &TransferValues::default(), false, true);
        let out = sw.process(pkt);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.len(), 100);
        assert_eq!(sw.stats.emitted, 1);
    }

    #[test]
    fn write_back_visibility_follows_bit() {
        let mut sw = minilb_switch();
        let key = u64::from((0x0A000001u32 ^ 0x0A000099) & 0xFFFF);
        sw.table_mut("map")
            .unwrap()
            .stage(vec![key], Some(vec![0xC0A80003]));
        // Bit clear: the staged entry is invisible, packet misses.
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_eq!(out[0].0, PortId::SERVER);
        // Bit set: the staged entry hits.
        sw.wb_active = true;
        let out = sw.process(tcp_pkt(0x0A000001, 0x0A000099));
        assert_ne!(out[0].0, PortId::SERVER);
        assert_eq!(
            read_header_field(out[0].1.bytes(), HeaderField::IpDaddr),
            0xC0A80003
        );
    }

    #[test]
    fn malformed_server_frame_dropped() {
        let mut sw = minilb_switch();
        let mut pkt = tcp_pkt(1, 2);
        pkt.ingress = PortId::SERVER; // no gallium header attached
        let out = sw.process(pkt);
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped, 1);
    }
}
