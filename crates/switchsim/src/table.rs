//! Runtime match-action tables with write-back shadows (§4.3.3).
//!
//! Control-plane mutations land in an ordinary `HashMap`; the data plane
//! reads through a rebuilt [`ReadLayout`] — a flat, open-addressed
//! perfect-hash array (hash-and-displace over [`FxHasher64`]) holding the
//! inline key lanes and value offsets in one contiguous allocation, so a
//! warm exact-match probe touches exactly one slot with no bucket-chain
//! pointer chases. Mutations between rebuilds accumulate in a small delta
//! overlay; the layout is rebuilt incrementally on mutation epochs (or
//! eagerly via [`RtTable::flush_layout`], which the switch calls before
//! dataplane processing).

use crate::fasthash::{FastBuildHasher, FxHasher64};
use std::borrow::Borrow;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Number of key words a [`TableKey`] stores inline (without heap
/// indirection). RMT-style hardware matches on fixed-width keys; four
/// 64-bit words cover every packaged middlebox (the widest key, a
/// five-tuple, packs into 5×≤32-bit fields lowered to ≤4 words).
pub const INLINE_KEY_WORDS: usize = 4;

/// A match key stored inline — the software analogue of a fixed-width
/// RMT match key.
///
/// Keys of up to [`INLINE_KEY_WORDS`] words (every packaged middlebox)
/// live directly in the enum with no heap allocation; wider keys take the
/// typed `Spilled` fallback. Equality and hashing are defined over
/// [`TableKey::as_slice`], and `TableKey: Borrow<[u64]>`, so a
/// `HashMap<TableKey, V>` can be probed with a plain `&[u64]` — the data
/// plane never materializes a key to look one up.
#[derive(Debug, Clone)]
pub enum TableKey {
    /// Up to [`INLINE_KEY_WORDS`] words stored in place.
    Inline {
        /// Number of meaningful words in `words`.
        len: u8,
        /// The key words; entries at index ≥ `len` are zero padding.
        words: [u64; INLINE_KEY_WORDS],
    },
    /// Typed fallback for keys wider than [`INLINE_KEY_WORDS`] words.
    Spilled(Box<[u64]>),
}

impl TableKey {
    /// The key words as a slice (only the meaningful prefix for inline
    /// keys).
    pub fn as_slice(&self) -> &[u64] {
        match self {
            TableKey::Inline { len, words } => &words[..usize::from(*len)],
            TableKey::Spilled(words) => words,
        }
    }

    /// Number of key words.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for the zero-width key.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Owned copy of the key words.
    pub fn to_vec(&self) -> Vec<u64> {
        self.as_slice().to_vec()
    }
}

impl From<&[u64]> for TableKey {
    fn from(slice: &[u64]) -> Self {
        if slice.len() <= INLINE_KEY_WORDS {
            let mut words = [0u64; INLINE_KEY_WORDS];
            words[..slice.len()].copy_from_slice(slice);
            TableKey::Inline {
                len: slice.len() as u8,
                words,
            }
        } else {
            TableKey::Spilled(slice.into())
        }
    }
}

impl From<Vec<u64>> for TableKey {
    fn from(v: Vec<u64>) -> Self {
        if v.len() <= INLINE_KEY_WORDS {
            TableKey::from(v.as_slice())
        } else {
            TableKey::Spilled(v.into_boxed_slice())
        }
    }
}

impl PartialEq for TableKey {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TableKey::Inline { len: la, words: wa }, TableKey::Inline { len: lb, words: wb }) => {
                // Branchless word-parallel compare: XOR-accumulate the
                // difference across all four lanes, masking each lane by
                // whether it is live (index < len). Lane masking — rather
                // than trusting the zero-padding invariant — keeps the
                // compare correct even for hand-built keys, and matches
                // `as_slice()` equality exactly.
                let mut acc = u64::from(la ^ lb);
                let len = usize::from(*la);
                for i in 0..INLINE_KEY_WORDS {
                    acc |= (wa[i] ^ wb[i]) & u64::from(i < len).wrapping_neg();
                }
                acc == 0
            }
            _ => self.as_slice() == other.as_slice(),
        }
    }
}

impl Eq for TableKey {}

impl Hash for TableKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `<[u64] as Hash>` so `Borrow<[u64]>` probes hash
        // to the same bucket.
        self.as_slice().hash(state);
    }
}

impl Borrow<[u64]> for TableKey {
    fn borrow(&self) -> &[u64] {
        self.as_slice()
    }
}

impl PartialOrd for TableKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TableKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// Reusable key-assembly buffer for the packet hot path.
///
/// The compiled plan evaluates key expressions into this buffer before
/// probing a table. Words accumulate into a fixed inline array; keys wider
/// than [`INLINE_KEY_WORDS`] spill into a `Vec` that is retained (and its
/// capacity reused) across packets, so steady-state key assembly never
/// allocates regardless of width.
#[derive(Debug, Clone, Default)]
pub struct KeyBuf {
    len: usize,
    words: [u64; INLINE_KEY_WORDS],
    spill: Vec<u64>,
}

impl KeyBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        KeyBuf::default()
    }

    /// Reset for the next key (spill capacity is retained).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Append one key word.
    pub fn push(&mut self, word: u64) {
        if self.spill.is_empty() && self.len < INLINE_KEY_WORDS {
            self.words[self.len] = word;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                // First word past the inline capacity: migrate what we have.
                self.spill.extend_from_slice(&self.words[..self.len]);
            }
            self.spill.push(word);
        }
    }

    /// The assembled key words.
    pub fn as_slice(&self) -> &[u64] {
        if self.spill.is_empty() {
            &self.words[..self.len]
        } else {
            &self.spill
        }
    }
}

/// Single-threaded counter the data plane bumps through `&self`.
///
/// `RtTable` lives inside one `Switch` and is never shared across
/// threads, so interior mutability via [`Cell`] suffices — an atomic RMW
/// here would put a locked instruction on every warm-path lookup for
/// nothing. Cloning snapshots the value.
#[derive(Debug, Clone, Default)]
pub struct TableCounter(Cell<u64>);

impl TableCounter {
    /// Add one.
    #[inline(always)]
    pub fn inc(&self) {
        self.0.set(self.0.get().wrapping_add(1));
    }

    /// Add `n`.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Per-table runtime counters.
///
/// Counters use [`TableCounter`] (a `Cell`) so the data-plane
/// [`RtTable::lookup`] (which takes `&self`) can bump them without locks,
/// allocation, or atomic traffic. Cloning a table snapshots the values.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Data-plane lookups that matched an entry.
    pub hits: TableCounter,
    /// Data-plane lookups that missed.
    pub misses: TableCounter,
    /// Entries displaced by cache-mode FIFO replacement (§7).
    pub evictions: TableCounter,
    /// Perfect-hash read-layout rebuilds (control-plane side).
    pub rebuilds: TableCounter,
    /// Exact-match lookups served by the perfect-hash read layout.
    pub probes: TableCounter,
}

/// Multiplier for the layout's slot-index hash (golden-ratio family; odd).
const LAYOUT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Slot-array doublings attempted before the layout gives up and the
/// table keeps serving lookups from the hash map.
const LAYOUT_BUILD_ATTEMPTS: usize = 4;

/// Displacement values tried per bucket before growing the slot array.
const LAYOUT_DISP_TRIES: u32 = 256;

/// Delta-overlay entries that trigger an automatic layout rebuild (the
/// effective threshold scales with table size; see
/// [`RtTable::note_mutation`]).
const LAYOUT_DELTA_MAX: usize = 16;

/// `len` sentinel marking an unoccupied layout slot (no real key has more
/// than [`INLINE_KEY_WORDS`] words here).
const LAYOUT_EMPTY: u8 = u8::MAX;

/// Hash of a key's words for the read layout. Folds the length first so
/// `[1]` and `[1, 0]` (distinct keys) never share a hash by construction.
#[inline]
fn hash_key_words(words: &[u64]) -> u64 {
    let mut h = FxHasher64::default();
    h.write_usize(words.len());
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Bucket index for the displacement table: the high hash bits (the
/// multiply-mixed ones), independent of the low bits the slot index uses.
#[inline]
fn layout_bucket_index(h: u64, mask: u64) -> usize {
    ((h >> 32) & mask) as usize
}

/// Slot index under displacement `disp`: re-mixing through a multiply
/// makes each displacement value behave like an independent hash function
/// for every key in the bucket, which is what hash-and-displace needs.
#[inline]
fn layout_slot_index(h: u64, disp: u32, mask: u64) -> usize {
    ((h.wrapping_add(u64::from(disp)).wrapping_mul(LAYOUT_SEED) >> 32) & mask) as usize
}

/// One slot of the read layout: inline key lanes (zero-padded past `len`,
/// so equality is a branchless four-lane XOR) plus the value's offset into
/// the layout's contiguous value pool.
#[derive(Debug, Clone, Copy)]
struct LayoutSlot {
    /// Key words, or [`LAYOUT_EMPTY`] for an unoccupied slot.
    len: u8,
    /// The key words; lanes at index ≥ `len` are zero.
    words: [u64; INLINE_KEY_WORDS],
    /// Start of the value words in [`ReadLayout::values`].
    val_start: u32,
    /// Number of value words.
    val_len: u32,
}

impl LayoutSlot {
    const EMPTY: LayoutSlot = LayoutSlot {
        len: LAYOUT_EMPTY,
        words: [0; INLINE_KEY_WORDS],
        val_start: 0,
        val_len: 0,
    };
}

/// Read-optimized two-level (hash-and-displace) exact-match layout.
///
/// A lookup is: hash the key words, read one displacement word, probe one
/// slot, compare the inline lanes — at most one slot touched, zero bucket
/// chains, zero allocation. Built from the main hash map by
/// [`RtTable::rebuild_layout`]; tables holding any spilled (wider than
/// [`INLINE_KEY_WORDS`]) key fall back to hash-map serving.
#[derive(Debug, Clone)]
struct ReadLayout {
    /// `slot count - 1` (slot count is a power of two; bucket count equals
    /// slot count).
    mask: u64,
    /// Per-bucket displacement values.
    disp: Box<[u32]>,
    /// The open-addressed slot array.
    slots: Box<[LayoutSlot]>,
    /// All values, concatenated; slots index into this pool.
    values: Box<[u64]>,
}

impl ReadLayout {
    /// Single-probe exact-match lookup. `None` for keys wider than the
    /// inline lanes — [`RtTable`] guarantees no such key is resident while
    /// a layout is active.
    #[inline]
    fn get(&self, key: &[u64]) -> Option<&[u64]> {
        if key.len() > INLINE_KEY_WORDS {
            return None;
        }
        let mut padded = [0u64; INLINE_KEY_WORDS];
        padded[..key.len()].copy_from_slice(key);
        let h = hash_key_words(key);
        let b = layout_bucket_index(h, self.mask);
        let s = layout_slot_index(h, self.disp[b], self.mask);
        let slot = &self.slots[s];
        // Branchless compare: the slot's lanes past `len` are zero by
        // construction and `padded` is zero past the probe's length, so
        // all four lanes can be XOR-folded unconditionally; the length
        // byte disambiguates prefix keys and empty slots (LAYOUT_EMPTY
        // never equals a real length).
        let mut acc = u64::from(slot.len ^ key.len() as u8);
        for (w, p) in slot.words.iter().zip(padded.iter()) {
            acc |= w ^ p;
        }
        if acc != 0 {
            return None;
        }
        let start = slot.val_start as usize;
        Some(&self.values[start..start + slot.val_len as usize])
    }

    /// Prefetch the slot this key would probe. Reading the displacement
    /// word and touching the slot line here is the point: by the time the
    /// real probe runs, both are warm. The crate forbids `unsafe`, so
    /// instead of a prefetch instruction this issues an early demand load
    /// of the slot's tag byte through `black_box` — the out-of-order core
    /// overlaps the line fill with whatever the caller does next exactly
    /// as a software prefetch would.
    #[inline]
    fn prefetch(&self, key: &[u64]) {
        if key.len() > INLINE_KEY_WORDS {
            return;
        }
        let h = hash_key_words(key);
        let b = layout_bucket_index(h, self.mask);
        let s = layout_slot_index(h, self.disp[b], self.mask);
        std::hint::black_box(self.slots[s].len);
    }
}

/// Build a read layout over `main`, or `None` when a spilled key or a
/// displacement failure forces hash-map serving.
fn build_layout(main: &HashMap<TableKey, Vec<u64>, FastBuildHasher>) -> Option<ReadLayout> {
    let mut entries = Vec::with_capacity(main.len());
    for (key, value) in main {
        if key.len() > INLINE_KEY_WORDS {
            return None;
        }
        entries.push((hash_key_words(key.as_slice()), key, value));
    }
    let mut nslots = (main.len().max(1) * 2).next_power_of_two().max(8);
    for _ in 0..LAYOUT_BUILD_ATTEMPTS {
        if let Some(layout) = try_build_layout(&entries, nslots) {
            return Some(layout);
        }
        nslots *= 2;
    }
    None
}

/// One hash-and-displace attempt at a fixed slot count. Buckets are
/// placed in decreasing size order (big buckets have the fewest viable
/// displacements, so they claim slots while the array is emptiest).
fn try_build_layout(entries: &[(u64, &TableKey, &Vec<u64>)], nslots: usize) -> Option<ReadLayout> {
    let mask = (nslots - 1) as u64;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nslots];
    for (i, (h, _, _)) in entries.iter().enumerate() {
        buckets[layout_bucket_index(*h, mask)].push(i as u32);
    }
    let mut order: Vec<u32> = (0..nslots as u32)
        .filter(|&b| !buckets[b as usize].is_empty())
        .collect();
    order.sort_by_key(|&b| (std::cmp::Reverse(buckets[b as usize].len()), b));
    let mut disp = vec![0u32; nslots].into_boxed_slice();
    let mut slot_entry = vec![u32::MAX; nslots];
    let mut claimed: Vec<usize> = Vec::new();
    for &b in &order {
        let members = &buckets[b as usize];
        let mut placed = false;
        'disp: for d in 0..LAYOUT_DISP_TRIES {
            claimed.clear();
            for &m in members {
                let s = layout_slot_index(entries[m as usize].0, d, mask);
                if slot_entry[s] != u32::MAX || claimed.contains(&s) {
                    continue 'disp;
                }
                claimed.push(s);
            }
            disp[b as usize] = d;
            for (&m, &s) in members.iter().zip(&claimed) {
                slot_entry[s] = m;
            }
            placed = true;
            break;
        }
        if !placed {
            return None;
        }
    }
    let mut slots = vec![LayoutSlot::EMPTY; nslots].into_boxed_slice();
    let mut values = Vec::new();
    for (s, &e) in slot_entry.iter().enumerate() {
        if e == u32::MAX {
            continue;
        }
        let (_, key, value) = entries[e as usize];
        let kslice = key.as_slice();
        let mut words = [0u64; INLINE_KEY_WORDS];
        words[..kslice.len()].copy_from_slice(kslice);
        slots[s] = LayoutSlot {
            len: kslice.len() as u8,
            words,
            val_start: values.len() as u32,
            val_len: value.len() as u32,
        };
        values.extend_from_slice(value);
    }
    Some(ReadLayout {
        mask,
        disp,
        slots,
        values: values.into_boxed_slice(),
    })
}

/// Why a table rejected a control-plane mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// An LPM operation was issued against an exact-match table.
    NotLpm,
    /// The prefix length exceeds the table's key width.
    PrefixTooLong {
        /// Requested prefix length in bits.
        len: u8,
        /// The table's key width in bits.
        key_width: u8,
    },
    /// The table is full and not in cache (evicting) mode.
    CapacityExceeded {
        /// Configured capacity in entries.
        capacity: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::NotLpm => write!(f, "LPM operation on exact-match table"),
            TableError::PrefixTooLong { len, key_width } => {
                write!(f, "prefix length {len} exceeds key width {key_width}")
            }
            TableError::CapacityExceeded { capacity } => {
                write!(f, "table full ({capacity} entries)")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// One exact-match table plus its write-back shadow.
///
/// The shadow holds *staged* updates: `Some(value)` overrides the main
/// table, `None` is a tombstone that negates it. Lookups consult the shadow
/// only while the switch-global write-back bit is set — flipping that bit
/// is the single atomic operation that makes a whole batch of updates
/// visible at once.
#[derive(Debug, Clone, Default)]
pub struct RtTable {
    main: HashMap<TableKey, Vec<u64>, FastBuildHasher>,
    shadow: HashMap<TableKey, Option<Vec<u64>>, FastBuildHasher>,
    capacity: usize,
    /// FIFO eviction on insert-at-capacity (cache mode, §7 extension).
    evict_fifo: bool,
    order: VecDeque<TableKey>,
    /// Longest-prefix-match mode (§7 extension): `(prefix, len, value)`
    /// entries and the key width. Exact lookups are bypassed.
    lpm: Option<(u8, Vec<LpmEntry>)>,
    /// Perfect-hash read layout serving exact-match lookups; `None` while
    /// a spilled key or displacement failure forces hash-map serving.
    /// Invariant while `Some`: `layout` overlaid with `delta` is
    /// observation-equivalent to `main`.
    layout: Option<ReadLayout>,
    /// Mutations since the last rebuild: `Some` overrides the layout,
    /// `None` tombstones a layout entry. Consulted (cheaply, behind one
    /// `is_empty` branch) before every layout probe; cleared on rebuild.
    delta: HashMap<TableKey, Option<Vec<u64>>, FastBuildHasher>,
    /// Control-plane mutation epoch: bumped once per main-table mutation.
    epoch: u64,
    /// Epoch the layout was last rebuilt at (stale ⇒ `flush_layout`
    /// re-attempts the build).
    layout_epoch: u64,
    /// Hit/miss/eviction/rebuild/probe counters.
    pub stats: TableStats,
}

/// One LPM entry: `(prefix, prefix_len, value)`.
type LpmEntry = (u64, u8, Vec<u64>);

impl RtTable {
    /// Empty table sized to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RtTable {
            main: HashMap::default(),
            shadow: HashMap::default(),
            capacity,
            evict_fifo: false,
            order: VecDeque::new(),
            lpm: None,
            layout: build_layout(&HashMap::default()),
            delta: HashMap::default(),
            epoch: 0,
            layout_epoch: 0,
            stats: TableStats::default(),
        }
    }

    /// Rebuild the perfect-hash read layout from `main` and clear the
    /// delta overlay. Called automatically when the overlay grows past its
    /// threshold and from [`RtTable::flush_layout`].
    fn rebuild_layout(&mut self) {
        self.delta.clear();
        self.layout = build_layout(&self.main);
        self.layout_epoch = self.epoch;
        self.stats.rebuilds.inc();
    }

    /// Make the read layout current if any mutation is outstanding. The
    /// switch calls this before dataplane processing so steady-state
    /// lookups always take the single-probe path with an empty delta.
    pub fn flush_layout(&mut self) {
        if self.layout_epoch != self.epoch {
            self.rebuild_layout();
        }
    }

    /// True when exact-match lookups are currently served by the
    /// perfect-hash layout (as opposed to the fallback hash map).
    pub fn layout_active(&self) -> bool {
        self.layout.is_some()
    }

    /// Number of mutations buffered in the delta overlay since the last
    /// layout rebuild.
    pub fn pending_delta(&self) -> usize {
        self.delta.len()
    }

    /// The control-plane mutation epoch (bumped once per main-table
    /// mutation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Prefetch the layout slot `key` would probe, hiding the probe's
    /// memory latency behind unrelated work (batch software pipelining).
    /// Semantically a no-op; cheap and harmless even when the layout is
    /// stale or inactive.
    #[inline]
    pub fn prefetch(&self, key: &[u64]) {
        if let Some(layout) = &self.layout {
            layout.prefetch(key);
        }
    }

    /// Record one main-table mutation: bump the epoch and fold the change
    /// into the delta overlay (or rebuild outright — spilled keys force
    /// hash-map serving, and an oversized overlay is amortized away).
    fn note_mutation(&mut self, key: TableKey, staged: Option<Vec<u64>>) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.layout.is_none() {
            // Hash-map serving: `main` is probed directly, so there is
            // nothing to overlay. `flush_layout` re-attempts the build.
            return;
        }
        if matches!(key, TableKey::Spilled(_)) {
            // Invariant: an active layout means every resident *and*
            // overlaid key is inline. Rebuild now (which bails to map
            // serving) rather than track spilled keys in the delta.
            self.rebuild_layout();
            return;
        }
        self.delta.insert(key, staged);
        if self.delta.len() >= LAYOUT_DELTA_MAX.max(self.main.len() / 8) {
            self.rebuild_layout();
        }
    }

    /// Switch the table into longest-prefix-match mode with the given key
    /// width.
    pub fn make_lpm(&mut self, key_width: u8) {
        self.lpm = Some((key_width, Vec::new()));
    }

    /// Install an LPM entry (control plane).
    ///
    /// Replaces an existing entry with the same `(prefix, len)`. At
    /// capacity, cache-mode tables evict their oldest entry (FIFO, same
    /// policy as [`RtTable::insert_main`]) and report the displaced
    /// `(prefix, len)` pairs back to the caller so the control plane can
    /// track what fell out of the cache; ordinary tables reject the
    /// insert with a typed error. Prefixes longer than the key width are
    /// rejected outright — they could never match consistently.
    pub fn lpm_insert(
        &mut self,
        prefix: u64,
        len: u8,
        value: Vec<u64>,
    ) -> Result<Vec<(u64, u8)>, TableError> {
        let capacity = self.capacity;
        let evict = self.evict_fifo;
        let Some((key_width, entries)) = &mut self.lpm else {
            return Err(TableError::NotLpm);
        };
        if len > *key_width {
            return Err(TableError::PrefixTooLong {
                len,
                key_width: *key_width,
            });
        }
        // Canonicalize: mask the prefix to its `len` leading bits. Bits
        // below the prefix can never influence a match, so storing them
        // raw would let two spellings of the same effective prefix (e.g.
        // 0xFF/4 and 0xF0/4 under key width 8) coexist — replacement
        // would miss, and lookups would keep serving the stale entry.
        let prefix = if len == 0 {
            0
        } else {
            let shift = *key_width - len;
            (prefix >> shift) << shift
        };
        entries.retain(|(p, l, _)| !(*p == prefix && *l == len));
        let mut evicted = Vec::new();
        if entries.len() >= capacity {
            if !evict || capacity == 0 {
                // The degenerate capacity is checked before any state is
                // touched (mirroring `insert_main`): draining first would
                // destroy the resident entries, lose the evicted list, and
                // still fail.
                return Err(TableError::CapacityExceeded { capacity });
            }
            // Cache mode: drop the oldest installed entries until one slot
            // frees up (entries are kept in installation order).
            while entries.len() >= capacity {
                let (p, l, _) = entries.remove(0);
                evicted.push((p, l));
            }
        }
        entries.push((prefix, len, value));
        self.stats.evictions.add(evicted.len() as u64);
        Ok(evicted)
    }

    /// Turn the table into a FIFO-evicting cache of `capacity` entries
    /// (the §7 "reducing memory usage" extension).
    pub fn make_cache(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_fifo = true;
    }

    /// Is this table operating as a cache?
    pub fn is_cache(&self) -> bool {
        self.evict_fifo
    }

    /// Data-plane lookup. `wb_active` is the global visibility bit.
    ///
    /// Returns an owned copy of the value — the control-plane-friendly
    /// variant. The packet hot path uses [`RtTable::lookup_ref`] instead,
    /// which borrows the stored value and never allocates.
    pub fn lookup(&self, key: &[u64], wb_active: bool) -> Option<Vec<u64>> {
        self.lookup_ref(key, wb_active).map(<[u64]>::to_vec)
    }

    /// Data-plane lookup returning a *borrowed* value slice.
    ///
    /// Identical match semantics (LPM best-match, write-back shadow,
    /// tombstones) and identical hit/miss accounting as
    /// [`RtTable::lookup`], but without cloning the value per hit — this
    /// is what the compiled execution plan calls per packet.
    pub fn lookup_ref(&self, key: &[u64], wb_active: bool) -> Option<&[u64]> {
        let result = self.lookup_inner(key, wb_active);
        if result.is_some() {
            self.stats.hits.inc();
        } else {
            self.stats.misses.inc();
        }
        result
    }

    fn lookup_inner(&self, key: &[u64], wb_active: bool) -> Option<&[u64]> {
        if let Some((key_width, entries)) = &self.lpm {
            let k = key.first().copied().unwrap_or(0);
            let mut best: Option<(u8, &[u64])> = None;
            for (prefix, len, value) in entries {
                let matches = if *len == 0 {
                    true
                } else if *len > *key_width {
                    // Over-long prefixes are rejected at insert; treat any
                    // legacy entry as unmatchable rather than letting the
                    // shift saturate to 0 and match everything.
                    false
                } else {
                    let shift = key_width - len;
                    (k >> shift) == (*prefix >> shift)
                };
                if matches && best.map(|(bl, _)| *len > bl).unwrap_or(true) {
                    best = Some((*len, value.as_slice()));
                }
            }
            return best.map(|(_, v)| v);
        }
        // Exact-match probes: keys that fit the inline lanes are rebuilt as
        // a stack-only `TableKey` so the hash maps' equality checks run the
        // word-parallel inline compare (hashing still goes through the
        // shared slice `Hash` impl, so buckets agree with `Borrow<[u64]>`
        // probes). Wider keys keep the allocation-free slice probe.
        //
        // Probe order: write-back shadow (only while the visibility bit is
        // set) → delta overlay (one `is_empty` branch when no mutation is
        // outstanding) → single perfect-hash layout probe. Tables without
        // an active layout (spilled keys, displacement failure) fall back
        // to the main hash map.
        if key.len() <= INLINE_KEY_WORDS {
            // The stack-only probe key is built lazily inside each cold
            // branch: the steady state (write-back bit clear, delta
            // folded, layout active) goes straight to the single
            // perfect-hash probe without copying the key words at all.
            if wb_active {
                if let Some(staged) = self.shadow.get(&TableKey::from(key)) {
                    return staged.as_deref();
                }
            }
            if let Some(layout) = &self.layout {
                if !self.delta.is_empty() {
                    if let Some(staged) = self.delta.get(&TableKey::from(key)) {
                        return staged.as_deref();
                    }
                }
                self.stats.probes.inc();
                return layout.get(key);
            }
            return self.main.get(&TableKey::from(key)).map(Vec::as_slice);
        }
        if wb_active {
            if let Some(staged) = self.shadow.get(key) {
                return staged.as_deref();
            }
        }
        if self.layout.is_some() {
            // An active layout guarantees every resident key is inline
            // (spilled inserts rebuild immediately), so a wide probe is a
            // definite miss.
            self.stats.probes.inc();
            return None;
        }
        self.main.get(key).map(Vec::as_slice)
    }

    /// Control-plane insert/overwrite into the main table. When the table
    /// is full: caches evict their oldest entry (FIFO) and return the
    /// displaced keys so the control plane can track what fell out;
    /// ordinary tables reject the insert with a typed error.
    pub fn insert_main(
        &mut self,
        key: Vec<u64>,
        value: Vec<u64>,
    ) -> Result<Vec<Vec<u64>>, TableError> {
        let mut evicted = Vec::new();
        // One containment probe up front: the eviction loop below only runs
        // when `key` is absent and can only displace *other* keys, so the
        // answer cannot change before the insert.
        let present = self.main.contains_key(key.as_slice());
        if !present && self.main.len() >= self.capacity {
            if !self.evict_fifo {
                return Err(TableError::CapacityExceeded {
                    capacity: self.capacity,
                });
            }
            while self.main.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.main.remove(old.as_slice());
                        self.note_mutation(old.clone(), None);
                        evicted.push(old.to_vec());
                    }
                    None => {
                        return Err(TableError::CapacityExceeded {
                            capacity: self.capacity,
                        }); // capacity 0
                    }
                }
            }
        }
        let key = TableKey::from(key);
        if self.evict_fifo && !present {
            // FIFO position is fixed at *first* insert: re-inserting or
            // overwriting an existing key must not refresh (or duplicate)
            // its slot in the order queue.
            self.order.push_back(key.clone());
        }
        self.main.insert(key.clone(), value.clone());
        self.note_mutation(key, Some(value));
        self.stats.evictions.add(evicted.len() as u64);
        Ok(evicted)
    }

    /// Control-plane delete from the main table.
    ///
    /// Also drops any *staged* shadow entry for the key: a delete is the
    /// control plane's newest word on it, and a staged update left behind
    /// would resurrect the key at the next write-back commit (and keep
    /// serving it while the visibility bit is set).
    pub fn delete_main(&mut self, key: &[u64]) {
        self.main.remove(key);
        self.shadow.remove(key);
        self.note_mutation(TableKey::from(key), None);
        if self.evict_fifo {
            self.order.retain(|k| k.as_slice() != key);
        }
    }

    /// Stage an update (or a `None` tombstone) in the shadow.
    pub fn stage(&mut self, key: Vec<u64>, value: Option<Vec<u64>>) {
        self.shadow.insert(TableKey::from(key), value);
    }

    /// Drain the shadow, returning the staged updates (used when folding
    /// them into the main table).
    pub fn drain_shadow(&mut self) -> Vec<(Vec<u64>, Option<Vec<u64>>)> {
        self.shadow.drain().map(|(k, v)| (k.to_vec(), v)).collect()
    }

    /// Snapshot of the main entries (sorted by key for determinism).
    pub fn entries(&self) -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut v: Vec<_> = self
            .main
            .iter()
            .map(|(k, val)| (k.to_vec(), val.clone()))
            .collect();
        v.sort();
        v
    }

    /// Number of main entries.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// True when the main table is empty.
    pub fn is_empty(&self) -> bool {
        self.main.is_empty()
    }

    /// Number of staged (shadow) entries.
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_ignores_shadow_when_bit_clear() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], Some(vec![99]));
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        assert_eq!(t.lookup(&[1], true), Some(vec![99]));
    }

    #[test]
    fn tombstone_negates_main() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], None);
        assert_eq!(t.lookup(&[1], true), None);
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
    }

    #[test]
    fn shadow_provides_new_entries() {
        let mut t = RtTable::new(8);
        t.stage(vec![7], Some(vec![70]));
        assert_eq!(t.lookup(&[7], true), Some(vec![70]));
        assert_eq!(t.lookup(&[7], false), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = RtTable::new(2);
        assert_eq!(t.insert_main(vec![1], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![2], vec![2]), Ok(vec![]));
        assert_eq!(
            t.insert_main(vec![3], vec![3]),
            Err(TableError::CapacityExceeded { capacity: 2 })
        );
        // Overwriting an existing key is allowed at capacity.
        assert_eq!(t.insert_main(vec![2], vec![22]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evictions.get(), 0);
    }

    #[test]
    fn cache_evicts_fifo() {
        let mut t = RtTable::new(8);
        t.make_cache(2);
        assert_eq!(t.insert_main(vec![1], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![2], vec![2]), Ok(vec![]));
        // Evicts key 1 — the displaced key comes back to the caller.
        assert_eq!(t.insert_main(vec![3], vec![3]), Ok(vec![vec![1]]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evictions.get(), 1);
        assert_eq!(t.lookup(&[1], false), None);
        assert_eq!(t.lookup(&[2], false), Some(vec![2]));
        assert_eq!(t.lookup(&[3], false), Some(vec![3]));
        // Overwrite does not evict.
        assert_eq!(t.insert_main(vec![2], vec![22]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        // Deleting keeps the order queue consistent.
        t.delete_main(&[2]);
        assert_eq!(t.insert_main(vec![4], vec![4]), Ok(vec![]));
        // Evicts 3, not the already-deleted 2.
        assert_eq!(t.insert_main(vec![5], vec![5]), Ok(vec![vec![3]]));
        assert_eq!(t.lookup(&[3], false), None);
        assert_eq!(t.lookup(&[4], false), Some(vec![4]));
        assert_eq!(t.stats.evictions.get(), 2);
    }

    #[test]
    fn lookup_ref_agrees_with_owned_lookup() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10, 11]).unwrap();
        t.stage(vec![2], Some(vec![20]));
        t.stage(vec![1], None);
        for (key, wb) in [(1u64, false), (1, true), (2, false), (2, true), (3, false)] {
            assert_eq!(
                t.lookup_ref(&[key], wb).map(<[u64]>::to_vec),
                t.lookup(&[key], wb),
                "key {key} wb {wb}"
            );
        }
        // Both variants bump the same counters (5 keys probed twice each).
        assert_eq!(t.stats.hits.get() + t.stats.misses.get(), 10);

        let mut l = RtTable::new(8);
        l.make_lpm(32);
        l.lpm_insert(0x0a00_0000, 8, vec![8]).unwrap();
        l.lpm_insert(0x0a0b_0000, 16, vec![16]).unwrap();
        for probe in [0x0a0b_0c0du64, 0x0aff_0000, 0x0c00_0000] {
            assert_eq!(
                l.lookup_ref(&[probe], false).map(<[u64]>::to_vec),
                l.lookup(&[probe], false)
            );
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        assert!(t.lookup(&[1], false).is_some());
        assert!(t.lookup(&[2], false).is_none());
        assert!(t.lookup(&[1], false).is_some());
        assert_eq!(t.stats.hits.get(), 2);
        assert_eq!(t.stats.misses.get(), 1);
        // Cloning snapshots the counters independently.
        let snap = t.clone();
        t.lookup(&[1], false);
        assert_eq!(snap.stats.hits.get(), 2);
        assert_eq!(t.stats.hits.get(), 3);
    }

    #[test]
    fn lpm_insert_rejects_on_exact_match_table() {
        let mut t = RtTable::new(4);
        assert_eq!(t.lpm_insert(0, 8, vec![1]), Err(TableError::NotLpm));
    }

    #[test]
    fn lpm_insert_rejects_over_long_prefix() {
        let mut t = RtTable::new(4);
        t.make_lpm(32);
        assert_eq!(
            t.lpm_insert(0, 40, vec![1]),
            Err(TableError::PrefixTooLong {
                len: 40,
                key_width: 32
            })
        );
        // A rejected entry must not have been installed.
        assert_eq!(t.lookup(&[123], false), None);
    }

    #[test]
    fn lpm_insert_rejects_at_capacity_without_cache_mode() {
        let mut t = RtTable::new(2);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![1]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![2]), Ok(vec![]));
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Err(TableError::CapacityExceeded { capacity: 2 })
        );
        // Re-inserting an existing (prefix, len) overwrites in place.
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![22]), Ok(vec![]));
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![22]));
    }

    #[test]
    fn lpm_cache_mode_evicts_oldest() {
        let mut t = RtTable::new(8);
        t.make_cache(2);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![1]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![2]), Ok(vec![]));
        // Evicts 0x0a/8 and reports it.
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Ok(vec![(0x0a00_0000, 8)])
        );
        assert_eq!(t.stats.evictions.get(), 1);
        assert_eq!(t.lookup(&[0x0a01_0203], false), None);
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![2]));
        assert_eq!(t.lookup(&[0x0c01_0203], false), Some(vec![3]));
    }

    #[test]
    fn lpm_zero_capacity_cache_rejects() {
        let mut t = RtTable::new(0);
        t.make_cache(0);
        t.make_lpm(32);
        assert_eq!(
            t.lpm_insert(0, 8, vec![1]),
            Err(TableError::CapacityExceeded { capacity: 0 })
        );
    }

    #[test]
    fn lpm_longest_prefix_wins_and_full_width_is_exact() {
        let mut t = RtTable::new(8);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![8]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0a0b_0000, 16, vec![16]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0a0b_0c0d, 32, vec![32]), Ok(vec![]));
        assert_eq!(t.lookup(&[0x0a0b_0c0d], false), Some(vec![32]));
        assert_eq!(t.lookup(&[0x0a0b_ffff], false), Some(vec![16]));
        assert_eq!(t.lookup(&[0x0aff_ffff], false), Some(vec![8]));
        assert_eq!(t.lookup(&[0x0bff_ffff], false), None);
    }

    #[test]
    fn cache_reinsert_does_not_duplicate_order_slot() {
        // Regression: a key's FIFO position is fixed at its *first* insert.
        // Re-inserting (overwriting) it must neither refresh nor duplicate
        // its slot in the eviction order queue.
        let mut t = RtTable::new(8);
        t.make_cache(2);
        assert_eq!(t.insert_main(vec![10], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![20], vec![2]), Ok(vec![]));
        // Overwrite the oldest key twice; its order slot must not move.
        assert_eq!(t.insert_main(vec![10], vec![11]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![10], vec![12]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        // Next distinct key evicts 10 (first-insert order), not 20.
        assert_eq!(t.insert_main(vec![30], vec![3]), Ok(vec![vec![10]]));
        // And the following one evicts exactly 20 — if the overwrite had
        // duplicated 10's slot, a stale queue entry would surface here.
        assert_eq!(t.insert_main(vec![40], vec![4]), Ok(vec![vec![20]]));
        assert_eq!(t.insert_main(vec![50], vec![5]), Ok(vec![vec![30]]));
        assert_eq!(t.lookup(&[40], false), Some(vec![4]));
        assert_eq!(t.lookup(&[50], false), Some(vec![5]));
        assert_eq!(t.stats.evictions.get(), 3);
    }

    #[test]
    fn table_key_inline_and_spilled_agree_with_slices() {
        use std::collections::hash_map::DefaultHasher;

        let narrow = TableKey::from(vec![1, 2, 3]);
        assert!(matches!(narrow, TableKey::Inline { len: 3, .. }));
        let wide = TableKey::from(vec![1, 2, 3, 4, 5, 6]);
        assert!(matches!(wide, TableKey::Spilled(_)));
        assert_eq!(narrow.as_slice(), &[1, 2, 3]);
        assert_eq!(wide.as_slice(), &[1, 2, 3, 4, 5, 6]);
        assert!(!narrow.is_empty());
        assert_eq!(TableKey::from(vec![]).len(), 0);

        // Hash must agree with `<[u64] as Hash>` (the Borrow contract).
        for key in [narrow, wide] {
            let mut a = DefaultHasher::new();
            key.hash(&mut a);
            let mut b = DefaultHasher::new();
            key.as_slice().hash(&mut b);
            assert_eq!(a.finish(), b.finish());
        }

        // Padding words beyond `len` never leak into equality.
        let k2 = TableKey::from(vec![1, 2]);
        let k3 = TableKey::from(vec![1, 2, 0]);
        assert_ne!(k2, k3);
    }

    #[test]
    fn key_buf_spills_past_inline_capacity() {
        let mut kb = KeyBuf::new();
        for w in 0..3u64 {
            kb.push(w);
        }
        assert_eq!(kb.as_slice(), &[0, 1, 2]);
        kb.clear();
        for w in 0..7u64 {
            kb.push(w);
        }
        assert_eq!(kb.as_slice(), &[0, 1, 2, 3, 4, 5, 6]);
        // Clearing after a spill returns to the inline path.
        kb.clear();
        kb.push(9);
        assert_eq!(kb.as_slice(), &[9]);
    }

    #[test]
    fn wide_keys_round_trip_through_table() {
        // Keys wider than INLINE_KEY_WORDS take the Spilled fallback but
        // behave identically.
        let mut t = RtTable::new(4);
        let k = vec![1u64, 2, 3, 4, 5, 6];
        t.insert_main(k.clone(), vec![42]).unwrap();
        assert_eq!(t.lookup(&k, false), Some(vec![42]));
        assert_eq!(t.entries(), vec![(k.clone(), vec![42])]);
        t.stage(k.clone(), None);
        assert_eq!(t.lookup(&k, true), None);
        t.delete_main(&k);
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_insert_canonicalizes_prefix() {
        // Regression: the prefix used to be stored raw, so two spellings
        // of the same effective prefix coexisted and the stale first
        // install kept winning lookups.
        let mut t = RtTable::new(8);
        t.make_lpm(8);
        assert_eq!(t.lpm_insert(0xFF, 4, vec![1]), Ok(vec![]));
        // Same effective prefix (0xF0/4): must replace, not coexist.
        assert_eq!(t.lpm_insert(0xF0, 4, vec![2]), Ok(vec![]));
        assert_eq!(t.lookup(&[0xFF], false), Some(vec![2]));
        assert_eq!(t.lookup(&[0xF3], false), Some(vec![2]));
        // Exactly one entry occupies capacity: a table of capacity 2 still
        // has room for one more prefix.
        let mut small = RtTable::new(2);
        small.make_lpm(8);
        small.lpm_insert(0xFF, 4, vec![1]).unwrap();
        small.lpm_insert(0xF0, 4, vec![2]).unwrap();
        assert_eq!(small.lpm_insert(0x0F, 4, vec![3]), Ok(vec![]));
        // The canonical form is what eviction accounting reports.
        let mut c = RtTable::new(8);
        c.make_cache(1);
        c.make_lpm(8);
        c.lpm_insert(0xFF, 4, vec![1]).unwrap();
        assert_eq!(c.lpm_insert(0x0F, 4, vec![2]), Ok(vec![(0xF0, 4)]));
    }

    #[test]
    fn delete_main_drops_staged_shadow_entry() {
        // Regression: a staged update surviving `delete_main` would keep
        // serving the key while the write-back bit is set and resurrect it
        // when the commit folds the shadow into main.
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], Some(vec![99]));
        t.delete_main(&[1]);
        assert_eq!(t.lookup(&[1], false), None);
        assert_eq!(t.lookup(&[1], true), None);
        assert_eq!(t.shadow_len(), 0);
        // A commit-style drain has nothing to replay for the deleted key.
        assert!(t.drain_shadow().is_empty());
        // Unrelated staged entries survive the delete.
        let mut u = RtTable::new(8);
        u.stage(vec![1], Some(vec![11]));
        u.stage(vec![2], Some(vec![22]));
        u.delete_main(&[1]);
        assert_eq!(u.lookup(&[2], true), Some(vec![22]));
        assert_eq!(u.shadow_len(), 1);
    }

    #[test]
    fn lpm_zero_capacity_cache_rejects_without_mutating() {
        // Regression: the degenerate capacity used to be checked *after*
        // the eviction drain, so a cache shrunk to zero capacity lost all
        // resident entries (and the evicted list, and the eviction stats)
        // on the next insert — which still failed.
        let mut t = RtTable::new(8);
        t.make_lpm(32);
        t.lpm_insert(0x0a00_0000, 8, vec![1]).unwrap();
        t.lpm_insert(0x0b00_0000, 8, vec![2]).unwrap();
        t.make_cache(0);
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Err(TableError::CapacityExceeded { capacity: 0 })
        );
        // The resident entries are untouched and nothing was "evicted".
        assert_eq!(t.lookup(&[0x0a01_0203], false), Some(vec![1]));
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![2]));
        assert_eq!(t.stats.evictions.get(), 0);
    }

    #[test]
    fn layout_serves_lookups_and_rebuilds_on_mutation() {
        let mut t = RtTable::new(1 << 12);
        assert!(t.layout_active());
        for i in 0..200u64 {
            t.insert_main(vec![i, i + 1], vec![i * 10]).unwrap();
        }
        t.flush_layout();
        assert_eq!(t.pending_delta(), 0);
        let probes_before = t.stats.probes.get();
        for i in 0..200u64 {
            assert_eq!(t.lookup(&[i, i + 1], false), Some(vec![i * 10]));
        }
        assert_eq!(t.lookup(&[999, 999], false), None);
        assert_eq!(t.stats.probes.get() - probes_before, 201);
        assert!(t.stats.rebuilds.get() > 0);

        // Mutations are visible immediately through the delta overlay…
        t.insert_main(vec![7, 8], vec![777]).unwrap();
        t.delete_main(&[3, 4]);
        assert!(t.pending_delta() > 0);
        assert_eq!(t.lookup(&[7, 8], false), Some(vec![777]));
        assert_eq!(t.lookup(&[3, 4], false), None);
        // …and survive the flush-time rebuild bit-identically.
        t.flush_layout();
        assert_eq!(t.pending_delta(), 0);
        assert_eq!(t.lookup(&[7, 8], false), Some(vec![777]));
        assert_eq!(t.lookup(&[3, 4], false), None);
        assert_eq!(t.lookup(&[5, 6], false), Some(vec![50]));
        // `flush_layout` with no outstanding mutation is a no-op.
        let rebuilds = t.stats.rebuilds.get();
        t.flush_layout();
        assert_eq!(t.stats.rebuilds.get(), rebuilds);
    }

    #[test]
    fn spilled_keys_fall_back_to_map_serving() {
        let mut t = RtTable::new(16);
        t.insert_main(vec![1], vec![10]).unwrap();
        assert!(t.layout_active());
        let wide = vec![1u64, 2, 3, 4, 5, 6];
        t.insert_main(wide.clone(), vec![42]).unwrap();
        assert!(!t.layout_active());
        assert_eq!(t.lookup(&wide, false), Some(vec![42]));
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        t.flush_layout();
        assert!(!t.layout_active());
        // Deleting the spilled key lets the next flush restore the layout.
        t.delete_main(&wide);
        t.flush_layout();
        assert!(t.layout_active());
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        assert_eq!(t.lookup(&wide, false), None);
    }

    #[test]
    fn layout_respects_shadow_and_tombstones() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.flush_layout();
        t.stage(vec![1], None);
        t.stage(vec![2], Some(vec![20]));
        assert_eq!(t.lookup(&[1], true), None);
        assert_eq!(t.lookup(&[2], true), Some(vec![20]));
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        assert_eq!(t.lookup(&[2], false), None);
    }

    #[test]
    fn layout_distinguishes_prefix_keys_and_empty_values() {
        // `[1]` vs `[1, 0]` differ only in length; an empty value is a hit
        // that must not read as a miss.
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.insert_main(vec![1, 0], vec![20]).unwrap();
        t.insert_main(vec![], vec![]).unwrap();
        t.flush_layout();
        assert!(t.layout_active());
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        assert_eq!(t.lookup(&[1, 0], false), Some(vec![20]));
        assert_eq!(t.lookup(&[], false), Some(vec![]));
        assert_eq!(t.lookup(&[0, 1], false), None);
    }

    #[test]
    fn drain_shadow_empties_it() {
        let mut t = RtTable::new(8);
        t.stage(vec![1], Some(vec![1]));
        t.stage(vec![2], None);
        let mut drained = t.drain_shadow();
        drained.sort();
        assert_eq!(drained.len(), 2);
        assert_eq!(t.shadow_len(), 0);
    }
}
