//! Runtime match-action tables with write-back shadows (§4.3.3).

use gallium_telemetry::Counter;
use std::collections::{HashMap, VecDeque};

/// Per-table runtime counters.
///
/// Counters are relaxed atomics so the data-plane [`RtTable::lookup`]
/// (which takes `&self`) can bump them without locks or allocation.
/// Cloning a table snapshots the counter values.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Data-plane lookups that matched an entry.
    pub hits: Counter,
    /// Data-plane lookups that missed.
    pub misses: Counter,
    /// Entries displaced by cache-mode FIFO replacement (§7).
    pub evictions: Counter,
}

/// Why a table rejected a control-plane mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// An LPM operation was issued against an exact-match table.
    NotLpm,
    /// The prefix length exceeds the table's key width.
    PrefixTooLong {
        /// Requested prefix length in bits.
        len: u8,
        /// The table's key width in bits.
        key_width: u8,
    },
    /// The table is full and not in cache (evicting) mode.
    CapacityExceeded {
        /// Configured capacity in entries.
        capacity: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::NotLpm => write!(f, "LPM operation on exact-match table"),
            TableError::PrefixTooLong { len, key_width } => {
                write!(f, "prefix length {len} exceeds key width {key_width}")
            }
            TableError::CapacityExceeded { capacity } => {
                write!(f, "table full ({capacity} entries)")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// One exact-match table plus its write-back shadow.
///
/// The shadow holds *staged* updates: `Some(value)` overrides the main
/// table, `None` is a tombstone that negates it. Lookups consult the shadow
/// only while the switch-global write-back bit is set — flipping that bit
/// is the single atomic operation that makes a whole batch of updates
/// visible at once.
#[derive(Debug, Clone, Default)]
pub struct RtTable {
    main: HashMap<Vec<u64>, Vec<u64>>,
    shadow: HashMap<Vec<u64>, Option<Vec<u64>>>,
    capacity: usize,
    /// FIFO eviction on insert-at-capacity (cache mode, §7 extension).
    evict_fifo: bool,
    order: VecDeque<Vec<u64>>,
    /// Longest-prefix-match mode (§7 extension): `(prefix, len, value)`
    /// entries and the key width. Exact lookups are bypassed.
    lpm: Option<(u8, Vec<LpmEntry>)>,
    /// Hit/miss/eviction counters.
    pub stats: TableStats,
}

/// One LPM entry: `(prefix, prefix_len, value)`.
type LpmEntry = (u64, u8, Vec<u64>);

impl RtTable {
    /// Empty table sized to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RtTable {
            main: HashMap::new(),
            shadow: HashMap::new(),
            capacity,
            evict_fifo: false,
            order: VecDeque::new(),
            lpm: None,
            stats: TableStats::default(),
        }
    }

    /// Switch the table into longest-prefix-match mode with the given key
    /// width.
    pub fn make_lpm(&mut self, key_width: u8) {
        self.lpm = Some((key_width, Vec::new()));
    }

    /// Install an LPM entry (control plane).
    ///
    /// Replaces an existing entry with the same `(prefix, len)`. At
    /// capacity, cache-mode tables evict their oldest entry (FIFO, same
    /// policy as [`RtTable::insert_main`]) and report the displaced
    /// `(prefix, len)` pairs back to the caller so the control plane can
    /// track what fell out of the cache; ordinary tables reject the
    /// insert with a typed error. Prefixes longer than the key width are
    /// rejected outright — they could never match consistently.
    pub fn lpm_insert(
        &mut self,
        prefix: u64,
        len: u8,
        value: Vec<u64>,
    ) -> Result<Vec<(u64, u8)>, TableError> {
        let capacity = self.capacity;
        let evict = self.evict_fifo;
        let Some((key_width, entries)) = &mut self.lpm else {
            return Err(TableError::NotLpm);
        };
        if len > *key_width {
            return Err(TableError::PrefixTooLong {
                len,
                key_width: *key_width,
            });
        }
        entries.retain(|(p, l, _)| !(*p == prefix && *l == len));
        let mut evicted = Vec::new();
        if entries.len() >= capacity {
            if !evict {
                return Err(TableError::CapacityExceeded { capacity });
            }
            // Cache mode: drop the oldest installed entries until one slot
            // frees up (entries are kept in installation order).
            while entries.len() >= capacity && !entries.is_empty() {
                let (p, l, _) = entries.remove(0);
                evicted.push((p, l));
            }
            if entries.len() >= capacity {
                return Err(TableError::CapacityExceeded { capacity }); // capacity 0
            }
        }
        entries.push((prefix, len, value));
        self.stats.evictions.add(evicted.len() as u64);
        Ok(evicted)
    }

    /// Turn the table into a FIFO-evicting cache of `capacity` entries
    /// (the §7 "reducing memory usage" extension).
    pub fn make_cache(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_fifo = true;
    }

    /// Is this table operating as a cache?
    pub fn is_cache(&self) -> bool {
        self.evict_fifo
    }

    /// Data-plane lookup. `wb_active` is the global visibility bit.
    ///
    /// Returns an owned copy of the value — the control-plane-friendly
    /// variant. The packet hot path uses [`RtTable::lookup_ref`] instead,
    /// which borrows the stored value and never allocates.
    pub fn lookup(&self, key: &[u64], wb_active: bool) -> Option<Vec<u64>> {
        self.lookup_ref(key, wb_active).map(<[u64]>::to_vec)
    }

    /// Data-plane lookup returning a *borrowed* value slice.
    ///
    /// Identical match semantics (LPM best-match, write-back shadow,
    /// tombstones) and identical hit/miss accounting as
    /// [`RtTable::lookup`], but without cloning the value per hit — this
    /// is what the compiled execution plan calls per packet.
    pub fn lookup_ref(&self, key: &[u64], wb_active: bool) -> Option<&[u64]> {
        let result = self.lookup_inner(key, wb_active);
        if result.is_some() {
            self.stats.hits.inc();
        } else {
            self.stats.misses.inc();
        }
        result
    }

    fn lookup_inner(&self, key: &[u64], wb_active: bool) -> Option<&[u64]> {
        if let Some((key_width, entries)) = &self.lpm {
            let k = key.first().copied().unwrap_or(0);
            let mut best: Option<(u8, &[u64])> = None;
            for (prefix, len, value) in entries {
                let matches = if *len == 0 {
                    true
                } else if *len > *key_width {
                    // Over-long prefixes are rejected at insert; treat any
                    // legacy entry as unmatchable rather than letting the
                    // shift saturate to 0 and match everything.
                    false
                } else {
                    let shift = key_width - len;
                    (k >> shift) == (*prefix >> shift)
                };
                if matches && best.map(|(bl, _)| *len > bl).unwrap_or(true) {
                    best = Some((*len, value.as_slice()));
                }
            }
            return best.map(|(_, v)| v);
        }
        if wb_active {
            if let Some(staged) = self.shadow.get(key) {
                return staged.as_deref();
            }
        }
        self.main.get(key).map(Vec::as_slice)
    }

    /// Control-plane insert/overwrite into the main table. When the table
    /// is full: caches evict their oldest entry (FIFO) and return the
    /// displaced keys so the control plane can track what fell out;
    /// ordinary tables reject the insert with a typed error.
    pub fn insert_main(
        &mut self,
        key: Vec<u64>,
        value: Vec<u64>,
    ) -> Result<Vec<Vec<u64>>, TableError> {
        let mut evicted = Vec::new();
        if !self.main.contains_key(&key) && self.main.len() >= self.capacity {
            if !self.evict_fifo {
                return Err(TableError::CapacityExceeded {
                    capacity: self.capacity,
                });
            }
            while self.main.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.main.remove(&old);
                        evicted.push(old);
                    }
                    None => {
                        return Err(TableError::CapacityExceeded {
                            capacity: self.capacity,
                        }); // capacity 0
                    }
                }
            }
        }
        if self.evict_fifo && !self.main.contains_key(&key) {
            self.order.push_back(key.clone());
        }
        self.main.insert(key, value);
        self.stats.evictions.add(evicted.len() as u64);
        Ok(evicted)
    }

    /// Control-plane delete from the main table.
    pub fn delete_main(&mut self, key: &[u64]) {
        self.main.remove(key);
        if self.evict_fifo {
            self.order.retain(|k| k != key);
        }
    }

    /// Stage an update (or a `None` tombstone) in the shadow.
    pub fn stage(&mut self, key: Vec<u64>, value: Option<Vec<u64>>) {
        self.shadow.insert(key, value);
    }

    /// Drain the shadow, returning the staged updates (used when folding
    /// them into the main table).
    pub fn drain_shadow(&mut self) -> Vec<(Vec<u64>, Option<Vec<u64>>)> {
        self.shadow.drain().collect()
    }

    /// Snapshot of the main entries (sorted by key for determinism).
    pub fn entries(&self) -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut v: Vec<_> = self
            .main
            .iter()
            .map(|(k, val)| (k.clone(), val.clone()))
            .collect();
        v.sort();
        v
    }

    /// Number of main entries.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// True when the main table is empty.
    pub fn is_empty(&self) -> bool {
        self.main.is_empty()
    }

    /// Number of staged (shadow) entries.
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_ignores_shadow_when_bit_clear() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], Some(vec![99]));
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        assert_eq!(t.lookup(&[1], true), Some(vec![99]));
    }

    #[test]
    fn tombstone_negates_main() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], None);
        assert_eq!(t.lookup(&[1], true), None);
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
    }

    #[test]
    fn shadow_provides_new_entries() {
        let mut t = RtTable::new(8);
        t.stage(vec![7], Some(vec![70]));
        assert_eq!(t.lookup(&[7], true), Some(vec![70]));
        assert_eq!(t.lookup(&[7], false), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = RtTable::new(2);
        assert_eq!(t.insert_main(vec![1], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![2], vec![2]), Ok(vec![]));
        assert_eq!(
            t.insert_main(vec![3], vec![3]),
            Err(TableError::CapacityExceeded { capacity: 2 })
        );
        // Overwriting an existing key is allowed at capacity.
        assert_eq!(t.insert_main(vec![2], vec![22]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evictions.get(), 0);
    }

    #[test]
    fn cache_evicts_fifo() {
        let mut t = RtTable::new(8);
        t.make_cache(2);
        assert_eq!(t.insert_main(vec![1], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![2], vec![2]), Ok(vec![]));
        // Evicts key 1 — the displaced key comes back to the caller.
        assert_eq!(t.insert_main(vec![3], vec![3]), Ok(vec![vec![1]]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evictions.get(), 1);
        assert_eq!(t.lookup(&[1], false), None);
        assert_eq!(t.lookup(&[2], false), Some(vec![2]));
        assert_eq!(t.lookup(&[3], false), Some(vec![3]));
        // Overwrite does not evict.
        assert_eq!(t.insert_main(vec![2], vec![22]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        // Deleting keeps the order queue consistent.
        t.delete_main(&[2]);
        assert_eq!(t.insert_main(vec![4], vec![4]), Ok(vec![]));
        // Evicts 3, not the already-deleted 2.
        assert_eq!(t.insert_main(vec![5], vec![5]), Ok(vec![vec![3]]));
        assert_eq!(t.lookup(&[3], false), None);
        assert_eq!(t.lookup(&[4], false), Some(vec![4]));
        assert_eq!(t.stats.evictions.get(), 2);
    }

    #[test]
    fn lookup_ref_agrees_with_owned_lookup() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10, 11]).unwrap();
        t.stage(vec![2], Some(vec![20]));
        t.stage(vec![1], None);
        for (key, wb) in [(1u64, false), (1, true), (2, false), (2, true), (3, false)] {
            assert_eq!(
                t.lookup_ref(&[key], wb).map(<[u64]>::to_vec),
                t.lookup(&[key], wb),
                "key {key} wb {wb}"
            );
        }
        // Both variants bump the same counters (5 keys probed twice each).
        assert_eq!(t.stats.hits.get() + t.stats.misses.get(), 10);

        let mut l = RtTable::new(8);
        l.make_lpm(32);
        l.lpm_insert(0x0a00_0000, 8, vec![8]).unwrap();
        l.lpm_insert(0x0a0b_0000, 16, vec![16]).unwrap();
        for probe in [0x0a0b_0c0du64, 0x0aff_0000, 0x0c00_0000] {
            assert_eq!(
                l.lookup_ref(&[probe], false).map(<[u64]>::to_vec),
                l.lookup(&[probe], false)
            );
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        assert!(t.lookup(&[1], false).is_some());
        assert!(t.lookup(&[2], false).is_none());
        assert!(t.lookup(&[1], false).is_some());
        assert_eq!(t.stats.hits.get(), 2);
        assert_eq!(t.stats.misses.get(), 1);
        // Cloning snapshots the counters independently.
        let snap = t.clone();
        t.lookup(&[1], false);
        assert_eq!(snap.stats.hits.get(), 2);
        assert_eq!(t.stats.hits.get(), 3);
    }

    #[test]
    fn lpm_insert_rejects_on_exact_match_table() {
        let mut t = RtTable::new(4);
        assert_eq!(t.lpm_insert(0, 8, vec![1]), Err(TableError::NotLpm));
    }

    #[test]
    fn lpm_insert_rejects_over_long_prefix() {
        let mut t = RtTable::new(4);
        t.make_lpm(32);
        assert_eq!(
            t.lpm_insert(0, 40, vec![1]),
            Err(TableError::PrefixTooLong {
                len: 40,
                key_width: 32
            })
        );
        // A rejected entry must not have been installed.
        assert_eq!(t.lookup(&[123], false), None);
    }

    #[test]
    fn lpm_insert_rejects_at_capacity_without_cache_mode() {
        let mut t = RtTable::new(2);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![1]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![2]), Ok(vec![]));
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Err(TableError::CapacityExceeded { capacity: 2 })
        );
        // Re-inserting an existing (prefix, len) overwrites in place.
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![22]), Ok(vec![]));
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![22]));
    }

    #[test]
    fn lpm_cache_mode_evicts_oldest() {
        let mut t = RtTable::new(8);
        t.make_cache(2);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![1]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![2]), Ok(vec![]));
        // Evicts 0x0a/8 and reports it.
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Ok(vec![(0x0a00_0000, 8)])
        );
        assert_eq!(t.stats.evictions.get(), 1);
        assert_eq!(t.lookup(&[0x0a01_0203], false), None);
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![2]));
        assert_eq!(t.lookup(&[0x0c01_0203], false), Some(vec![3]));
    }

    #[test]
    fn lpm_zero_capacity_cache_rejects() {
        let mut t = RtTable::new(0);
        t.make_cache(0);
        t.make_lpm(32);
        assert_eq!(
            t.lpm_insert(0, 8, vec![1]),
            Err(TableError::CapacityExceeded { capacity: 0 })
        );
    }

    #[test]
    fn lpm_longest_prefix_wins_and_full_width_is_exact() {
        let mut t = RtTable::new(8);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![8]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0a0b_0000, 16, vec![16]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0a0b_0c0d, 32, vec![32]), Ok(vec![]));
        assert_eq!(t.lookup(&[0x0a0b_0c0d], false), Some(vec![32]));
        assert_eq!(t.lookup(&[0x0a0b_ffff], false), Some(vec![16]));
        assert_eq!(t.lookup(&[0x0aff_ffff], false), Some(vec![8]));
        assert_eq!(t.lookup(&[0x0bff_ffff], false), None);
    }

    #[test]
    fn drain_shadow_empties_it() {
        let mut t = RtTable::new(8);
        t.stage(vec![1], Some(vec![1]));
        t.stage(vec![2], None);
        let mut drained = t.drain_shadow();
        drained.sort();
        assert_eq!(drained.len(), 2);
        assert_eq!(t.shadow_len(), 0);
    }
}
