//! Runtime match-action tables with write-back shadows (§4.3.3).

use crate::fasthash::FastBuildHasher;
use gallium_telemetry::Counter;
use std::borrow::Borrow;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Number of key words a [`TableKey`] stores inline (without heap
/// indirection). RMT-style hardware matches on fixed-width keys; four
/// 64-bit words cover every packaged middlebox (the widest key, a
/// five-tuple, packs into 5×≤32-bit fields lowered to ≤4 words).
pub const INLINE_KEY_WORDS: usize = 4;

/// A match key stored inline — the software analogue of a fixed-width
/// RMT match key.
///
/// Keys of up to [`INLINE_KEY_WORDS`] words (every packaged middlebox)
/// live directly in the enum with no heap allocation; wider keys take the
/// typed `Spilled` fallback. Equality and hashing are defined over
/// [`TableKey::as_slice`], and `TableKey: Borrow<[u64]>`, so a
/// `HashMap<TableKey, V>` can be probed with a plain `&[u64]` — the data
/// plane never materializes a key to look one up.
#[derive(Debug, Clone)]
pub enum TableKey {
    /// Up to [`INLINE_KEY_WORDS`] words stored in place.
    Inline {
        /// Number of meaningful words in `words`.
        len: u8,
        /// The key words; entries at index ≥ `len` are zero padding.
        words: [u64; INLINE_KEY_WORDS],
    },
    /// Typed fallback for keys wider than [`INLINE_KEY_WORDS`] words.
    Spilled(Box<[u64]>),
}

impl TableKey {
    /// The key words as a slice (only the meaningful prefix for inline
    /// keys).
    pub fn as_slice(&self) -> &[u64] {
        match self {
            TableKey::Inline { len, words } => &words[..usize::from(*len)],
            TableKey::Spilled(words) => words,
        }
    }

    /// Number of key words.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for the zero-width key.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Owned copy of the key words.
    pub fn to_vec(&self) -> Vec<u64> {
        self.as_slice().to_vec()
    }
}

impl From<&[u64]> for TableKey {
    fn from(slice: &[u64]) -> Self {
        if slice.len() <= INLINE_KEY_WORDS {
            let mut words = [0u64; INLINE_KEY_WORDS];
            words[..slice.len()].copy_from_slice(slice);
            TableKey::Inline {
                len: slice.len() as u8,
                words,
            }
        } else {
            TableKey::Spilled(slice.into())
        }
    }
}

impl From<Vec<u64>> for TableKey {
    fn from(v: Vec<u64>) -> Self {
        if v.len() <= INLINE_KEY_WORDS {
            TableKey::from(v.as_slice())
        } else {
            TableKey::Spilled(v.into_boxed_slice())
        }
    }
}

impl PartialEq for TableKey {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TableKey::Inline { len: la, words: wa }, TableKey::Inline { len: lb, words: wb }) => {
                // Branchless word-parallel compare: XOR-accumulate the
                // difference across all four lanes, masking each lane by
                // whether it is live (index < len). Lane masking — rather
                // than trusting the zero-padding invariant — keeps the
                // compare correct even for hand-built keys, and matches
                // `as_slice()` equality exactly.
                let mut acc = u64::from(la ^ lb);
                let len = usize::from(*la);
                for i in 0..INLINE_KEY_WORDS {
                    acc |= (wa[i] ^ wb[i]) & u64::from(i < len).wrapping_neg();
                }
                acc == 0
            }
            _ => self.as_slice() == other.as_slice(),
        }
    }
}

impl Eq for TableKey {}

impl Hash for TableKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `<[u64] as Hash>` so `Borrow<[u64]>` probes hash
        // to the same bucket.
        self.as_slice().hash(state);
    }
}

impl Borrow<[u64]> for TableKey {
    fn borrow(&self) -> &[u64] {
        self.as_slice()
    }
}

impl PartialOrd for TableKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TableKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// Reusable key-assembly buffer for the packet hot path.
///
/// The compiled plan evaluates key expressions into this buffer before
/// probing a table. Words accumulate into a fixed inline array; keys wider
/// than [`INLINE_KEY_WORDS`] spill into a `Vec` that is retained (and its
/// capacity reused) across packets, so steady-state key assembly never
/// allocates regardless of width.
#[derive(Debug, Clone, Default)]
pub struct KeyBuf {
    len: usize,
    words: [u64; INLINE_KEY_WORDS],
    spill: Vec<u64>,
}

impl KeyBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        KeyBuf::default()
    }

    /// Reset for the next key (spill capacity is retained).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Append one key word.
    pub fn push(&mut self, word: u64) {
        if self.spill.is_empty() && self.len < INLINE_KEY_WORDS {
            self.words[self.len] = word;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                // First word past the inline capacity: migrate what we have.
                self.spill.extend_from_slice(&self.words[..self.len]);
            }
            self.spill.push(word);
        }
    }

    /// The assembled key words.
    pub fn as_slice(&self) -> &[u64] {
        if self.spill.is_empty() {
            &self.words[..self.len]
        } else {
            &self.spill
        }
    }
}

/// Per-table runtime counters.
///
/// Counters are relaxed atomics so the data-plane [`RtTable::lookup`]
/// (which takes `&self`) can bump them without locks or allocation.
/// Cloning a table snapshots the counter values.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Data-plane lookups that matched an entry.
    pub hits: Counter,
    /// Data-plane lookups that missed.
    pub misses: Counter,
    /// Entries displaced by cache-mode FIFO replacement (§7).
    pub evictions: Counter,
}

/// Why a table rejected a control-plane mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// An LPM operation was issued against an exact-match table.
    NotLpm,
    /// The prefix length exceeds the table's key width.
    PrefixTooLong {
        /// Requested prefix length in bits.
        len: u8,
        /// The table's key width in bits.
        key_width: u8,
    },
    /// The table is full and not in cache (evicting) mode.
    CapacityExceeded {
        /// Configured capacity in entries.
        capacity: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::NotLpm => write!(f, "LPM operation on exact-match table"),
            TableError::PrefixTooLong { len, key_width } => {
                write!(f, "prefix length {len} exceeds key width {key_width}")
            }
            TableError::CapacityExceeded { capacity } => {
                write!(f, "table full ({capacity} entries)")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// One exact-match table plus its write-back shadow.
///
/// The shadow holds *staged* updates: `Some(value)` overrides the main
/// table, `None` is a tombstone that negates it. Lookups consult the shadow
/// only while the switch-global write-back bit is set — flipping that bit
/// is the single atomic operation that makes a whole batch of updates
/// visible at once.
#[derive(Debug, Clone, Default)]
pub struct RtTable {
    main: HashMap<TableKey, Vec<u64>, FastBuildHasher>,
    shadow: HashMap<TableKey, Option<Vec<u64>>, FastBuildHasher>,
    capacity: usize,
    /// FIFO eviction on insert-at-capacity (cache mode, §7 extension).
    evict_fifo: bool,
    order: VecDeque<TableKey>,
    /// Longest-prefix-match mode (§7 extension): `(prefix, len, value)`
    /// entries and the key width. Exact lookups are bypassed.
    lpm: Option<(u8, Vec<LpmEntry>)>,
    /// Hit/miss/eviction counters.
    pub stats: TableStats,
}

/// One LPM entry: `(prefix, prefix_len, value)`.
type LpmEntry = (u64, u8, Vec<u64>);

impl RtTable {
    /// Empty table sized to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RtTable {
            main: HashMap::default(),
            shadow: HashMap::default(),
            capacity,
            evict_fifo: false,
            order: VecDeque::new(),
            lpm: None,
            stats: TableStats::default(),
        }
    }

    /// Switch the table into longest-prefix-match mode with the given key
    /// width.
    pub fn make_lpm(&mut self, key_width: u8) {
        self.lpm = Some((key_width, Vec::new()));
    }

    /// Install an LPM entry (control plane).
    ///
    /// Replaces an existing entry with the same `(prefix, len)`. At
    /// capacity, cache-mode tables evict their oldest entry (FIFO, same
    /// policy as [`RtTable::insert_main`]) and report the displaced
    /// `(prefix, len)` pairs back to the caller so the control plane can
    /// track what fell out of the cache; ordinary tables reject the
    /// insert with a typed error. Prefixes longer than the key width are
    /// rejected outright — they could never match consistently.
    pub fn lpm_insert(
        &mut self,
        prefix: u64,
        len: u8,
        value: Vec<u64>,
    ) -> Result<Vec<(u64, u8)>, TableError> {
        let capacity = self.capacity;
        let evict = self.evict_fifo;
        let Some((key_width, entries)) = &mut self.lpm else {
            return Err(TableError::NotLpm);
        };
        if len > *key_width {
            return Err(TableError::PrefixTooLong {
                len,
                key_width: *key_width,
            });
        }
        entries.retain(|(p, l, _)| !(*p == prefix && *l == len));
        let mut evicted = Vec::new();
        if entries.len() >= capacity {
            if !evict {
                return Err(TableError::CapacityExceeded { capacity });
            }
            // Cache mode: drop the oldest installed entries until one slot
            // frees up (entries are kept in installation order).
            while entries.len() >= capacity && !entries.is_empty() {
                let (p, l, _) = entries.remove(0);
                evicted.push((p, l));
            }
            if entries.len() >= capacity {
                return Err(TableError::CapacityExceeded { capacity }); // capacity 0
            }
        }
        entries.push((prefix, len, value));
        self.stats.evictions.add(evicted.len() as u64);
        Ok(evicted)
    }

    /// Turn the table into a FIFO-evicting cache of `capacity` entries
    /// (the §7 "reducing memory usage" extension).
    pub fn make_cache(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_fifo = true;
    }

    /// Is this table operating as a cache?
    pub fn is_cache(&self) -> bool {
        self.evict_fifo
    }

    /// Data-plane lookup. `wb_active` is the global visibility bit.
    ///
    /// Returns an owned copy of the value — the control-plane-friendly
    /// variant. The packet hot path uses [`RtTable::lookup_ref`] instead,
    /// which borrows the stored value and never allocates.
    pub fn lookup(&self, key: &[u64], wb_active: bool) -> Option<Vec<u64>> {
        self.lookup_ref(key, wb_active).map(<[u64]>::to_vec)
    }

    /// Data-plane lookup returning a *borrowed* value slice.
    ///
    /// Identical match semantics (LPM best-match, write-back shadow,
    /// tombstones) and identical hit/miss accounting as
    /// [`RtTable::lookup`], but without cloning the value per hit — this
    /// is what the compiled execution plan calls per packet.
    pub fn lookup_ref(&self, key: &[u64], wb_active: bool) -> Option<&[u64]> {
        let result = self.lookup_inner(key, wb_active);
        if result.is_some() {
            self.stats.hits.inc();
        } else {
            self.stats.misses.inc();
        }
        result
    }

    fn lookup_inner(&self, key: &[u64], wb_active: bool) -> Option<&[u64]> {
        if let Some((key_width, entries)) = &self.lpm {
            let k = key.first().copied().unwrap_or(0);
            let mut best: Option<(u8, &[u64])> = None;
            for (prefix, len, value) in entries {
                let matches = if *len == 0 {
                    true
                } else if *len > *key_width {
                    // Over-long prefixes are rejected at insert; treat any
                    // legacy entry as unmatchable rather than letting the
                    // shift saturate to 0 and match everything.
                    false
                } else {
                    let shift = key_width - len;
                    (k >> shift) == (*prefix >> shift)
                };
                if matches && best.map(|(bl, _)| *len > bl).unwrap_or(true) {
                    best = Some((*len, value.as_slice()));
                }
            }
            return best.map(|(_, v)| v);
        }
        // Exact-match probes: keys that fit the inline lanes are rebuilt as
        // a stack-only `TableKey` so the hash map's equality check runs the
        // word-parallel inline compare (hashing still goes through the
        // shared slice `Hash` impl, so buckets agree with `Borrow<[u64]>`
        // probes). Wider keys keep the allocation-free slice probe.
        if key.len() <= INLINE_KEY_WORDS {
            let probe = TableKey::from(key);
            if wb_active {
                if let Some(staged) = self.shadow.get(&probe) {
                    return staged.as_deref();
                }
            }
            return self.main.get(&probe).map(Vec::as_slice);
        }
        if wb_active {
            if let Some(staged) = self.shadow.get(key) {
                return staged.as_deref();
            }
        }
        self.main.get(key).map(Vec::as_slice)
    }

    /// Control-plane insert/overwrite into the main table. When the table
    /// is full: caches evict their oldest entry (FIFO) and return the
    /// displaced keys so the control plane can track what fell out;
    /// ordinary tables reject the insert with a typed error.
    pub fn insert_main(
        &mut self,
        key: Vec<u64>,
        value: Vec<u64>,
    ) -> Result<Vec<Vec<u64>>, TableError> {
        let mut evicted = Vec::new();
        // One containment probe up front: the eviction loop below only runs
        // when `key` is absent and can only displace *other* keys, so the
        // answer cannot change before the insert.
        let present = self.main.contains_key(key.as_slice());
        if !present && self.main.len() >= self.capacity {
            if !self.evict_fifo {
                return Err(TableError::CapacityExceeded {
                    capacity: self.capacity,
                });
            }
            while self.main.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.main.remove(old.as_slice());
                        evicted.push(old.to_vec());
                    }
                    None => {
                        return Err(TableError::CapacityExceeded {
                            capacity: self.capacity,
                        }); // capacity 0
                    }
                }
            }
        }
        let key = TableKey::from(key);
        if self.evict_fifo && !present {
            // FIFO position is fixed at *first* insert: re-inserting or
            // overwriting an existing key must not refresh (or duplicate)
            // its slot in the order queue.
            self.order.push_back(key.clone());
        }
        self.main.insert(key, value);
        self.stats.evictions.add(evicted.len() as u64);
        Ok(evicted)
    }

    /// Control-plane delete from the main table.
    pub fn delete_main(&mut self, key: &[u64]) {
        self.main.remove(key);
        if self.evict_fifo {
            self.order.retain(|k| k.as_slice() != key);
        }
    }

    /// Stage an update (or a `None` tombstone) in the shadow.
    pub fn stage(&mut self, key: Vec<u64>, value: Option<Vec<u64>>) {
        self.shadow.insert(TableKey::from(key), value);
    }

    /// Drain the shadow, returning the staged updates (used when folding
    /// them into the main table).
    pub fn drain_shadow(&mut self) -> Vec<(Vec<u64>, Option<Vec<u64>>)> {
        self.shadow.drain().map(|(k, v)| (k.to_vec(), v)).collect()
    }

    /// Snapshot of the main entries (sorted by key for determinism).
    pub fn entries(&self) -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut v: Vec<_> = self
            .main
            .iter()
            .map(|(k, val)| (k.to_vec(), val.clone()))
            .collect();
        v.sort();
        v
    }

    /// Number of main entries.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// True when the main table is empty.
    pub fn is_empty(&self) -> bool {
        self.main.is_empty()
    }

    /// Number of staged (shadow) entries.
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_ignores_shadow_when_bit_clear() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], Some(vec![99]));
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
        assert_eq!(t.lookup(&[1], true), Some(vec![99]));
    }

    #[test]
    fn tombstone_negates_main() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        t.stage(vec![1], None);
        assert_eq!(t.lookup(&[1], true), None);
        assert_eq!(t.lookup(&[1], false), Some(vec![10]));
    }

    #[test]
    fn shadow_provides_new_entries() {
        let mut t = RtTable::new(8);
        t.stage(vec![7], Some(vec![70]));
        assert_eq!(t.lookup(&[7], true), Some(vec![70]));
        assert_eq!(t.lookup(&[7], false), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = RtTable::new(2);
        assert_eq!(t.insert_main(vec![1], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![2], vec![2]), Ok(vec![]));
        assert_eq!(
            t.insert_main(vec![3], vec![3]),
            Err(TableError::CapacityExceeded { capacity: 2 })
        );
        // Overwriting an existing key is allowed at capacity.
        assert_eq!(t.insert_main(vec![2], vec![22]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evictions.get(), 0);
    }

    #[test]
    fn cache_evicts_fifo() {
        let mut t = RtTable::new(8);
        t.make_cache(2);
        assert_eq!(t.insert_main(vec![1], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![2], vec![2]), Ok(vec![]));
        // Evicts key 1 — the displaced key comes back to the caller.
        assert_eq!(t.insert_main(vec![3], vec![3]), Ok(vec![vec![1]]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evictions.get(), 1);
        assert_eq!(t.lookup(&[1], false), None);
        assert_eq!(t.lookup(&[2], false), Some(vec![2]));
        assert_eq!(t.lookup(&[3], false), Some(vec![3]));
        // Overwrite does not evict.
        assert_eq!(t.insert_main(vec![2], vec![22]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        // Deleting keeps the order queue consistent.
        t.delete_main(&[2]);
        assert_eq!(t.insert_main(vec![4], vec![4]), Ok(vec![]));
        // Evicts 3, not the already-deleted 2.
        assert_eq!(t.insert_main(vec![5], vec![5]), Ok(vec![vec![3]]));
        assert_eq!(t.lookup(&[3], false), None);
        assert_eq!(t.lookup(&[4], false), Some(vec![4]));
        assert_eq!(t.stats.evictions.get(), 2);
    }

    #[test]
    fn lookup_ref_agrees_with_owned_lookup() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10, 11]).unwrap();
        t.stage(vec![2], Some(vec![20]));
        t.stage(vec![1], None);
        for (key, wb) in [(1u64, false), (1, true), (2, false), (2, true), (3, false)] {
            assert_eq!(
                t.lookup_ref(&[key], wb).map(<[u64]>::to_vec),
                t.lookup(&[key], wb),
                "key {key} wb {wb}"
            );
        }
        // Both variants bump the same counters (5 keys probed twice each).
        assert_eq!(t.stats.hits.get() + t.stats.misses.get(), 10);

        let mut l = RtTable::new(8);
        l.make_lpm(32);
        l.lpm_insert(0x0a00_0000, 8, vec![8]).unwrap();
        l.lpm_insert(0x0a0b_0000, 16, vec![16]).unwrap();
        for probe in [0x0a0b_0c0du64, 0x0aff_0000, 0x0c00_0000] {
            assert_eq!(
                l.lookup_ref(&[probe], false).map(<[u64]>::to_vec),
                l.lookup(&[probe], false)
            );
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut t = RtTable::new(8);
        t.insert_main(vec![1], vec![10]).unwrap();
        assert!(t.lookup(&[1], false).is_some());
        assert!(t.lookup(&[2], false).is_none());
        assert!(t.lookup(&[1], false).is_some());
        assert_eq!(t.stats.hits.get(), 2);
        assert_eq!(t.stats.misses.get(), 1);
        // Cloning snapshots the counters independently.
        let snap = t.clone();
        t.lookup(&[1], false);
        assert_eq!(snap.stats.hits.get(), 2);
        assert_eq!(t.stats.hits.get(), 3);
    }

    #[test]
    fn lpm_insert_rejects_on_exact_match_table() {
        let mut t = RtTable::new(4);
        assert_eq!(t.lpm_insert(0, 8, vec![1]), Err(TableError::NotLpm));
    }

    #[test]
    fn lpm_insert_rejects_over_long_prefix() {
        let mut t = RtTable::new(4);
        t.make_lpm(32);
        assert_eq!(
            t.lpm_insert(0, 40, vec![1]),
            Err(TableError::PrefixTooLong {
                len: 40,
                key_width: 32
            })
        );
        // A rejected entry must not have been installed.
        assert_eq!(t.lookup(&[123], false), None);
    }

    #[test]
    fn lpm_insert_rejects_at_capacity_without_cache_mode() {
        let mut t = RtTable::new(2);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![1]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![2]), Ok(vec![]));
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Err(TableError::CapacityExceeded { capacity: 2 })
        );
        // Re-inserting an existing (prefix, len) overwrites in place.
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![22]), Ok(vec![]));
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![22]));
    }

    #[test]
    fn lpm_cache_mode_evicts_oldest() {
        let mut t = RtTable::new(8);
        t.make_cache(2);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![1]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0b00_0000, 8, vec![2]), Ok(vec![]));
        // Evicts 0x0a/8 and reports it.
        assert_eq!(
            t.lpm_insert(0x0c00_0000, 8, vec![3]),
            Ok(vec![(0x0a00_0000, 8)])
        );
        assert_eq!(t.stats.evictions.get(), 1);
        assert_eq!(t.lookup(&[0x0a01_0203], false), None);
        assert_eq!(t.lookup(&[0x0b01_0203], false), Some(vec![2]));
        assert_eq!(t.lookup(&[0x0c01_0203], false), Some(vec![3]));
    }

    #[test]
    fn lpm_zero_capacity_cache_rejects() {
        let mut t = RtTable::new(0);
        t.make_cache(0);
        t.make_lpm(32);
        assert_eq!(
            t.lpm_insert(0, 8, vec![1]),
            Err(TableError::CapacityExceeded { capacity: 0 })
        );
    }

    #[test]
    fn lpm_longest_prefix_wins_and_full_width_is_exact() {
        let mut t = RtTable::new(8);
        t.make_lpm(32);
        assert_eq!(t.lpm_insert(0x0a00_0000, 8, vec![8]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0a0b_0000, 16, vec![16]), Ok(vec![]));
        assert_eq!(t.lpm_insert(0x0a0b_0c0d, 32, vec![32]), Ok(vec![]));
        assert_eq!(t.lookup(&[0x0a0b_0c0d], false), Some(vec![32]));
        assert_eq!(t.lookup(&[0x0a0b_ffff], false), Some(vec![16]));
        assert_eq!(t.lookup(&[0x0aff_ffff], false), Some(vec![8]));
        assert_eq!(t.lookup(&[0x0bff_ffff], false), None);
    }

    #[test]
    fn cache_reinsert_does_not_duplicate_order_slot() {
        // Regression: a key's FIFO position is fixed at its *first* insert.
        // Re-inserting (overwriting) it must neither refresh nor duplicate
        // its slot in the eviction order queue.
        let mut t = RtTable::new(8);
        t.make_cache(2);
        assert_eq!(t.insert_main(vec![10], vec![1]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![20], vec![2]), Ok(vec![]));
        // Overwrite the oldest key twice; its order slot must not move.
        assert_eq!(t.insert_main(vec![10], vec![11]), Ok(vec![]));
        assert_eq!(t.insert_main(vec![10], vec![12]), Ok(vec![]));
        assert_eq!(t.len(), 2);
        // Next distinct key evicts 10 (first-insert order), not 20.
        assert_eq!(t.insert_main(vec![30], vec![3]), Ok(vec![vec![10]]));
        // And the following one evicts exactly 20 — if the overwrite had
        // duplicated 10's slot, a stale queue entry would surface here.
        assert_eq!(t.insert_main(vec![40], vec![4]), Ok(vec![vec![20]]));
        assert_eq!(t.insert_main(vec![50], vec![5]), Ok(vec![vec![30]]));
        assert_eq!(t.lookup(&[40], false), Some(vec![4]));
        assert_eq!(t.lookup(&[50], false), Some(vec![5]));
        assert_eq!(t.stats.evictions.get(), 3);
    }

    #[test]
    fn table_key_inline_and_spilled_agree_with_slices() {
        use std::collections::hash_map::DefaultHasher;

        let narrow = TableKey::from(vec![1, 2, 3]);
        assert!(matches!(narrow, TableKey::Inline { len: 3, .. }));
        let wide = TableKey::from(vec![1, 2, 3, 4, 5, 6]);
        assert!(matches!(wide, TableKey::Spilled(_)));
        assert_eq!(narrow.as_slice(), &[1, 2, 3]);
        assert_eq!(wide.as_slice(), &[1, 2, 3, 4, 5, 6]);
        assert!(!narrow.is_empty());
        assert_eq!(TableKey::from(vec![]).len(), 0);

        // Hash must agree with `<[u64] as Hash>` (the Borrow contract).
        for key in [narrow, wide] {
            let mut a = DefaultHasher::new();
            key.hash(&mut a);
            let mut b = DefaultHasher::new();
            key.as_slice().hash(&mut b);
            assert_eq!(a.finish(), b.finish());
        }

        // Padding words beyond `len` never leak into equality.
        let k2 = TableKey::from(vec![1, 2]);
        let k3 = TableKey::from(vec![1, 2, 0]);
        assert_ne!(k2, k3);
    }

    #[test]
    fn key_buf_spills_past_inline_capacity() {
        let mut kb = KeyBuf::new();
        for w in 0..3u64 {
            kb.push(w);
        }
        assert_eq!(kb.as_slice(), &[0, 1, 2]);
        kb.clear();
        for w in 0..7u64 {
            kb.push(w);
        }
        assert_eq!(kb.as_slice(), &[0, 1, 2, 3, 4, 5, 6]);
        // Clearing after a spill returns to the inline path.
        kb.clear();
        kb.push(9);
        assert_eq!(kb.as_slice(), &[9]);
    }

    #[test]
    fn wide_keys_round_trip_through_table() {
        // Keys wider than INLINE_KEY_WORDS take the Spilled fallback but
        // behave identically.
        let mut t = RtTable::new(4);
        let k = vec![1u64, 2, 3, 4, 5, 6];
        t.insert_main(k.clone(), vec![42]).unwrap();
        assert_eq!(t.lookup(&k, false), Some(vec![42]));
        assert_eq!(t.entries(), vec![(k.clone(), vec![42])]);
        t.stage(k.clone(), None);
        assert_eq!(t.lookup(&k, true), None);
        t.delete_main(&k);
        assert!(t.is_empty());
    }

    #[test]
    fn drain_shadow_empties_it() {
        let mut t = RtTable::new(8);
        t.stage(vec![1], Some(vec![1]));
        t.stage(vec![2], None);
        let mut drained = t.drain_shadow();
        drained.sort();
        assert_eq!(drained.len(), 2);
        assert_eq!(t.shadow_len(), 0);
    }
}
