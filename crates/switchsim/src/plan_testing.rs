//! Miscompile-injection support for the translation-validator test
//! suite. **Not a public API** — this module exists so integration tests
//! can seed realistic compiler bugs into a committed [`ExecPlan`] and
//! assert that [`crate::symcheck::check_plan`] rejects each one with the
//! expected typed error. Every mutation models a distinct optimizer
//! failure mode (wrong fold, dropped mask, stale CSE value, broken
//! fusion, bad jump patch, ...), applied surgically to the committed
//! pools so the rest of the plan stays byte-identical.

use crate::plan::{BranchSrc, ExecPlan, ExprVal, MOp, PlanOp};
use gallium_mir::BinOp;

/// One seeded miscompile, mirroring a realistic optimizer bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip the operator of the first binary micro-op (Add↔Sub).
    SwapBinOp,
    /// Replace the first `MaskR` with a width-preserving no-op, as if
    /// the compiler elided a mask it cannot justify.
    DropMask,
    /// Replace the first mid-stream `LoadMeta` with a copy of the
    /// previous micro-op's result — a stale CSE entry surviving a
    /// clobber.
    StaleCseReuse,
    /// Add one to the first constant-valued metadata store — a wrong
    /// fold result.
    WrongFoldConstant,
    /// Swap the first two key words of the first fused table probe.
    ReorderKeyWord,
    /// Drop the store of a transfer-pinned slot — dead-store
    /// elimination discarding an observable value.
    DeadStorePinned,
    /// Add one to the first unconditional jump target — a bad address
    /// patch.
    OffByOneJump,
    /// Point the first register-sourced branch at a different register
    /// computed in the same run.
    WrongBranchReg,
    /// Bump the prefetch section's probe ip — a stale pipelining
    /// projection surviving an opcode-stream change, so the prefetch
    /// pass would execute the wrong op off the packet path.
    StalePrefetchProbe,
}

/// All seeded mutations, for exhaustive test loops.
pub const ALL_MUTATIONS: [Mutation; 9] = [
    Mutation::SwapBinOp,
    Mutation::DropMask,
    Mutation::StaleCseReuse,
    Mutation::WrongFoldConstant,
    Mutation::ReorderKeyWord,
    Mutation::DeadStorePinned,
    Mutation::OffByOneJump,
    Mutation::WrongBranchReg,
    Mutation::StalePrefetchProbe,
];

/// Apply `m` to the plan's pre traversal. Returns `false` when the plan
/// contains no site the mutation applies to (the caller should treat
/// that as a test-fixture bug, not a pass).
pub fn apply(plan: &mut ExecPlan, m: Mutation) -> bool {
    let tp = &mut plan.pre;
    match m {
        Mutation::SwapBinOp => {
            for op in tp.micro.iter_mut() {
                match op {
                    MOp::BinRR { op, .. } | MOp::BinRI { op, .. } | MOp::BinIR { op, .. } => {
                        *op = if *op == BinOp::Add {
                            BinOp::Sub
                        } else {
                            BinOp::Add
                        };
                        return true;
                    }
                    _ => {}
                }
            }
            false
        }
        Mutation::DropMask => {
            for op in tp.micro.iter_mut() {
                if let MOp::MaskR { dst, a, .. } = *op {
                    *op = MOp::BinRI {
                        op: BinOp::Or,
                        dst,
                        a,
                        imm: 0,
                    };
                    return true;
                }
            }
            false
        }
        Mutation::StaleCseReuse => {
            for i in 1..tp.micro.len() {
                if let MOp::LoadMeta { dst, .. } = tp.micro[i] {
                    let stale = tp.micro[i - 1].dst();
                    if stale == dst {
                        continue;
                    }
                    tp.micro[i] = MOp::BinRI {
                        op: BinOp::Or,
                        dst,
                        a: stale,
                        imm: 0,
                    };
                    return true;
                }
            }
            false
        }
        Mutation::WrongFoldConstant => {
            for st in tp.stores.iter_mut() {
                if let ExprVal::Const(c) = st.src {
                    st.src = ExprVal::Const(c.wrapping_add(1));
                    return true;
                }
            }
            false
        }
        Mutation::ReorderKeyWord => {
            for op in tp.ops.iter() {
                if let PlanOp::BuildKeyProbe { keys, .. } = op {
                    if keys.len >= 2 {
                        let s = keys.start as usize;
                        tp.keys.swap(s, s + 1);
                        return true;
                    }
                }
            }
            false
        }
        Mutation::DeadStorePinned => {
            let pinned = plan.to_server_slots.clone();
            for op in tp.ops.iter_mut() {
                let stores = match op {
                    PlanOp::Eval { stores, .. }
                    | PlanOp::SetHeader { stores, .. }
                    | PlanOp::BuildKeyProbe { stores, .. }
                    | PlanOp::RegWrite { stores, .. }
                    | PlanOp::RegFetchAdd { stores, .. }
                    | PlanOp::Branch { stores, .. } => stores,
                    _ => continue,
                };
                let range = stores.range();
                let hit = tp.stores[range.clone()]
                    .iter()
                    .position(|s| pinned.contains(&s.slot));
                if let Some(j) = hit {
                    let last = range.end - 1;
                    tp.stores.swap(range.start + j, last);
                    stores.len -= 1;
                    return true;
                }
            }
            false
        }
        Mutation::OffByOneJump => {
            for op in tp.ops.iter_mut() {
                if let PlanOp::Jump(t) = op {
                    *t += 1;
                    return true;
                }
            }
            false
        }
        Mutation::WrongBranchReg => {
            for i in 0..tp.ops.len() {
                if let PlanOp::Branch {
                    run,
                    src: BranchSrc::Reg(r),
                    ..
                } = tp.ops[i]
                {
                    let other = tp.micro[run.range()]
                        .iter()
                        .map(|m| m.dst())
                        .find(|d| *d != r);
                    if let Some(d) = other {
                        if let PlanOp::Branch { src, .. } = &mut tp.ops[i] {
                            *src = BranchSrc::Reg(d);
                        }
                        return true;
                    }
                }
            }
            false
        }
        Mutation::StalePrefetchProbe => {
            if let Some(pf) = &mut plan.prefetch {
                pf.probe_ip += 1;
                return true;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::tests::fixture;
    use crate::symcheck::check_plan;

    #[test]
    fn every_mutation_applies_to_the_fixture_and_is_rejected() {
        for m in ALL_MUTATIONS {
            let prog = fixture();
            let mut plan = ExecPlan::build(&prog).expect("builds");
            assert!(apply(&mut plan, m), "mutation {m:?} found no site");
            assert!(
                check_plan(&prog, &plan).is_err(),
                "mutation {m:?} survived validation"
            );
        }
    }
}
