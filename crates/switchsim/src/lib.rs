//! # gallium-switchsim — the programmable-switch simulator
//!
//! A bmv2-class software switch standing in for the paper's Barefoot Tofino.
//! It loads a generated [`gallium_p4::P4Program`], **enforces the abstract
//! resource model at load time** (a program that exceeds table SRAM or
//! pipeline depth fails to load, as on real silicon), and then processes
//! packets through the parser → match-action pipeline → deparser path:
//!
//! * packets from the network run the **pre-processing** traversal;
//!   packets from the server port run **post-processing** (the ingress
//!   dispatch of §4.3.1);
//! * a pre traversal that encounters later-stage work encapsulates the
//!   packet in the synthesized transfer header and forwards it to the
//!   middlebox server — otherwise the packet takes the **fast path** and
//!   never leaves the data plane;
//! * each offloaded table has a **write-back shadow** plus a global
//!   visibility bit implementing the atomic-update protocol of §4.3.3;
//! * the control-plane API ([`Switch::control`]) models the management-CPU
//!   latency the paper measures in Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod fasthash;
pub mod loader;
pub mod plan;
#[doc(hidden)]
pub mod plan_testing;
pub mod switch;
pub mod symcheck;
pub mod table;
pub mod view;

pub use control::{control_op_latency_ns, ControlError, ControlPlane};
pub use fasthash::{FastBuildHasher, FxHasher64};
pub use loader::{load_check, LoadError};
pub use plan::{expr_check, ExecPlan, PlanError, PlanExprStats, PlanOptions};
pub use switch::{
    Switch, SwitchConfig, SwitchStats, FLAG_CACHE_MISS, FLAG_PASSTHROUGH, FLAG_RUN_POST,
};
pub use symcheck::{check_plan, SymCheckError, SymProof};
pub use table::{
    KeyBuf, RtTable, TableCounter, TableError, TableKey, TableStats, INLINE_KEY_WORDS,
};
pub use view::{
    CondSrc, MicroOp, OpView, PlanView, PrefetchView, StoreView, TraversalView, ValRef,
};
