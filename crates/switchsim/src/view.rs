//! Read-only introspection of a compiled [`ExecPlan`].
//!
//! The plan's internal encoding (side pools, packed `PoolRef` ranges)
//! is tuned for the warm path and deliberately private. External static
//! analysis — the abstract interpreter and lint pass in `gallium-verify`
//! — needs to *walk* the committed opcode and micro-op streams without
//! being able to mutate them or depend on the pool layout. This module
//! materializes that walk: [`ExecPlan::view`] produces an owned,
//! self-contained [`PlanView`] in which every pool range is resolved into
//! an inline `Vec`, so a consumer sees exactly what the runtime will
//! execute, opcode by opcode, with no index arithmetic of its own.

use crate::plan::{BranchSrc, ExecPlan, ExprVal, MOp, PlanOp, PoolRef, TraversalPlan};
use gallium_mir::{BinOp, HeaderField};

/// A value operand: a build-time constant or a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValRef {
    /// Immediate folded at build time.
    Const(u64),
    /// Virtual register in the per-packet file.
    Reg(u16),
}

impl From<ExprVal> for ValRef {
    fn from(v: ExprVal) -> Self {
        match v {
            ExprVal::Const(c) => ValRef::Const(c),
            ExprVal::Reg(r) => ValRef::Reg(r),
        }
    }
}

/// One three-address micro-op, mirroring the runtime encoding 1:1.
/// All arithmetic evaluates at width 64 (`BinOp::eval(a, b, 64)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// `dst = meta[slot]`.
    LoadMeta {
        /// Destination register.
        dst: u16,
        /// Metadata slot index.
        slot: u16,
    },
    /// `dst = header[field]`.
    LoadHeader {
        /// Destination register.
        dst: u16,
        /// The packet header field.
        field: HeaderField,
    },
    /// `dst = ingress_port`.
    LoadIngress {
        /// Destination register.
        dst: u16,
    },
    /// `dst = a op b` (register, register).
    BinRR {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `dst = a op imm` (register, immediate).
    BinRI {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right immediate.
        imm: u64,
    },
    /// `dst = imm op b` (immediate, register).
    BinIR {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Left immediate.
        imm: u64,
        /// Right operand register.
        b: u16,
    },
    /// `dst = !a` (bitwise not).
    NotR {
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
    },
    /// `dst = a & ((1 << width) - 1)`.
    MaskR {
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
        /// Mask width in bits (< 64).
        width: u8,
    },
    /// `dst = hash(args, width)`.
    Hash {
        /// Destination register.
        dst: u16,
        /// Hash inputs, in order.
        args: Vec<ValRef>,
        /// Output width in bits.
        width: u8,
    },
}

impl MicroOp {
    /// The destination register this micro-op writes.
    pub fn dst(&self) -> u16 {
        match *self {
            MicroOp::LoadMeta { dst, .. }
            | MicroOp::LoadHeader { dst, .. }
            | MicroOp::LoadIngress { dst }
            | MicroOp::BinRR { dst, .. }
            | MicroOp::BinRI { dst, .. }
            | MicroOp::BinIR { dst, .. }
            | MicroOp::NotR { dst, .. }
            | MicroOp::MaskR { dst, .. }
            | MicroOp::Hash { dst, .. } => dst,
        }
    }
}

/// One surviving metadata store: `meta[slot] = src` after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreView {
    /// Metadata slot index.
    pub slot: u16,
    /// Stored value.
    pub src: ValRef,
}

/// Where a `Branch` reads its condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondSrc {
    /// A virtual register written by the fused run.
    Reg(u16),
    /// A metadata slot (unfused fallback).
    Slot(u16),
}

/// One committed plan opcode with its pool ranges resolved inline.
/// Expression-bearing ops carry the micro-op run executed first (`run`)
/// and the metadata stores applied after it (`stores`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpView {
    /// Run micro-ops and apply stores; no other effect.
    Eval {
        /// Micro-ops to execute.
        run: Vec<MicroOp>,
        /// Stores applied after the run.
        stores: Vec<StoreView>,
    },
    /// Write a packet header field.
    SetHeader {
        /// Micro-ops to execute.
        run: Vec<MicroOp>,
        /// Stores applied after the run.
        stores: Vec<StoreView>,
        /// The header field written.
        field: HeaderField,
        /// The written value.
        out: ValRef,
    },
    /// The fused key-build + table-probe superinstruction.
    BuildKeyProbe {
        /// Micro-ops to execute.
        run: Vec<MicroOp>,
        /// Stores applied after the run.
        stores: Vec<StoreView>,
        /// Table index.
        table: u16,
        /// Key words, in declared key order.
        keys: Vec<ValRef>,
        /// Slot receiving the hit flag.
        hit_slot: u16,
        /// Slots receiving the value words on hit (zeroed on miss).
        vals: Vec<u16>,
    },
    /// Read a stateful register into a metadata slot.
    RegRead {
        /// Stateful register index.
        reg: u16,
        /// Destination metadata slot.
        dst: u16,
    },
    /// Write a stateful register.
    RegWrite {
        /// Micro-ops to execute.
        run: Vec<MicroOp>,
        /// Stores applied after the run.
        stores: Vec<StoreView>,
        /// Stateful register index.
        reg: u16,
        /// The written value (masked to the register width).
        out: ValRef,
    },
    /// Fetch-and-add on a stateful register.
    RegFetchAdd {
        /// Micro-ops to execute.
        run: Vec<MicroOp>,
        /// Stores applied after the run.
        stores: Vec<StoreView>,
        /// Stateful register index.
        reg: u16,
        /// Register width in bits.
        width: u8,
        /// Slot receiving the pre-add value.
        dst: u16,
        /// The delta (unmasked).
        out: ValRef,
    },
    /// Refresh the IP checksum.
    UpdateChecksum,
    /// Emit a copy of the packet.
    EmitCopy,
    /// Mark the packet dropped.
    MarkDrop,
    /// Later-stage work exists: the packet must visit the server.
    Foreign,
    /// Unconditional jump to an opcode index.
    Jump(u32),
    /// Two-way branch on a condition.
    Branch {
        /// Micro-ops to execute.
        run: Vec<MicroOp>,
        /// Stores applied after the run.
        stores: Vec<StoreView>,
        /// Where the condition is read from.
        src: CondSrc,
        /// Target when the condition is nonzero.
        then_ip: u32,
        /// Target when the condition is zero.
        else_ip: u32,
    },
    /// End of traversal.
    Halt,
}

/// Owned view of one traversal's opcode stream.
#[derive(Debug, Clone)]
pub struct TraversalView {
    /// The opcodes, addressable by the targets in `Jump`/`Branch`.
    pub ops: Vec<OpView>,
    /// Entry opcode index.
    pub entry_ip: u32,
    /// First opcode index of each declared node, in node order.
    pub node_ips: Vec<u32>,
}

/// The plan's static prefetch section: the straight-line prefix of the
/// pre traversal that computes the first table key, used by batch
/// software pipelining to warm the next packet's match-table line. The
/// prologue ips index into `PlanView::pre.ops` and resolve to `Eval` /
/// `RegRead` opcodes only; `probe_ip` resolves to the `BuildKeyProbe`
/// whose key the pass builds. Absent when the entry path branches or
/// mutates state before its first probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchView {
    /// Instruction pointers of the pure prologue ops, in execution order.
    pub prologue: Vec<u32>,
    /// Instruction pointer of the probed `BuildKeyProbe`.
    pub probe_ip: u32,
    /// Whether the projection depends on packet bytes and ingress alone
    /// (no `RegRead`, no `Foreign` stepped over) — the precondition for
    /// the batch path to *resume* a primed scratch instead of replaying
    /// the prologue.
    pub pure: bool,
}

/// Owned, self-contained view of a compiled plan.
#[derive(Debug, Clone)]
pub struct PlanView {
    /// Pre-processing traversal (network-facing).
    pub pre: TraversalView,
    /// Post-processing traversal (server-facing).
    pub post: TraversalView,
    /// Static pipelining projection of `pre`, if one exists.
    pub prefetch: Option<PrefetchView>,
    /// Number of interned metadata slots.
    pub n_slots: usize,
    /// Virtual register file size.
    pub n_regs: usize,
    /// Slot index → metadata field name.
    pub slot_names: Vec<String>,
    /// Slots packed into the switch→server transfer header.
    pub to_server_slots: Vec<u16>,
    /// Slots unpacked from the server→switch transfer header.
    pub from_server_slots: Vec<u16>,
}

fn view_run(tp: &TraversalPlan, run: PoolRef) -> Vec<MicroOp> {
    tp.micro[run.range()]
        .iter()
        .map(|m| match *m {
            MOp::LoadMeta { dst, slot } => MicroOp::LoadMeta { dst, slot },
            MOp::LoadHeader { dst, field } => MicroOp::LoadHeader { dst, field },
            MOp::LoadIngress { dst } => MicroOp::LoadIngress { dst },
            MOp::BinRR { op, dst, a, b } => MicroOp::BinRR { op, dst, a, b },
            MOp::BinRI { op, dst, a, imm } => MicroOp::BinRI { op, dst, a, imm },
            MOp::BinIR { op, dst, imm, b } => MicroOp::BinIR { op, dst, imm, b },
            MOp::NotR { dst, a } => MicroOp::NotR { dst, a },
            MOp::MaskR { dst, a, width } => MicroOp::MaskR { dst, a, width },
            MOp::Hash {
                dst,
                args_start,
                args_len,
                width,
            } => MicroOp::Hash {
                dst,
                args: tp.hash_args[PoolRef {
                    start: args_start,
                    len: args_len,
                }
                .range()]
                .iter()
                .map(|v| ValRef::from(*v))
                .collect(),
                width,
            },
        })
        .collect()
}

fn view_stores(tp: &TraversalPlan, stores: PoolRef) -> Vec<StoreView> {
    tp.stores[stores.range()]
        .iter()
        .map(|s| StoreView {
            slot: s.slot,
            src: ValRef::from(s.src),
        })
        .collect()
}

fn view_traversal(tp: &TraversalPlan) -> TraversalView {
    let ops = tp
        .ops
        .iter()
        .map(|op| match *op {
            PlanOp::Eval { run, stores } => OpView::Eval {
                run: view_run(tp, run),
                stores: view_stores(tp, stores),
            },
            PlanOp::SetHeader {
                run,
                stores,
                field,
                out,
            } => OpView::SetHeader {
                run: view_run(tp, run),
                stores: view_stores(tp, stores),
                field,
                out: ValRef::from(out),
            },
            PlanOp::BuildKeyProbe {
                run,
                stores,
                table,
                keys,
                hit_slot,
                vals,
            } => OpView::BuildKeyProbe {
                run: view_run(tp, run),
                stores: view_stores(tp, stores),
                table,
                keys: tp.keys[keys.range()]
                    .iter()
                    .map(|v| ValRef::from(*v))
                    .collect(),
                hit_slot,
                vals: tp.value_slots[vals.range()].to_vec(),
            },
            PlanOp::RegRead { reg, dst } => OpView::RegRead { reg, dst },
            PlanOp::RegWrite {
                run,
                stores,
                reg,
                out,
            } => OpView::RegWrite {
                run: view_run(tp, run),
                stores: view_stores(tp, stores),
                reg,
                out: ValRef::from(out),
            },
            PlanOp::RegFetchAdd {
                run,
                stores,
                reg,
                width,
                dst,
                out,
            } => OpView::RegFetchAdd {
                run: view_run(tp, run),
                stores: view_stores(tp, stores),
                reg,
                width,
                dst,
                out: ValRef::from(out),
            },
            PlanOp::UpdateChecksum => OpView::UpdateChecksum,
            PlanOp::EmitCopy => OpView::EmitCopy,
            PlanOp::MarkDrop => OpView::MarkDrop,
            PlanOp::Foreign => OpView::Foreign,
            PlanOp::Jump(t) => OpView::Jump(t),
            PlanOp::Branch {
                run,
                stores,
                src,
                then_ip,
                else_ip,
            } => OpView::Branch {
                run: view_run(tp, run),
                stores: view_stores(tp, stores),
                src: match src {
                    BranchSrc::Reg(r) => CondSrc::Reg(r),
                    BranchSrc::Slot(s) => CondSrc::Slot(s),
                },
                then_ip,
                else_ip,
            },
            PlanOp::Halt => OpView::Halt,
        })
        .collect();
    TraversalView {
        ops,
        entry_ip: tp.entry_ip,
        node_ips: tp.node_ips.clone(),
    }
}

impl ExecPlan {
    /// Materialize an owned, read-only view of the committed plan with
    /// every pool range resolved inline. Build-time only (allocates);
    /// never called on the warm path.
    pub fn view(&self) -> PlanView {
        let mut slot_names = vec![String::new(); self.n_slots];
        for (name, slot) in &self.slots {
            if let Some(n) = slot_names.get_mut(usize::from(*slot)) {
                *n = name.clone();
            }
        }
        PlanView {
            pre: view_traversal(&self.pre),
            post: view_traversal(&self.post),
            prefetch: self.prefetch.as_ref().map(|pf| PrefetchView {
                prologue: pf.prologue.clone(),
                probe_ip: pf.probe_ip,
                pure: pf.pure,
            }),
            n_slots: self.n_slots,
            n_regs: self.n_regs,
            slot_names,
            to_server_slots: self.to_server_slots.clone(),
            from_server_slots: self.from_server_slots.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::tests::fixture;
    use crate::plan::PlanOptions;

    #[test]
    fn view_resolves_all_pools_inline() {
        let prog = fixture();
        let plan = ExecPlan::build_with(&prog, PlanOptions { fuse: true }).expect("builds");
        let view = plan.view();
        assert_eq!(view.pre.ops.len(), plan.pre.ops.len());
        assert_eq!(view.pre.node_ips.len(), prog.pre_nodes.len());
        assert!(view
            .pre
            .ops
            .iter()
            .any(|op| matches!(op, OpView::BuildKeyProbe { keys, .. } if keys.len() == 2)));
        assert!(view.slot_names.iter().any(|n| n == "sum"));
        assert_eq!(view.n_slots, plan.n_slots);
    }

    #[test]
    fn view_exposes_prefetch_projection() {
        // The fixture's entry node computes its keys and probes before
        // any branch, so both fused and unfused plans carry a static
        // prefetch section; the view must expose it with prologue ips
        // resolving to pure opcodes and the probe ip to the probe.
        for fuse in [true, false] {
            let prog = fixture();
            let plan = ExecPlan::build_with(&prog, PlanOptions { fuse }).expect("builds");
            let view = plan.view();
            let pf = view.prefetch.as_ref().expect("fixture has a prefetch");
            for &ip in &pf.prologue {
                assert!(matches!(
                    view.pre.ops[ip as usize],
                    OpView::Eval { .. } | OpView::RegRead { .. }
                ));
            }
            assert!(matches!(
                view.pre.ops[pf.probe_ip as usize],
                OpView::BuildKeyProbe { .. }
            ));
            // Purity must agree with the exposed prologue: resumable iff
            // nothing register-dependent precedes the probe.
            let has_regread = pf
                .prologue
                .iter()
                .any(|&ip| matches!(view.pre.ops[ip as usize], OpView::RegRead { .. }));
            if has_regread {
                assert!(!pf.pure, "RegRead prologue cannot be pure");
            }
        }
    }
}
