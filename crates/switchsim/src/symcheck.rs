//! Symbolic translation validation for the compiled execution plan.
//!
//! [`check_plan`] proves, per loaded program, that the micro-op streams
//! the expression compiler committed are semantically equal to the P4 AST
//! they were lowered from — the Gauntlet-style answer to "is this
//! optimizing compiler correct on *this* program", run at `Switch::load`
//! time instead of relying only on randomized differential tests.
//!
//! The proof is per node, mirroring the compiler's own scope (CSE and
//! register lifetimes never cross a node). Both sides of each node are
//! evaluated over a shared hash-consed term pool:
//!
//! * the **AST side** executes the node's [`P4Stmt`]s symbolically,
//!   applying exactly the interpreter's semantics (`SetMeta` masks to the
//!   declared width, `RegWrite` masks to the register width, `RegFetchAdd`
//!   deltas stay unmasked, `BinOp::eval` at width 64);
//! * the **plan side** executes the committed [`PlanOp`]/[`MOp`] streams
//!   symbolically over a virtual register file, reading every pool range
//!   through checked accessors so even a corrupt plan can never panic.
//!
//! The term pool normalizes through the *same* rules the compiler uses —
//! constant folding via `BinOp::eval(_, _, 64)`, the identical-operand and
//! one-constant identity tables, commutative const-right canonicalization,
//! and significant-bits-based mask elision — so a faithful compilation
//! yields structurally identical terms by construction, and every
//! divergence is a real semantic difference. Per node the validator
//! compares:
//!
//! 1. the ordered **effect lists** (header writes, table probes, register
//!    ops, checksum refreshes, emits, drops, foreign-work markers), with
//!    non-deterministic results (table hits/values, register reads)
//!    modeled as position-indexed oracle terms;
//! 2. the **exit**: jump/branch targets and the symbolic branch condition,
//!    accepting a constant-folded branch as a jump to the proven side;
//! 3. the **observable metadata stores**: every slot the reader analysis
//!    pins (read by another node or packed into a transfer header) must
//!    hold equal terms — which justifies (or rejects) each dead-store
//!    elision individually.
//!
//! Any divergence is reported as a typed [`SymCheckError`] naming the
//! traversal, node, opcode index, and the first diverging term.

use crate::plan::{
    const_bits, scan_reads, BranchSrc, ExecPlan, ExprVal, Interner, MOp, MetaReaders, PlanOp,
    PoolRef, TraversalPlan,
};
use gallium_mir::interp::hash_values;
use gallium_mir::types::mask_to_width;
use gallium_mir::{BinOp, HeaderField};
use gallium_p4::{BlockNode, NodeNext, P4Expr, P4Program, P4Stmt};
use std::collections::HashMap;

/// A translation-validation failure: the compiled plan and the P4 AST
/// provably diverge (or the plan is structurally unsound). Every variant
/// names the traversal and node; stream-level variants also carry the
/// opcode index and the first diverging term, rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymCheckError {
    /// The node's effect sequences diverge at `index`.
    EffectMismatch {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The diverging node.
        node: usize,
        /// Opcode index of the diverging plan op.
        ip: u32,
        /// Position in the node's effect sequence.
        index: usize,
        /// The AST-side effect, rendered.
        expected: String,
        /// The plan-side effect, rendered.
        got: String,
    },
    /// One side performs more externally visible effects than the other.
    EffectCountMismatch {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The diverging node.
        node: usize,
        /// AST-side effect count.
        expected: usize,
        /// Plan-side effect count.
        got: usize,
    },
    /// The node's control-flow exits diverge (target or condition).
    ExitMismatch {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The diverging node.
        node: usize,
        /// The AST-side exit, rendered.
        expected: String,
        /// The plan-side exit, rendered.
        got: String,
    },
    /// An observable metadata slot ends the node with diverging values.
    StoreMismatch {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The diverging node.
        node: usize,
        /// The metadata field name.
        slot: String,
        /// The AST-side term, rendered.
        expected: String,
        /// The plan-side term, rendered.
        got: String,
    },
    /// The AST writes an observable slot the plan never stores.
    MissingStore {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The diverging node.
        node: usize,
        /// The metadata field name.
        slot: String,
    },
    /// The plan stores an observable slot the AST never writes.
    SpuriousStore {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The diverging node.
        node: usize,
        /// The metadata field name.
        slot: String,
        /// The plan-side term, rendered.
        got: String,
    },
    /// A micro-op reads a register no earlier op in the node defined.
    UndefinedRead {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The node with the undefined read.
        node: usize,
        /// Opcode index of the reading op.
        ip: u32,
    },
    /// The plan is structurally unsound (out-of-range pool reference,
    /// missing terminator, control op before the node end).
    Malformed {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// The malformed node.
        node: usize,
        /// Opcode index, or `u32::MAX` when no single op is at fault.
        ip: u32,
        /// What was malformed.
        detail: &'static str,
    },
}

impl std::fmt::Display for SymCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymCheckError::EffectMismatch {
                traversal,
                node,
                ip,
                index,
                expected,
                got,
            } => write!(
                f,
                "{traversal} node #{node} op #{ip}: effect {index} diverges: \
                 expected {expected}, compiled plan does {got}"
            ),
            SymCheckError::EffectCountMismatch {
                traversal,
                node,
                expected,
                got,
            } => write!(
                f,
                "{traversal} node #{node}: AST performs {expected} effects, \
                 compiled plan performs {got}"
            ),
            SymCheckError::ExitMismatch {
                traversal,
                node,
                expected,
                got,
            } => write!(
                f,
                "{traversal} node #{node}: exit diverges: expected {expected}, \
                 compiled plan exits via {got}"
            ),
            SymCheckError::StoreMismatch {
                traversal,
                node,
                slot,
                expected,
                got,
            } => write!(
                f,
                "{traversal} node #{node}: observable slot `{slot}` diverges: \
                 expected {expected}, compiled plan stores {got}"
            ),
            SymCheckError::MissingStore {
                traversal,
                node,
                slot,
            } => write!(
                f,
                "{traversal} node #{node}: observable slot `{slot}` is written \
                 by the AST but never stored by the compiled plan"
            ),
            SymCheckError::SpuriousStore {
                traversal,
                node,
                slot,
                got,
            } => write!(
                f,
                "{traversal} node #{node}: compiled plan stores {got} into \
                 slot `{slot}`, which the AST never writes"
            ),
            SymCheckError::UndefinedRead {
                traversal,
                node,
                ip,
            } => write!(
                f,
                "{traversal} node #{node} op #{ip}: micro-op reads an \
                 undefined register"
            ),
            SymCheckError::Malformed {
                traversal,
                node,
                ip,
                detail,
            } => write!(f, "{traversal} node #{node} op #{ip}: {detail}"),
        }
    }
}

impl std::error::Error for SymCheckError {}

/// Summary of a successful proof (telemetry / reporting).
#[derive(Debug, Clone, Copy, Default)]
pub struct SymProof {
    /// Nodes proven equivalent across both traversals.
    pub nodes: usize,
    /// Total hash-consed terms materialized during the proof.
    pub terms: usize,
}

/// A hash-consed symbolic term. `Header` carries a version counter so a
/// header write (or checksum refresh) invalidates earlier loads, exactly
/// like the compiler dropping its header CSE entries; `Oracle` stands for
/// one output of a non-deterministic effect (table hit flags and values,
/// register reads), indexed by the effect's position in the node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Term {
    Const(u64),
    MetaIn(u16),
    Header(HeaderField, u32),
    Ingress,
    Bin(BinOp, TermId, TermId),
    Not(TermId),
    Mask(TermId, u8),
    Hash(Vec<TermId>, u8),
    Oracle(u32, u16),
}

type TermId = u32;

/// Hash-consing pool. Interning applies the compiler's exact
/// normalization rules, so two expressions that the compiler would lower
/// to the same micro-op sequence intern to the same id.
#[derive(Default)]
struct TermPool {
    terms: Vec<Term>,
    /// Conservative significant-bit bound per term, mirroring the
    /// compiler's per-register `bits` vector rule for rule.
    bits: Vec<u8>,
    map: HashMap<Term, TermId>,
}

impl TermPool {
    fn intern(&mut self, t: Term, bits: u8) -> TermId {
        if let Some(&id) = self.map.get(&t) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(t.clone());
        self.bits.push(bits.min(64));
        self.map.insert(t, id);
        id
    }

    fn term(&self, id: TermId) -> &Term {
        &self.terms[id as usize]
    }

    fn as_const(&self, id: TermId) -> Option<u64> {
        match self.term(id) {
            Term::Const(c) => Some(*c),
            _ => None,
        }
    }

    fn cnst(&mut self, c: u64) -> TermId {
        self.intern(Term::Const(c), const_bits(c))
    }

    fn meta_in(&mut self, slot: u16) -> TermId {
        // Slot contents are not guaranteed masked to the declared width
        // (table values and register reads land unmasked) — 64 bits,
        // matching the compiler's `LoadMeta` bound.
        self.intern(Term::MetaIn(slot), 64)
    }

    fn header(&mut self, field: HeaderField, version: u32) -> TermId {
        self.intern(Term::Header(field, version), field.bits())
    }

    fn ingress(&mut self) -> TermId {
        self.intern(Term::Ingress, 16)
    }

    fn oracle(&mut self, seq: u32, out: u16) -> TermId {
        self.intern(Term::Oracle(seq, out), 64)
    }

    /// Mirror of the compiler's `bin_bits`, computed after
    /// canonicalization.
    fn bin_bits(&self, op: BinOp, a: TermId, b: TermId) -> u8 {
        let (ab, bb) = (self.bits[a as usize], self.bits[b as usize]);
        match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::And => ab.min(bb),
            BinOp::Or | BinOp::Xor => ab.max(bb),
            BinOp::Add => (ab.max(bb) + 1).min(64),
            BinOp::Sub => 64,
            BinOp::Mul => (ab + bb).min(64),
            BinOp::Div => ab,
            BinOp::Mod => ab.min(bb),
            BinOp::Shl => match self.as_const(b) {
                Some(c) if c < 64 => (ab + c as u8).min(64),
                Some(_) => 0,
                None => 64,
            },
            BinOp::Shr => match self.as_const(b) {
                Some(c) if c < 64 => ab.saturating_sub(c as u8),
                Some(_) => 0,
                None => ab,
            },
        }
    }

    /// Mirror of the compiler's `bin`: fold, apply identities, then
    /// canonicalize and intern. Hash-consing makes id equality coincide
    /// with the compiler's resolved-operand equality, so the `x op x`
    /// identities fire in exactly the same cases.
    fn bin(&mut self, op: BinOp, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.cnst(op.eval(x, y, 64));
        }
        if a == b {
            match op {
                BinOp::Sub | BinOp::Xor | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Mod => {
                    return self.cnst(0)
                }
                BinOp::Eq | BinOp::Le | BinOp::Ge => return self.cnst(1),
                BinOp::And | BinOp::Or => return a,
                _ => {}
            }
        }
        let (ca, cb) = (self.as_const(a), self.as_const(b));
        let ident = match (op, ca, cb) {
            (BinOp::And, _, Some(0)) | (BinOp::And, Some(0), _) => Some(Err(0)),
            (BinOp::And, None, Some(u64::MAX)) => Some(Ok(a)),
            (BinOp::And, Some(u64::MAX), None) => Some(Ok(b)),
            (BinOp::Or, None, Some(0)) => Some(Ok(a)),
            (BinOp::Or, Some(0), None) => Some(Ok(b)),
            (BinOp::Or, _, Some(u64::MAX)) | (BinOp::Or, Some(u64::MAX), _) => Some(Err(u64::MAX)),
            (BinOp::Xor, None, Some(0)) => Some(Ok(a)),
            (BinOp::Xor, Some(0), None) => Some(Ok(b)),
            (BinOp::Add, None, Some(0)) => Some(Ok(a)),
            (BinOp::Add, Some(0), None) => Some(Ok(b)),
            (BinOp::Sub, None, Some(0)) => Some(Ok(a)),
            (BinOp::Mul, _, Some(0)) | (BinOp::Mul, Some(0), _) => Some(Err(0)),
            (BinOp::Mul, None, Some(1)) => Some(Ok(a)),
            (BinOp::Mul, Some(1), None) => Some(Ok(b)),
            (BinOp::Shl | BinOp::Shr, None, Some(0)) => Some(Ok(a)),
            (BinOp::Shl | BinOp::Shr, _, Some(c)) if c >= 64 => Some(Err(0)),
            (BinOp::Div | BinOp::Mod, _, Some(0)) => Some(Err(0)),
            (BinOp::Div, None, Some(1)) => Some(Ok(a)),
            (BinOp::Mod, _, Some(1)) => Some(Err(0)),
            (BinOp::Div | BinOp::Mod, Some(0), _) => Some(Err(0)),
            _ => None,
        };
        match ident {
            Some(Ok(t)) => return t,
            Some(Err(c)) => return self.cnst(c),
            None => {}
        }
        let commutative = matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        );
        let (a, b) = if commutative && ca.is_some() {
            (b, a)
        } else {
            (a, b)
        };
        let bits = self.bin_bits(op, a, b);
        self.intern(Term::Bin(op, a, b), bits)
    }

    fn not(&mut self, a: TermId) -> TermId {
        match self.as_const(a) {
            Some(c) => self.cnst(!c),
            None => self.intern(Term::Not(a), 64),
        }
    }

    /// Mirror of the compiler's `masked`: pass through at full width, fold
    /// constants, elide when the significant bits provably fit.
    fn mask(&mut self, a: TermId, width: u8) -> TermId {
        if width >= 64 {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            return self.cnst(mask_to_width(c, width));
        }
        if self.bits[a as usize] <= width {
            return a;
        }
        self.intern(Term::Mask(a, width), width)
    }

    fn hash(&mut self, args: Vec<TermId>, width: u8) -> TermId {
        if args.iter().all(|a| self.as_const(*a).is_some()) {
            let ins: Vec<u64> = args.iter().map(|a| self.as_const(*a).unwrap()).collect();
            return self.cnst(hash_values(&ins, width));
        }
        self.intern(Term::Hash(args, width), width.min(64))
    }

    fn render(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Const(c) => format!("{c:#x}"),
            Term::MetaIn(s) => format!("meta[{s}]"),
            Term::Header(f, v) => format!("{f:?}@v{v}"),
            Term::Ingress => "ingress".to_string(),
            Term::Bin(op, a, b) => {
                format!("({} {op:?} {})", self.render(*a), self.render(*b))
            }
            Term::Not(a) => format!("!{}", self.render(*a)),
            Term::Mask(a, w) => format!("mask{w}({})", self.render(*a)),
            Term::Hash(args, w) => {
                let parts: Vec<String> = args.iter().map(|a| self.render(*a)).collect();
                format!("hash{w}({})", parts.join(", "))
            }
            Term::Oracle(seq, out) => format!("oracle#{seq}.{out}"),
        }
    }
}

/// One externally visible action of a node, in order. Oracle outputs are
/// bound to the effect's position, so two sides with equal effect
/// prefixes agree on every oracle term.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Effect {
    SetHeader {
        field: HeaderField,
        val: TermId,
    },
    Probe {
        table: u16,
        keys: Vec<TermId>,
        hit_slot: u16,
        val_slots: Vec<u16>,
    },
    RegRead {
        reg: u16,
        dst_slot: u16,
    },
    RegWrite {
        reg: u16,
        val: TermId,
    },
    RegFetchAdd {
        reg: u16,
        width: u8,
        dst_slot: u16,
        delta: TermId,
    },
    UpdateChecksum,
    EmitCopy,
    MarkDrop,
    Foreign,
}

fn render_effect(pool: &TermPool, e: &Effect) -> String {
    match e {
        Effect::SetHeader { field, val } => {
            format!("set-header {field:?} = {}", pool.render(*val))
        }
        Effect::Probe {
            table,
            keys,
            hit_slot,
            val_slots,
        } => {
            let parts: Vec<String> = keys.iter().map(|k| pool.render(*k)).collect();
            format!(
                "probe table#{table} keys [{}] hit->slot {hit_slot} vals->{val_slots:?}",
                parts.join(", ")
            )
        }
        Effect::RegRead { reg, dst_slot } => format!("reg-read r{reg} -> slot {dst_slot}"),
        Effect::RegWrite { reg, val } => format!("reg-write r{reg} = {}", pool.render(*val)),
        Effect::RegFetchAdd {
            reg,
            width,
            dst_slot,
            delta,
        } => format!(
            "reg-fetch-add r{reg} (w{width}) += {} old->slot {dst_slot}",
            pool.render(*delta)
        ),
        Effect::UpdateChecksum => "update-checksum".to_string(),
        Effect::EmitCopy => "emit-copy".to_string(),
        Effect::MarkDrop => "mark-drop".to_string(),
        Effect::Foreign => "foreign".to_string(),
    }
}

/// How a node leaves, with targets resolved to opcode addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Exit {
    Jump(u32),
    Branch {
        cond: TermId,
        then_ip: u32,
        else_ip: u32,
    },
    Halt,
}

fn render_exit(pool: &TermPool, e: &Exit) -> String {
    match e {
        Exit::Jump(ip) => format!("jump @{ip}"),
        Exit::Branch {
            cond,
            then_ip,
            else_ip,
        } => format!(
            "branch on {} then @{then_ip} else @{else_ip}",
            pool.render(*cond)
        ),
        Exit::Halt => "halt".to_string(),
    }
}

/// Per-side symbolic node state: written metadata slots, header-field
/// versions, the ordered effect list, and the exit.
#[derive(Default)]
struct SideState {
    meta: HashMap<u16, TermId>,
    hver: HashMap<HeaderField, u32>,
    hver_base: u32,
    next_ver: u32,
    effects: Vec<Effect>,
    /// Plan side: opcode index that produced each effect (AST side keeps
    /// `u32::MAX`), for error reporting.
    effect_ips: Vec<u32>,
    exit: Option<Exit>,
}

impl SideState {
    fn version(&self, f: HeaderField) -> u32 {
        self.hver.get(&f).copied().unwrap_or(self.hver_base)
    }

    fn write_header(&mut self, f: HeaderField) {
        self.next_ver += 1;
        self.hver.insert(f, self.next_ver);
    }

    /// The checksum refresh rewrites the IP checksum field; invalidate
    /// every cached header load, mirroring the compiler dropping all
    /// `Header` CSE entries.
    fn write_all_headers(&mut self) {
        self.next_ver += 1;
        self.hver.clear();
        self.hver_base = self.next_ver;
    }

    fn meta_term(&mut self, pool: &mut TermPool, slot: u16) -> TermId {
        match self.meta.get(&slot) {
            Some(t) => *t,
            None => pool.meta_in(slot),
        }
    }

    fn push_effect(&mut self, e: Effect, ip: u32) -> u32 {
        let seq = self.effects.len() as u32;
        self.effects.push(e);
        self.effect_ips.push(ip);
        seq
    }

    /// Bind the oracle outputs of the effect just pushed.
    fn probe_results(&mut self, pool: &mut TermPool, seq: u32, hit_slot: u16, val_slots: &[u16]) {
        let hit = pool.oracle(seq, 0);
        self.meta.insert(hit_slot, hit);
        for (j, s) in val_slots.iter().enumerate() {
            let v = pool.oracle(seq, 1 + j as u16);
            self.meta.insert(*s, v);
        }
    }

    fn oracle_into(&mut self, pool: &mut TermPool, seq: u32, slot: u16) {
        let t = pool.oracle(seq, 0);
        self.meta.insert(slot, t);
    }
}

/// Everything the per-node proof needs about the surrounding program.
struct NodeCheck<'a> {
    traversal: &'static str,
    node: usize,
    is_pre: bool,
    meta_bits: &'a HashMap<&'a str, u16>,
    reg_widths: &'a [u8],
    n_regs: usize,
    tp: &'a TraversalPlan,
}

impl<'a> NodeCheck<'a> {
    fn malformed(&self, ip: u32, detail: &'static str) -> SymCheckError {
        SymCheckError::Malformed {
            traversal: self.traversal,
            node: self.node,
            ip,
            detail,
        }
    }

    fn width_of(&self, name: &str) -> u8 {
        self.meta_bits.get(name).copied().unwrap_or(64).min(64) as u8
    }

    fn reg_width(&self, reg: usize) -> u8 {
        self.reg_widths.get(reg).copied().unwrap_or(64)
    }

    /// Execute the node's statements over the AST, symbolically.
    fn run_ast(
        &self,
        node: &BlockNode,
        pool: &mut TermPool,
        interner: &mut Interner,
    ) -> Result<SideState, SymCheckError> {
        let mut side = SideState::default();
        if self.is_pre && node.has_foreign_work {
            side.push_effect(Effect::Foreign, u32::MAX);
        }
        for stmt in &node.stmts {
            match stmt {
                P4Stmt::SetMeta(name, e) => {
                    let raw = self.eval(e, pool, interner, &mut side);
                    let val = pool.mask(raw, self.width_of(name));
                    side.meta.insert(interner.slot(name), val);
                }
                P4Stmt::SetHeader(f, e) => {
                    let raw = self.eval(e, pool, interner, &mut side);
                    let val = pool.mask(raw, f.bits());
                    side.push_effect(Effect::SetHeader { field: *f, val }, u32::MAX);
                    side.write_header(*f);
                }
                P4Stmt::TableLookup {
                    table,
                    keys,
                    hit_meta,
                    value_metas,
                } => {
                    let kterms: Vec<TermId> = keys
                        .iter()
                        .map(|k| self.eval(k, pool, interner, &mut side))
                        .collect();
                    let hit_slot = interner.slot(hit_meta);
                    let val_slots: Vec<u16> =
                        value_metas.iter().map(|m| interner.slot(m)).collect();
                    let seq = side.push_effect(
                        Effect::Probe {
                            table: *table as u16,
                            keys: kterms,
                            hit_slot,
                            val_slots: val_slots.clone(),
                        },
                        u32::MAX,
                    );
                    side.probe_results(pool, seq, hit_slot, &val_slots);
                }
                P4Stmt::RegRead { reg, dst } => {
                    let dst_slot = interner.slot(dst);
                    let seq = side.push_effect(
                        Effect::RegRead {
                            reg: *reg as u16,
                            dst_slot,
                        },
                        u32::MAX,
                    );
                    side.oracle_into(pool, seq, dst_slot);
                }
                P4Stmt::RegWrite { reg, src } => {
                    let raw = self.eval(src, pool, interner, &mut side);
                    let val = pool.mask(raw, self.reg_width(*reg));
                    side.push_effect(
                        Effect::RegWrite {
                            reg: *reg as u16,
                            val,
                        },
                        u32::MAX,
                    );
                }
                P4Stmt::RegFetchAdd { reg, dst, delta } => {
                    // The delta is deliberately unmasked — the runtime
                    // masks after the add, and the old value lands in
                    // `dst` unmasked.
                    let d = self.eval(delta, pool, interner, &mut side);
                    let dst_slot = interner.slot(dst);
                    let seq = side.push_effect(
                        Effect::RegFetchAdd {
                            reg: *reg as u16,
                            width: self.reg_width(*reg),
                            dst_slot,
                            delta: d,
                        },
                        u32::MAX,
                    );
                    side.oracle_into(pool, seq, dst_slot);
                }
                P4Stmt::UpdateChecksum => {
                    side.push_effect(Effect::UpdateChecksum, u32::MAX);
                    side.write_all_headers();
                }
                P4Stmt::EmitCopy => {
                    side.push_effect(Effect::EmitCopy, u32::MAX);
                }
                P4Stmt::MarkDrop => {
                    side.push_effect(Effect::MarkDrop, u32::MAX);
                }
            }
        }
        let node_ip = |n: usize| -> Result<u32, SymCheckError> {
            self.tp
                .node_ips
                .get(n)
                .copied()
                .ok_or_else(|| self.malformed(u32::MAX, "control target past the node table"))
        };
        side.exit = Some(match &node.next {
            NodeNext::Jump(t) => Exit::Jump(node_ip(*t)?),
            NodeNext::Cond {
                meta,
                then_n,
                else_n,
            } => {
                let slot = interner.slot(meta);
                let cond = side.meta_term(pool, slot);
                Exit::Branch {
                    cond,
                    then_ip: node_ip(*then_n)?,
                    else_ip: node_ip(*else_n)?,
                }
            }
            NodeNext::SkipJoin {
                join,
                skipped_has_foreign,
            } => {
                if self.is_pre && *skipped_has_foreign {
                    side.push_effect(Effect::Foreign, u32::MAX);
                }
                match join {
                    Some(j) => Exit::Jump(node_ip(*j)?),
                    None => Exit::Halt,
                }
            }
            NodeNext::End => Exit::Halt,
        });
        Ok(side)
    }

    /// Evaluate one P4 expression symbolically with the interpreter's
    /// exact semantics.
    fn eval(
        &self,
        e: &P4Expr,
        pool: &mut TermPool,
        interner: &mut Interner,
        side: &mut SideState,
    ) -> TermId {
        match e {
            P4Expr::Const(v, _) => pool.cnst(*v),
            P4Expr::Meta(n) => {
                let slot = interner.slot(n);
                side.meta_term(pool, slot)
            }
            P4Expr::Header(f) => pool.header(*f, side.version(*f)),
            P4Expr::IngressPort => pool.ingress(),
            P4Expr::Bin(op, a, b) => {
                let ta = self.eval(a, pool, interner, side);
                let tb = self.eval(b, pool, interner, side);
                pool.bin(*op, ta, tb)
            }
            P4Expr::Not(a) => {
                let ta = self.eval(a, pool, interner, side);
                pool.not(ta)
            }
            P4Expr::Cast(a, w) => {
                let ta = self.eval(a, pool, interner, side);
                pool.mask(ta, *w)
            }
            P4Expr::Hash(parts, w) => {
                let args: Vec<TermId> = parts
                    .iter()
                    .map(|p| self.eval(p, pool, interner, side))
                    .collect();
                pool.hash(args, *w)
            }
        }
    }

    /// Execute the node's committed opcode range symbolically. Every pool
    /// access is checked: a corrupt plan yields a typed error, never a
    /// panic.
    fn run_plan(
        &self,
        start: usize,
        end: usize,
        pool: &mut TermPool,
    ) -> Result<SideState, SymCheckError> {
        let mut side = SideState::default();
        let mut regs: Vec<Option<TermId>> = vec![None; self.n_regs];
        let mut ip = start;
        while ip < end {
            let aip = ip as u32;
            let op = self
                .tp
                .ops
                .get(ip)
                .ok_or_else(|| self.malformed(aip, "node range past the opcode stream"))?;
            let mut exit: Option<Exit> = None;
            match op {
                PlanOp::Eval { run, stores } => {
                    self.sym_run(aip, *run, pool, &mut side, &mut regs)?;
                    self.sym_stores(aip, *stores, pool, &mut side, &regs)?;
                }
                PlanOp::SetHeader {
                    run,
                    stores,
                    field,
                    out,
                } => {
                    self.sym_run(aip, *run, pool, &mut side, &mut regs)?;
                    self.sym_stores(aip, *stores, pool, &mut side, &regs)?;
                    let val = self.val_term(aip, *out, pool, &regs)?;
                    side.push_effect(Effect::SetHeader { field: *field, val }, aip);
                    side.write_header(*field);
                }
                PlanOp::BuildKeyProbe {
                    run,
                    stores,
                    table,
                    keys,
                    hit_slot,
                    vals,
                } => {
                    self.sym_run(aip, *run, pool, &mut side, &mut regs)?;
                    self.sym_stores(aip, *stores, pool, &mut side, &regs)?;
                    let kvals = self
                        .tp
                        .keys
                        .get(keys.range())
                        .ok_or_else(|| self.malformed(aip, "key range past the pool"))?;
                    let mut kterms = Vec::with_capacity(kvals.len());
                    for k in kvals {
                        kterms.push(self.val_term(aip, *k, pool, &regs)?);
                    }
                    let val_slots = self
                        .tp
                        .value_slots
                        .get(vals.range())
                        .ok_or_else(|| self.malformed(aip, "value-slot range past the pool"))?
                        .to_vec();
                    let seq = side.push_effect(
                        Effect::Probe {
                            table: *table,
                            keys: kterms,
                            hit_slot: *hit_slot,
                            val_slots: val_slots.clone(),
                        },
                        aip,
                    );
                    side.probe_results(pool, seq, *hit_slot, &val_slots);
                }
                PlanOp::RegRead { reg, dst } => {
                    let seq = side.push_effect(
                        Effect::RegRead {
                            reg: *reg,
                            dst_slot: *dst,
                        },
                        aip,
                    );
                    side.oracle_into(pool, seq, *dst);
                }
                PlanOp::RegWrite {
                    run,
                    stores,
                    reg,
                    out,
                } => {
                    self.sym_run(aip, *run, pool, &mut side, &mut regs)?;
                    self.sym_stores(aip, *stores, pool, &mut side, &regs)?;
                    let val = self.val_term(aip, *out, pool, &regs)?;
                    side.push_effect(Effect::RegWrite { reg: *reg, val }, aip);
                }
                PlanOp::RegFetchAdd {
                    run,
                    stores,
                    reg,
                    width,
                    dst,
                    out,
                } => {
                    self.sym_run(aip, *run, pool, &mut side, &mut regs)?;
                    self.sym_stores(aip, *stores, pool, &mut side, &regs)?;
                    let delta = self.val_term(aip, *out, pool, &regs)?;
                    let seq = side.push_effect(
                        Effect::RegFetchAdd {
                            reg: *reg,
                            width: *width,
                            dst_slot: *dst,
                            delta,
                        },
                        aip,
                    );
                    side.oracle_into(pool, seq, *dst);
                }
                PlanOp::UpdateChecksum => {
                    side.push_effect(Effect::UpdateChecksum, aip);
                    side.write_all_headers();
                }
                PlanOp::EmitCopy => {
                    side.push_effect(Effect::EmitCopy, aip);
                }
                PlanOp::MarkDrop => {
                    side.push_effect(Effect::MarkDrop, aip);
                }
                PlanOp::Foreign => {
                    side.push_effect(Effect::Foreign, aip);
                }
                PlanOp::Jump(t) => exit = Some(Exit::Jump(*t)),
                PlanOp::Branch {
                    run,
                    stores,
                    src,
                    then_ip,
                    else_ip,
                } => {
                    self.sym_run(aip, *run, pool, &mut side, &mut regs)?;
                    self.sym_stores(aip, *stores, pool, &mut side, &regs)?;
                    let cond = match src {
                        BranchSrc::Reg(r) => self.reg_term(aip, *r, &regs)?,
                        BranchSrc::Slot(s) => side.meta_term(pool, *s),
                    };
                    exit = Some(Exit::Branch {
                        cond,
                        then_ip: *then_ip,
                        else_ip: *else_ip,
                    });
                }
                PlanOp::Halt => exit = Some(Exit::Halt),
            }
            if let Some(e) = exit {
                if ip + 1 != end {
                    return Err(self.malformed(aip, "control op before the node end"));
                }
                side.exit = Some(e);
            }
            ip += 1;
        }
        if side.exit.is_none() {
            return Err(self.malformed(end.saturating_sub(1) as u32, "node has no terminator"));
        }
        Ok(side)
    }

    fn reg_term(&self, ip: u32, r: u16, regs: &[Option<TermId>]) -> Result<TermId, SymCheckError> {
        regs.get(usize::from(r))
            .copied()
            .flatten()
            .ok_or(SymCheckError::UndefinedRead {
                traversal: self.traversal,
                node: self.node,
                ip,
            })
    }

    fn val_term(
        &self,
        ip: u32,
        v: ExprVal,
        pool: &mut TermPool,
        regs: &[Option<TermId>],
    ) -> Result<TermId, SymCheckError> {
        match v {
            ExprVal::Const(c) => Ok(pool.cnst(c)),
            ExprVal::Reg(r) => self.reg_term(ip, r, regs),
        }
    }

    fn sym_run(
        &self,
        ip: u32,
        run: PoolRef,
        pool: &mut TermPool,
        side: &mut SideState,
        regs: &mut [Option<TermId>],
    ) -> Result<(), SymCheckError> {
        let ops = self
            .tp
            .micro
            .get(run.range())
            .ok_or_else(|| self.malformed(ip, "micro-op range past the pool"))?;
        for m in ops {
            let (dst, t) = match *m {
                MOp::LoadMeta { dst, slot } => (dst, side.meta_term(pool, slot)),
                MOp::LoadHeader { dst, field } => (dst, pool.header(field, side.version(field))),
                MOp::LoadIngress { dst } => (dst, pool.ingress()),
                MOp::BinRR { op, dst, a, b } => {
                    let ta = self.reg_term(ip, a, regs)?;
                    let tb = self.reg_term(ip, b, regs)?;
                    (dst, pool.bin(op, ta, tb))
                }
                MOp::BinRI { op, dst, a, imm } => {
                    let ta = self.reg_term(ip, a, regs)?;
                    let ti = pool.cnst(imm);
                    (dst, pool.bin(op, ta, ti))
                }
                MOp::BinIR { op, dst, imm, b } => {
                    let ti = pool.cnst(imm);
                    let tb = self.reg_term(ip, b, regs)?;
                    (dst, pool.bin(op, ti, tb))
                }
                MOp::NotR { dst, a } => {
                    let ta = self.reg_term(ip, a, regs)?;
                    (dst, pool.not(ta))
                }
                MOp::MaskR { dst, a, width } => {
                    let ta = self.reg_term(ip, a, regs)?;
                    (dst, pool.mask(ta, width))
                }
                MOp::Hash {
                    dst,
                    args_start,
                    args_len,
                    width,
                } => {
                    let hr = PoolRef {
                        start: args_start,
                        len: args_len,
                    };
                    let avals = self
                        .tp
                        .hash_args
                        .get(hr.range())
                        .ok_or_else(|| self.malformed(ip, "hash-arg range past the pool"))?;
                    let mut args = Vec::with_capacity(avals.len());
                    for v in avals {
                        args.push(self.val_term(ip, *v, pool, regs)?);
                    }
                    (dst, pool.hash(args, width))
                }
            };
            *regs
                .get_mut(usize::from(dst))
                .ok_or_else(|| self.malformed(ip, "micro-op register past the file"))? = Some(t);
        }
        Ok(())
    }

    fn sym_stores(
        &self,
        ip: u32,
        stores: PoolRef,
        pool: &mut TermPool,
        side: &mut SideState,
        regs: &[Option<TermId>],
    ) -> Result<(), SymCheckError> {
        let sts = self
            .tp
            .stores
            .get(stores.range())
            .ok_or_else(|| self.malformed(ip, "store range past the pool"))?;
        for st in sts {
            let t = self.val_term(ip, st.src, pool, regs)?;
            side.meta.insert(st.slot, t);
        }
        Ok(())
    }
}

/// Prove one traversal node-by-node.
#[allow(clippy::too_many_arguments)]
fn check_traversal(
    nodes: &[BlockNode],
    is_pre: bool,
    traversal: &'static str,
    tp: &TraversalPlan,
    external: &[u16],
    plan: &ExecPlan,
    meta_bits: &HashMap<&str, u16>,
    reg_widths: &[u8],
    proof: &mut SymProof,
) -> Result<(), SymCheckError> {
    // Recompute the reader analysis against the final interned slot space
    // — the independent justification for every dead-store elision.
    let mut interner = Interner {
        slots: plan.slots.clone(),
    };
    let readers = scan_reads(nodes, &mut interner, external);
    let slot_names: Vec<String> = {
        let mut names = vec![String::new(); interner.slots.len()];
        for (name, slot) in &interner.slots {
            if let Some(n) = names.get_mut(usize::from(*slot)) {
                *n = name.clone();
            }
        }
        names
    };
    if tp.node_ips.len() != nodes.len() {
        return Err(SymCheckError::Malformed {
            traversal,
            node: 0,
            ip: u32::MAX,
            detail: "node address table does not match the declared nodes",
        });
    }
    for (i, node) in nodes.iter().enumerate() {
        let start = tp.node_ips[i] as usize;
        let end = match tp.node_ips.get(i + 1) {
            Some(n) => *n as usize,
            None => tp.ops.len(),
        };
        let ck = NodeCheck {
            traversal,
            node: i,
            is_pre,
            meta_bits,
            reg_widths,
            n_regs: plan.n_regs,
            tp,
        };
        if start > end || end > tp.ops.len() {
            return Err(ck.malformed(u32::MAX, "node address table is not monotone"));
        }
        let mut pool = TermPool::default();
        let ast = ck.run_ast(node, &mut pool, &mut interner)?;
        let plan_side = ck.run_plan(start, end, &mut pool)?;
        compare_node(&ck, &readers, &slot_names, &pool, &ast, &plan_side)?;
        proof.nodes += 1;
        proof.terms += pool.terms.len();
    }
    Ok(())
}

fn compare_node(
    ck: &NodeCheck<'_>,
    readers: &MetaReaders,
    slot_names: &[String],
    pool: &TermPool,
    ast: &SideState,
    plan: &SideState,
) -> Result<(), SymCheckError> {
    // 1. Ordered effects — first divergence wins.
    let common = ast.effects.len().min(plan.effects.len());
    for j in 0..common {
        if ast.effects[j] != plan.effects[j] {
            return Err(SymCheckError::EffectMismatch {
                traversal: ck.traversal,
                node: ck.node,
                ip: plan.effect_ips[j],
                index: j,
                expected: render_effect(pool, &ast.effects[j]),
                got: render_effect(pool, &plan.effects[j]),
            });
        }
    }
    if ast.effects.len() != plan.effects.len() {
        return Err(SymCheckError::EffectCountMismatch {
            traversal: ck.traversal,
            node: ck.node,
            expected: ast.effects.len(),
            got: plan.effects.len(),
        });
    }
    // 2. Exit. A branch on a constant is provably a jump to the taken
    // side — the justification for the compiler's branch folding.
    let a_exit = ast.exit.as_ref().expect("AST exit always set");
    let p_exit = plan.exit.as_ref().expect("plan exit checked");
    let exit_ok = match (p_exit, a_exit) {
        (Exit::Jump(p), Exit::Jump(a)) => p == a,
        (
            Exit::Jump(p),
            Exit::Branch {
                cond,
                then_ip,
                else_ip,
            },
        ) => match pool.as_const(*cond) {
            Some(c) => *p == if c != 0 { *then_ip } else { *else_ip },
            None => false,
        },
        (
            Exit::Branch {
                cond: pc,
                then_ip: pt,
                else_ip: pe,
            },
            Exit::Branch {
                cond: ac,
                then_ip: at,
                else_ip: ae,
            },
        ) => pc == ac && pt == at && pe == ae,
        (Exit::Halt, Exit::Halt) => true,
        _ => false,
    };
    if !exit_ok {
        return Err(SymCheckError::ExitMismatch {
            traversal: ck.traversal,
            node: ck.node,
            expected: render_exit(pool, a_exit),
            got: render_exit(pool, p_exit),
        });
    }
    // 3. Observable stores: slots the reader analysis pins must end the
    // node equal; elisions of unobservable slots are thereby justified.
    let name_of = |slot: u16| -> String {
        slot_names
            .get(usize::from(slot))
            .cloned()
            .unwrap_or_else(|| format!("slot#{slot}"))
    };
    let mut slots: Vec<u16> = ast.meta.keys().chain(plan.meta.keys()).copied().collect();
    slots.sort_unstable();
    slots.dedup();
    for slot in slots {
        if !readers.needs_store(slot, ck.node) {
            continue;
        }
        match (ast.meta.get(&slot), plan.meta.get(&slot)) {
            (Some(a), Some(p)) => {
                if a != p {
                    return Err(SymCheckError::StoreMismatch {
                        traversal: ck.traversal,
                        node: ck.node,
                        slot: name_of(slot),
                        expected: pool.render(*a),
                        got: pool.render(*p),
                    });
                }
            }
            (Some(_), None) => {
                return Err(SymCheckError::MissingStore {
                    traversal: ck.traversal,
                    node: ck.node,
                    slot: name_of(slot),
                });
            }
            (None, Some(p)) => {
                return Err(SymCheckError::SpuriousStore {
                    traversal: ck.traversal,
                    node: ck.node,
                    slot: name_of(slot),
                    got: pool.render(*p),
                });
            }
            (None, None) => unreachable!("slot came from a written set"),
        }
    }
    Ok(())
}

/// Prove `plan` ≡ `prog`, node by node across both traversals. Returns a
/// proof summary, or the first divergence as a typed error.
pub fn check_plan(prog: &P4Program, plan: &ExecPlan) -> Result<SymProof, SymCheckError> {
    let meta_bits: HashMap<&str, u16> = prog
        .metadata
        .iter()
        .map(|m| (m.name.as_str(), m.bits))
        .collect();
    let reg_widths: Vec<u8> = prog.registers.iter().map(|r| r.width).collect();
    let mut proof = SymProof::default();
    check_traversal(
        &prog.pre_nodes,
        true,
        "pre",
        &plan.pre,
        &plan.to_server_slots,
        plan,
        &meta_bits,
        &reg_widths,
        &mut proof,
    )?;
    check_traversal(
        &prog.post_nodes,
        false,
        "post",
        &plan.post,
        &[],
        plan,
        &meta_bits,
        &reg_widths,
        &mut proof,
    )?;
    // Translation-validate the prefetch section: it must be exactly the
    // canonical projection of the (already proven) pre stream. A stale or
    // hand-edited section could execute side-effecting ops off the packet
    // path, so equality with a fresh derivation is required, not assumed.
    if plan.prefetch != crate::plan::derive_prefetch(&plan.pre) {
        return Err(SymCheckError::Malformed {
            traversal: "pre",
            node: 0,
            ip: u32::MAX,
            detail: "prefetch section is not the canonical pre-traversal projection",
        });
    }
    Ok(proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::tests::fixture;
    use crate::plan::PlanOptions;

    #[test]
    fn fixture_proves_fused_and_unfused() {
        for fuse in [true, false] {
            let prog = fixture();
            let plan = ExecPlan::build_with(&prog, PlanOptions { fuse }).expect("builds");
            let proof = check_plan(&prog, &plan).expect("plan ≡ AST");
            assert!(proof.nodes >= 5, "proved {} nodes", proof.nodes);
            assert!(proof.terms > 0);
        }
    }

    #[test]
    fn mismatched_program_is_rejected() {
        // Compile one program, validate against a program whose AST
        // computes a different key expression: the proof must fail.
        let prog = fixture();
        let plan = ExecPlan::build(&prog).expect("builds");
        let mut other = fixture();
        if let P4Stmt::SetMeta(_, e) = &mut other.pre_nodes[0].stmts[1] {
            *e = P4Expr::Header(gallium_mir::HeaderField::IpDaddr);
        } else {
            panic!("fixture shape changed");
        }
        assert!(check_plan(&other, &plan).is_err());
    }

    #[test]
    fn non_canonical_prefetch_is_rejected() {
        // Dropping the prefetch section entirely is just as non-canonical
        // as corrupting it: validation re-derives the projection from the
        // committed stream and requires exact agreement.
        let prog = fixture();
        let mut plan = ExecPlan::build(&prog).expect("builds");
        assert!(plan.prefetch.is_some(), "fixture has a static projection");
        plan.prefetch = None;
        assert!(matches!(
            check_plan(&prog, &plan),
            Err(SymCheckError::Malformed { detail, .. })
                if detail.contains("prefetch")
        ));
    }
}
