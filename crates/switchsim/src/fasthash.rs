//! Deterministic, non-cryptographic hashing for the dataplane hash maps.
//!
//! `std::collections::HashMap`'s default SipHash costs more per probe than
//! the rest of a warm table lookup combined — defensible for maps keyed by
//! untrusted input, wasted on a simulator hashing a handful of match-key
//! words per packet. [`FxHasher64`] is the word-at-a-time multiply-xor
//! scheme popularized by rustc: one rotate, one xor, one multiply per
//! 64-bit word. It is also *seedless*, so bucket order (and therefore any
//! iteration-order-dependent observable) is identical across runs —
//! determinism the differential harnesses rely on.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for the dataplane maps ([`crate::RtTable`] main/shadow,
/// the switch route table).
pub type FastBuildHasher = BuildHasherDefault<FxHasher64>;

/// Multiplier from the golden-ratio family; odd, high bit entropy.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher (see module docs). Not DoS-hardened
/// — only for maps whose keys the simulator itself constructs.
#[derive(Debug, Clone, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let b = FastBuildHasher::default();
        let h1 = b.hash_one([1u64, 2, 3].as_slice());
        let h2 = FastBuildHasher::default().hash_one([1u64, 2, 3].as_slice());
        assert_eq!(h1, h2);
        assert_ne!(h1, b.hash_one([1u64, 2, 4].as_slice()));
    }

    #[test]
    fn byte_stream_matches_word_stream_for_aligned_input() {
        // `write` folds little-endian 8-byte chunks exactly like
        // `write_u64`, so hashing equal content through either entry point
        // agrees.
        let mut a = FxHasher64::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher64::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distributes_small_keys() {
        // Sanity: sequential small keys should not collide.
        let b = FastBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(b.hash_one([i].as_slice()));
        }
        assert_eq!(seen.len(), 1000);
    }
}
