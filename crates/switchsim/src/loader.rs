//! Load-time resource validation.
//!
//! The switch re-checks the compiler's resource arithmetic independently —
//! if a generated program oversubscribes the silicon the load fails, just
//! as the Tofino SDK rejects oversized programs. This is the property-test
//! anchor for invariant 3 in DESIGN.md: *every* program the partitioner
//! emits for a model must load into a switch built with that model.

use gallium_p4::P4Program;
use gallium_partition::SwitchModel;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Table SRAM demand exceeds the model (Constraint 1).
    Memory {
        /// Bits required.
        needed: usize,
        /// Bits available.
        available: usize,
    },
    /// Longest traversal exceeds the pipeline depth (Constraint 2).
    PipelineDepth {
        /// Stages required.
        needed: usize,
        /// Stages available.
        available: usize,
    },
    /// A transfer-header layout exceeds the MTU headroom budget
    /// (Constraint 5).
    TransferHeader {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Memory { needed, available } => {
                write!(f, "table memory: need {needed} bits, have {available}")
            }
            LoadError::PipelineDepth { needed, available } => {
                write!(f, "pipeline depth: need {needed} stages, have {available}")
            }
            LoadError::TransferHeader { needed, available } => {
                write!(f, "transfer header: need {needed} bytes, budget {available}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Validate `prog` against `model`.
///
/// Per-packet metadata (Constraint 4) is not re-checked here: the hardware
/// reuses scratchpad slots by live range (§4.3.1), so the loader would need
/// the compiler's liveness information to reproduce the exact figure; the
/// compiler enforces it before emitting the program.
pub fn load_check(prog: &P4Program, model: &SwitchModel) -> Result<(), LoadError> {
    let mem = prog.table_memory_bits();
    if mem > model.memory_bits {
        return Err(LoadError::Memory {
            needed: mem,
            available: model.memory_bits,
        });
    }
    let depth = prog.pipeline_depth();
    if depth > model.pipeline_depth {
        return Err(LoadError::PipelineDepth {
            needed: depth,
            available: model.pipeline_depth,
        });
    }
    for layout in [&prog.header_to_server, &prog.header_to_switch] {
        if layout.wire_bytes() > model.transfer_budget_bytes && !layout.fields().is_empty() {
            return Err(LoadError::TransferHeader {
                needed: layout.wire_bytes(),
                available: model.transfer_budget_bytes,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};
    use gallium_partition::partition_program;

    fn minilb_p4(model: &SwitchModel) -> P4Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let staged = partition_program(&p, model).unwrap();
        gallium_p4::generate(&staged).unwrap()
    }

    #[test]
    fn compiled_program_loads_into_its_model() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        load_check(&p4, &model).unwrap();
    }

    #[test]
    fn oversized_table_rejected() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        let starved = SwitchModel::tiny(16, 1024, 800, 20);
        assert!(matches!(
            load_check(&p4, &starved),
            Err(LoadError::Memory { .. })
        ));
    }

    #[test]
    fn too_shallow_pipeline_rejected() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        let shallow = SwitchModel::tiny(1, usize::MAX / 2, 800, 20);
        assert!(matches!(
            load_check(&p4, &shallow),
            Err(LoadError::PipelineDepth { .. })
        ));
    }

    #[test]
    fn compiler_and_loader_agree_for_constrained_models() {
        // Whatever the partitioner produces for a model must load into it.
        for model in [
            SwitchModel::tofino_like(),
            SwitchModel::tiny(8, usize::MAX / 2, 800, 20),
            SwitchModel::tiny(16, usize::MAX / 2, 200, 12),
        ] {
            let p4 = minilb_p4(&model);
            load_check(&p4, &model).unwrap_or_else(|e| {
                panic!("program compiled for {model:?} failed to load: {e}")
            });
        }
    }
}
