//! Load-time resource validation.
//!
//! The switch re-checks the compiler's resource arithmetic independently —
//! if a generated program oversubscribes the silicon the load fails, just
//! as the Tofino SDK rejects oversized programs. This is the property-test
//! anchor for invariant 3 in DESIGN.md: *every* program the partitioner
//! emits for a model must load into a switch built with that model.

use gallium_p4::{P4Program, P4Stmt};
use gallium_partition::SwitchModel;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Table SRAM demand exceeds the model (Constraint 1).
    Memory {
        /// Bits required.
        needed: usize,
        /// Bits available.
        available: usize,
    },
    /// Longest traversal exceeds the pipeline depth (Constraint 2).
    PipelineDepth {
        /// Stages required.
        needed: usize,
        /// Stages available.
        available: usize,
    },
    /// A transfer-header layout exceeds the MTU headroom budget
    /// (Constraint 5).
    TransferHeader {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A pipeline statement referenced a table the program never declares.
    UnknownTable {
        /// The out-of-range index into [`P4Program::tables`].
        index: usize,
        /// Number of declared tables.
        declared: usize,
    },
    /// A pipeline statement referenced a register the program never
    /// declares.
    UnknownRegister {
        /// The out-of-range index into [`P4Program::registers`].
        index: usize,
        /// Number of declared registers.
        declared: usize,
    },
    /// The switch model itself is unusable.
    InvalidModel {
        /// What is wrong with the model.
        reason: String,
    },
    /// The program passed resource validation but could not be lowered to
    /// a compiled execution plan (malformed control flow — dangling node
    /// targets or a cyclic pipeline graph).
    Plan {
        /// What the plan compiler rejected.
        reason: String,
    },
    /// The compiled plan failed symbolic translation validation: it is
    /// not provably equal to the P4 AST it was lowered from
    /// ([`SwitchConfig::validate_plan`](crate::SwitchConfig)).
    PlanEquivalence(crate::symcheck::SymCheckError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Memory { needed, available } => {
                write!(f, "table memory: need {needed} bits, have {available}")
            }
            LoadError::PipelineDepth { needed, available } => {
                write!(f, "pipeline depth: need {needed} stages, have {available}")
            }
            LoadError::TransferHeader { needed, available } => {
                write!(
                    f,
                    "transfer header: need {needed} bytes, budget {available}"
                )
            }
            LoadError::UnknownTable { index, declared } => {
                write!(
                    f,
                    "statement references table #{index}, but only {declared} declared"
                )
            }
            LoadError::UnknownRegister { index, declared } => {
                write!(
                    f,
                    "statement references register #{index}, but only {declared} declared"
                )
            }
            LoadError::InvalidModel { reason } => {
                write!(f, "invalid switch model: {reason}")
            }
            LoadError::Plan { reason } => {
                write!(f, "plan compilation: {reason}")
            }
            LoadError::PlanEquivalence(e) => {
                write!(f, "plan translation validation: {e}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Validate `prog` against `model`.
///
/// Per-packet metadata (Constraint 4) is not re-checked here: the hardware
/// reuses scratchpad slots by live range (§4.3.1), so the loader would need
/// the compiler's liveness information to reproduce the exact figure; the
/// compiler enforces it before emitting the program.
pub fn load_check(prog: &P4Program, model: &SwitchModel) -> Result<(), LoadError> {
    if model.pipeline_depth == 0 {
        return Err(LoadError::InvalidModel {
            reason: "pipeline depth is zero".into(),
        });
    }
    if model.metadata_bits == 0 {
        return Err(LoadError::InvalidModel {
            reason: "metadata budget is zero".into(),
        });
    }
    check_stmt_refs(prog)?;
    let mem = prog.table_memory_bits();
    if mem > model.memory_bits {
        return Err(LoadError::Memory {
            needed: mem,
            available: model.memory_bits,
        });
    }
    let depth = prog.pipeline_depth();
    if depth > model.pipeline_depth {
        return Err(LoadError::PipelineDepth {
            needed: depth,
            available: model.pipeline_depth,
        });
    }
    for layout in [&prog.header_to_server, &prog.header_to_switch] {
        if layout.wire_bytes() > model.transfer_budget_bytes && !layout.fields().is_empty() {
            return Err(LoadError::TransferHeader {
                needed: layout.wire_bytes(),
                available: model.transfer_budget_bytes,
            });
        }
    }
    Ok(())
}

/// Every table/register index a pipeline statement carries must resolve
/// against the program's declarations — a dangling index would make the
/// data plane dereference a table that was never allocated.
fn check_stmt_refs(prog: &P4Program) -> Result<(), LoadError> {
    let tables = prog.tables.len();
    let registers = prog.registers.len();
    for node in prog.pre_nodes.iter().chain(prog.post_nodes.iter()) {
        for stmt in &node.stmts {
            match stmt {
                P4Stmt::TableLookup { table, .. } if *table >= tables => {
                    return Err(LoadError::UnknownTable {
                        index: *table,
                        declared: tables,
                    });
                }
                P4Stmt::RegRead { reg, .. }
                | P4Stmt::RegWrite { reg, .. }
                | P4Stmt::RegFetchAdd { reg, .. }
                    if *reg >= registers =>
                {
                    return Err(LoadError::UnknownRegister {
                        index: *reg,
                        declared: registers,
                    });
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};
    use gallium_partition::partition_program;

    fn minilb_p4(model: &SwitchModel) -> P4Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let p = b.finish().expect("minilb builds");
        let staged = partition_program(&p, model).expect("minilb partitions");
        gallium_p4::generate(&staged).expect("minilb generates")
    }

    #[test]
    fn compiled_program_loads_into_its_model() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        load_check(&p4, &model).expect("loads");
    }

    #[test]
    fn oversized_table_rejected() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        let starved = SwitchModel::tiny(16, 1024, 800, 20);
        assert!(matches!(
            load_check(&p4, &starved),
            Err(LoadError::Memory { .. })
        ));
    }

    #[test]
    fn too_shallow_pipeline_rejected() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        let shallow = SwitchModel::tiny(1, usize::MAX / 2, 800, 20);
        assert!(matches!(
            load_check(&p4, &shallow),
            Err(LoadError::PipelineDepth { .. })
        ));
    }

    #[test]
    fn compiler_and_loader_agree_for_constrained_models() {
        // Whatever the partitioner produces for a model must load into it.
        for model in [
            SwitchModel::tofino_like(),
            SwitchModel::tiny(8, usize::MAX / 2, 800, 20),
            SwitchModel::tiny(16, usize::MAX / 2, 200, 12),
        ] {
            let p4 = minilb_p4(&model);
            let res = load_check(&p4, &model);
            assert!(
                res.is_ok(),
                "program compiled for {model:?} failed to load: {res:?}"
            );
        }
    }

    #[test]
    fn dangling_table_index_rejected() {
        let model = SwitchModel::tofino_like();
        let mut p4 = minilb_p4(&model);
        let bogus = p4.tables.len() + 3;
        if let Some(node) = p4.pre_nodes.first_mut() {
            node.stmts.push(gallium_p4::P4Stmt::TableLookup {
                table: bogus,
                keys: vec![],
                hit_meta: "h".into(),
                value_metas: vec![],
            });
        }
        assert_eq!(
            load_check(&p4, &model),
            Err(LoadError::UnknownTable {
                index: bogus,
                declared: p4.tables.len(),
            })
        );
    }

    #[test]
    fn dangling_register_index_rejected() {
        let model = SwitchModel::tofino_like();
        let mut p4 = minilb_p4(&model);
        let bogus = p4.registers.len();
        if let Some(node) = p4.post_nodes.first_mut() {
            node.stmts.push(gallium_p4::P4Stmt::RegRead {
                reg: bogus,
                dst: "d".into(),
            });
        }
        assert_eq!(
            load_check(&p4, &model),
            Err(LoadError::UnknownRegister {
                index: bogus,
                declared: p4.registers.len(),
            })
        );
    }

    #[test]
    fn degenerate_model_rejected() {
        let model = SwitchModel::tofino_like();
        let p4 = minilb_p4(&model);
        let zero_depth = SwitchModel::tiny(0, usize::MAX / 2, 800, 20);
        assert!(matches!(
            load_check(&p4, &zero_depth),
            Err(LoadError::InvalidModel { .. })
        ));
        let zero_meta = SwitchModel::tiny(16, usize::MAX / 2, 0, 20);
        assert!(matches!(
            load_check(&p4, &zero_meta),
            Err(LoadError::InvalidModel { .. })
        ));
    }
}
