//! The x86 cycle-cost model.
//!
//! Both the Gallium server (executing only the non-offloaded partition) and
//! the FastClick baseline (executing the whole program) are costed with the
//! same per-instruction model, so every comparison in the evaluation is
//! apples-to-apples: the *only* difference between the two systems is which
//! instructions run on the server and how many packets reach it.
//!
//! Calibration targets (documented in EXPERIMENTS.md): a FastClick-style
//! middlebox spends on the order of 1 100–1 400 cycles per packet
//! (≈ 2 Mpps/core at 2.5 GHz), which reproduces the paper's Figure 7
//! baseline curves; map operations dominate, matching the paper's
//! observation that offloading a table lookup buys more than offloading an
//! integer addition (§7).

use gallium_mir::{Op, Program, ValueId};

/// Per-operation cycle costs plus fixed per-packet overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// CPU frequency in Hz (cycles per second).
    pub cpu_hz: u64,
    /// Fixed per-packet cost: NIC descriptor handling, prefetch, Click
    /// element graph traversal (cycles).
    pub fixed_per_packet: u64,
    /// Hash-map find/insert/erase (hash + probe + cache misses).
    pub map_op: u64,
    /// Vector index / length.
    pub vec_op: u64,
    /// Register (global scalar) access.
    pub reg_op: u64,
    /// Software hash of a handful of words.
    pub hash_op: u64,
    /// Packet header field read/write.
    pub header_op: u64,
    /// ALU / constant / cast / φ.
    pub alu_op: u64,
    /// Send/drop action (tx descriptor work).
    pub action_op: u64,
    /// Checksum recomputation.
    pub checksum_op: u64,
    /// Payload scan cost per byte of pattern window.
    pub payload_scan_per_byte: u64,
}

impl CostModel {
    /// The calibrated model used throughout the evaluation.
    pub fn calibrated() -> Self {
        CostModel {
            cpu_hz: 2_500_000_000, // Intel Xeon E5-2680 @ 2.5 GHz (§6.3)
            fixed_per_packet: 620,
            map_op: 160,
            vec_op: 10,
            reg_op: 8,
            hash_op: 45,
            header_op: 9,
            alu_op: 2,
            action_op: 45,
            checksum_op: 70,
            payload_scan_per_byte: 2,
        }
    }

    /// Cycles for one executed instruction.
    pub fn op_cycles(&self, op: &Op) -> u64 {
        match op {
            Op::MapGet { .. } | Op::MapPut { .. } | Op::MapDel { .. } => self.map_op,
            // Software LPM: a trie/linear walk — comparable to a map probe.
            Op::LpmGet { .. } => self.map_op,
            Op::VecGet { .. } | Op::VecLen { .. } => self.vec_op,
            Op::RegRead { .. } | Op::RegWrite { .. } | Op::RegFetchAdd { .. } | Op::Now => {
                self.reg_op
            }
            Op::Hash { .. } => self.hash_op,
            Op::ReadField { .. } | Op::WriteField { .. } | Op::ReadPort => self.header_op,
            Op::PayloadMatch { pattern } => {
                // Linear scan of a typical payload window.
                64 * self.payload_scan_per_byte + pattern.len() as u64
            }
            Op::UpdateChecksum => self.checksum_op,
            Op::Send | Op::Drop => self.action_op,
            Op::Const { .. }
            | Op::Bin { .. }
            | Op::Not { .. }
            | Op::Cast { .. }
            | Op::Phi { .. }
            | Op::IsNull { .. }
            | Op::Extract { .. } => self.alu_op,
        }
    }

    /// Cycles to process a packet that executed `executed` instructions of
    /// `prog` (per-packet overhead included).
    pub fn packet_cycles(&self, prog: &Program, executed: &[ValueId]) -> u64 {
        self.fixed_per_packet
            + executed
                .iter()
                .map(|v| self.op_cycles(&prog.func.inst(*v).op))
                .sum::<u64>()
    }

    /// Convert cycles to nanoseconds at the model's clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        cycles * 1_000_000_000 / self.cpu_hz
    }

    /// Packets per second a single core sustains at `cycles_per_packet`.
    pub fn pps_per_core(&self, cycles_per_packet: u64) -> f64 {
        self.cpu_hz as f64 / cycles_per_packet.max(1) as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField, Interpreter, StateStore};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    #[test]
    fn map_ops_dominate_alu() {
        let m = CostModel::calibrated();
        assert!(m.map_op > 20 * m.alu_op);
        assert!(m.map_op > m.hash_op);
    }

    #[test]
    fn full_minilb_packet_lands_in_calibration_band() {
        // A miss-path MiniLB packet should cost on the order of 1 000–1 500
        // cycles under the calibrated model (≈ 2 Mpps/core), matching the
        // FastClick baseline throughput the paper reports.
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let prog = b.finish().unwrap();
        let mut store = StateStore::new(&prog.states);
        store
            .vec_set_all(prog.state_by_name("backends").unwrap(), vec![1, 2, 3])
            .unwrap();
        let mut pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 9,
                daddr: 1,
                sport: 1,
                dport: 2,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            100,
        )
        .build(PortId(0));
        let r = Interpreter::new(&prog)
            .run(&mut pkt, &mut store, 0)
            .unwrap();
        let m = CostModel::calibrated();
        let cycles = m.packet_cycles(&prog, &r.executed);
        assert!(
            (900..1800).contains(&cycles),
            "miss path cost {cycles} outside calibration band"
        );
        let pps = m.pps_per_core(cycles);
        assert!(pps > 1.2e6 && pps < 3.0e6, "pps {pps}");
    }

    #[test]
    fn cycles_to_ns_at_2_5ghz() {
        let m = CostModel::calibrated();
        assert_eq!(m.cycles_to_ns(2500), 1000);
        assert_eq!(m.cycles_to_ns(0), 0);
    }
}
