//! # gallium-server — the middlebox-server runtime
//!
//! Executes the **non-offloaded partition** of a compiled middlebox, the
//! role played by the DPDK application in the paper's deployment:
//!
//! * [`executor`] walks the original CFG executing only server-assigned
//!   instructions, sourcing cross-partition values from the transfer
//!   header and producing the server→switch header for post-processing;
//! * [`runtime`] wraps the executor with packet encap/decap, the
//!   **state-synchronization engine** (write-back staging + atomic bit
//!   flip + main-table fold, §4.3.3), and **output commit** (a packet that
//!   updated replicated state is held until the switch acknowledges the
//!   updates);
//! * [`cost`] is the cycle-cost model used for both the Gallium server and
//!   the FastClick baseline, calibrated so the evaluation reproduces the
//!   paper's Figure 7 / Table 2 shapes;
//! * [`parallel`] is a genuinely multi-threaded FastClick-style runner
//!   (flow-hash sharding over OS threads), used for wall-clock baseline
//!   measurements and shard-vs-sequential equivalence tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod executor;
pub mod parallel;
pub mod plan;
pub mod runtime;

pub use cost::CostModel;
pub use executor::{
    execute_server_partition, execute_server_partition_into, execute_server_partition_planned,
    ExecError, ExecScratch, ServerExec,
};
pub use parallel::{ParallelReference, ParallelStats};
pub use plan::ServerPlan;
pub use runtime::{MiddleboxServer, ReferenceServer, ServerOutput, ServerStats};
