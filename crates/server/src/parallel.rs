//! A real multi-threaded FastClick-style runner.
//!
//! The discrete-event simulator *models* the multi-core baseline with a
//! cycle-cost model; this module *executes* it: `cores` OS threads each own
//! a [`ReferenceServer`] shard, packets are distributed by flow hash
//! (receive-side scaling — each flow's state lives wholly in one shard,
//! exactly how FastClick pins flows to cores to avoid cross-core locking),
//! and per-shard statistics are merged under a lock at the end.
//!
//! Used by the Criterion `dataplane` suite to measure the *wall-clock*
//! packets/second of the interpreter baseline on this machine, and by the
//! test suite to check that sharded execution equals sequential execution.

use crate::cost::CostModel;
use crate::runtime::ReferenceServer;
use crossbeam::channel::{bounded, Sender};
use gallium_mir::{Program, StateStore};
use gallium_net::{builder::extract_five_tuple, Packet};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// Aggregated result of a parallel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParallelStats {
    /// Packets processed across all shards.
    pub packets: u64,
    /// Packets emitted.
    pub emitted: u64,
    /// Modeled cycles consumed across all shards.
    pub cycles: u64,
    /// Final state stores, one per shard (flow-sharded, so their union is
    /// the system state).
    pub shard_stores: Vec<StateStore>,
}

/// A sharded, threaded reference middlebox. Channels carry whole bursts:
/// one send per batch instead of one per packet, and each shard drains a
/// burst through [`ReferenceServer::process_batch`].
pub struct ParallelReference {
    senders: Vec<Sender<Vec<Packet>>>,
    handles: Vec<thread::JoinHandle<(u64, u64, u64, StateStore)>>,
}

impl ParallelReference {
    /// Spawn `cores` shards of `prog`. `configure` runs once per shard to
    /// install read-only configuration (rules, backends) — flow-owned
    /// state then grows independently per shard.
    pub fn spawn<F>(prog: &Program, cores: usize, cost: CostModel, configure: F) -> Self
    where
        F: Fn(&mut StateStore) + Send + Sync + 'static,
    {
        assert!(cores >= 1);
        let configure = Arc::new(configure);
        let mut senders = Vec::with_capacity(cores);
        let mut handles = Vec::with_capacity(cores);
        for _ in 0..cores {
            let (tx, rx) = bounded::<Vec<Packet>>(1024);
            let prog = prog.clone();
            let configure = Arc::clone(&configure);
            let handle = thread::spawn(move || {
                let mut server = ReferenceServer::new(prog, cost);
                configure(&mut server.store);
                let mut emitted = 0u64;
                let mut packets = 0u64;
                // One emissions buffer per shard, recycled across bursts
                // (the server's interpreter register file is likewise
                // reused inside `process_batch_into`).
                let mut out: Vec<Packet> = Vec::new();
                while let Ok(burst) = rx.recv() {
                    packets += burst.len() as u64;
                    out.clear();
                    if server.process_batch_into(burst, 0, &mut out).is_ok() {
                        emitted += out.len() as u64;
                    }
                }
                (packets, emitted, server.stats.cycles, server.store)
            });
            senders.push(tx);
            handles.push(handle);
        }
        ParallelReference { senders, handles }
    }

    /// Shard index for a packet: flow-hash RSS.
    fn shard_of(&self, pkt: &Packet) -> usize {
        let h = extract_five_tuple(pkt)
            .map(|t| {
                let w = t.to_words();
                gallium_mir::interp::hash_values(&w, 64)
            })
            .unwrap_or(0);
        (h % self.senders.len() as u64) as usize
    }

    /// Feed one packet (blocks if the shard's queue is full — modelling
    /// NIC backpressure rather than drops).
    pub fn feed(&self, pkt: Packet) {
        let shard = self.shard_of(&pkt);
        self.senders[shard].send(vec![pkt]).expect("shard alive");
    }

    /// Feed a burst: packets are grouped by shard (preserving per-shard
    /// arrival order, as RSS hardware does) and each group travels as one
    /// channel send.
    pub fn feed_batch(&self, pkts: impl IntoIterator<Item = Packet>) {
        let mut groups: Vec<Vec<Packet>> = vec![Vec::new(); self.senders.len()];
        for pkt in pkts {
            let shard = self.shard_of(&pkt);
            groups[shard].push(pkt);
        }
        for (shard, burst) in groups.into_iter().enumerate() {
            if !burst.is_empty() {
                self.senders[shard].send(burst).expect("shard alive");
            }
        }
    }

    /// Close the queues and join the shards.
    pub fn finish(self) -> ParallelStats {
        drop(self.senders);
        let merged = Mutex::new(ParallelStats::default());
        for h in self.handles {
            let (packets, emitted, cycles, store) = h.join().expect("shard thread");
            let mut m = merged.lock();
            m.packets += packets;
            m.emitted += emitted;
            m.cycles += cycles;
            m.shard_stores.push(store);
        }
        merged.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::Interpreter;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn minilb() -> gallium_middleboxes::minilb::MiniLb {
        gallium_middleboxes::minilb::minilb()
    }

    fn pkt(i: u32) -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A00_0000 + (i % 37),
                daddr: 0x0B00_0000 + (i % 11),
                sport: 1000 + (i % 7) as u16,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(1))
    }

    #[test]
    fn sharded_equals_sequential() {
        let lb = minilb();
        let backends = lb.backends;
        let configure = move |s: &mut StateStore| {
            s.vec_set_all(backends, vec![1, 2, 3, 4]).unwrap();
        };

        // Sequential oracle.
        let mut store = StateStore::new(&lb.prog.states);
        configure(&mut store);
        let interp = Interpreter::new(&lb.prog);
        let mut seq_emitted = 0u64;
        for i in 0..500 {
            let r = interp.run(&mut pkt(i), &mut store, 0).unwrap();
            seq_emitted += u64::from(r.sent().is_some());
        }

        // Parallel run.
        let par = ParallelReference::spawn(&lb.prog, 4, CostModel::calibrated(), configure);
        for i in 0..500 {
            par.feed(pkt(i));
        }
        let stats = par.finish();
        assert_eq!(stats.packets, 500);
        assert_eq!(stats.emitted, seq_emitted);
        assert_eq!(stats.shard_stores.len(), 4);
        // MiniLB's key (low bits of saddr^daddr) is coarser than the RSS
        // flow hash, so shards legitimately hold overlapping keys — the
        // classic per-core-state duplication of RSS sharding. What must
        // hold: every shard's decision agrees with the sequential oracle
        // (MiniLB's backend choice is deterministic per key), and the
        // shards jointly cover exactly the oracle's key set.
        let map = lb.map;
        let seq: std::collections::HashMap<_, _> =
            store.map_entries(map).unwrap().into_iter().collect();
        let mut covered = std::collections::HashSet::new();
        for shard in &stats.shard_stores {
            for (k, v) in shard.map_entries(map).unwrap() {
                assert_eq!(seq.get(&k), Some(&v), "shard disagrees on key {k:?}");
                covered.insert(k);
            }
        }
        assert_eq!(covered.len(), seq.len(), "shards cover the oracle's keys");
    }

    #[test]
    fn feed_batch_equals_per_packet_feed() {
        let lb = minilb();
        let backends = lb.backends;
        let configure = move |s: &mut StateStore| {
            s.vec_set_all(backends, vec![5, 6, 7]).unwrap();
        };
        let per_pkt = ParallelReference::spawn(&lb.prog, 3, CostModel::calibrated(), configure);
        for i in 0..200 {
            per_pkt.feed(pkt(i));
        }
        let a = per_pkt.finish();
        let batched = ParallelReference::spawn(&lb.prog, 3, CostModel::calibrated(), configure);
        batched.feed_batch((0..200).map(pkt));
        let b = batched.finish();
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.shard_stores, b.shard_stores);
    }

    #[test]
    fn single_shard_is_degenerate_sequential() {
        let lb = minilb();
        let backends = lb.backends;
        let par = ParallelReference::spawn(&lb.prog, 1, CostModel::calibrated(), move |s| {
            s.vec_set_all(backends, vec![9]).unwrap();
        });
        for i in 0..50 {
            par.feed(pkt(i));
        }
        let stats = par.finish();
        assert_eq!(stats.packets, 50);
        assert_eq!(stats.emitted, 50);
        assert!(stats.cycles > 0);
    }
}
