//! Execution of the non-offloaded partition.
//!
//! The server walks the *original* CFG — exactly the partitioned CFGs of
//! Figure 4 — executing only server-assigned instructions:
//!
//! * operands computed by the pre-processing partition are read from the
//!   switch→server transfer header;
//! * branches whose condition belongs to this or an earlier partition are
//!   taken normally (the condition bit rides the header when pre computed
//!   it); branches that only steer offloaded statements are skipped to
//!   their join point;
//! * updates to **replicated** state are applied locally *and* recorded,
//!   so the runtime can push them to the switch through the write-back
//!   protocol.

use crate::plan::ServerPlan;
use gallium_mir::interp::{
    hash_values, read_header_field, refresh_ip_checksum, transport_payload, write_header_field,
};
use gallium_mir::types::mask_to_width;
use gallium_mir::{MirError, Op, RtVal, StateId, StateStore, Terminator, ValueId};
use gallium_net::{Packet, TransferValues};
use gallium_partition::transfer::{load_rtval, store_rtval};
use gallium_partition::{StagedProgram, StatePlacement};

/// Errors raised while the server processes one offloaded packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The switch→server transfer header could not be detached.
    Decap {
        /// What the header parser reported.
        reason: String,
    },
    /// The server→switch transfer header could not be attached.
    Encap {
        /// What the header writer reported.
        reason: String,
    },
    /// A server instruction tried to mutate state the partitioner placed
    /// exclusively on the switch. The write-back protocol (§4.3.3) has no
    /// channel to reconcile such an update, so the executor rejects it
    /// instead of silently desynchronizing the two halves.
    UnexpectedUpdate {
        /// The offending instruction.
        value: ValueId,
        /// Name of the switch-only state.
        state: String,
    },
    /// The underlying MIR execution faulted.
    Mir(MirError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Decap { reason } => write!(f, "decapsulation failed: {reason}"),
            ExecError::Encap { reason } => write!(f, "encapsulation failed: {reason}"),
            ExecError::UnexpectedUpdate { value, state } => write!(
                f,
                "{value}: unexpected update to switch-only state `{state}`"
            ),
            ExecError::Mir(e) => write!(f, "server execution: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Mir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MirError> for ExecError {
    fn from(e: MirError) -> Self {
        ExecError::Mir(e)
    }
}

/// A recorded update to replicated state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateUpdate {
    /// Map insert/overwrite.
    MapPut {
        /// The state.
        state: StateId,
        /// Key components.
        key: Vec<u64>,
        /// Value components.
        value: Vec<u64>,
    },
    /// Map delete.
    MapDel {
        /// The state.
        state: StateId,
        /// Key components.
        key: Vec<u64>,
    },
    /// Register write (post-update value).
    RegSet {
        /// The state.
        state: StateId,
        /// New value.
        value: u64,
    },
}

/// Result of running the server partition over one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerExec {
    /// Packets emitted by server-side `send`s (snapshots).
    pub emissions: Vec<Packet>,
    /// Whether a server-side `drop` executed.
    pub dropped: bool,
    /// Executed instruction trace (for cycle accounting).
    pub executed: Vec<ValueId>,
    /// Values for the server→switch transfer header.
    pub out_values: TransferValues,
    /// Updates to replicated state, in execution order.
    pub replicated_updates: Vec<StateUpdate>,
}

/// Run the non-offloaded partition. `pkt` must already be decapsulated;
/// `in_values` holds the switch→server header contents.
///
/// Builds a transient [`ServerPlan`] per call; packet-rate callers should
/// build the plan once and use
/// [`execute_server_partition_planned`] instead (as
/// [`crate::MiddleboxServer`] does).
pub fn execute_server_partition(
    staged: &StagedProgram,
    store: &mut StateStore,
    pkt: &mut Packet,
    in_values: &TransferValues,
    now_ns: u64,
) -> Result<ServerExec, ExecError> {
    let plan = ServerPlan::build(staged);
    execute_server_partition_planned(staged, &plan, store, pkt, in_values, now_ns)
}

/// Reusable per-instruction value scratch for
/// [`execute_server_partition_into`]: one slot per MIR instruction,
/// allocated once per server and recycled across packets (`clear` +
/// `resize` keep the capacity).
#[derive(Debug, Default)]
pub struct ExecScratch {
    vals: Vec<Option<RtVal>>,
}

impl ExecScratch {
    /// Empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        ExecScratch::default()
    }

    fn reset(&mut self, n: usize) {
        self.vals.clear();
        self.vals.resize(n, None);
    }
}

/// Run the non-offloaded partition against a pre-built [`ServerPlan`]
/// (the postdominator tree and the per-block partition filter are reused
/// across packets instead of being recomputed).
///
/// Allocates a fresh [`ExecScratch`] per call; packet-rate callers should
/// hold one and use [`execute_server_partition_into`] instead (as
/// [`crate::MiddleboxServer`] does).
pub fn execute_server_partition_planned(
    staged: &StagedProgram,
    plan: &ServerPlan,
    store: &mut StateStore,
    pkt: &mut Packet,
    in_values: &TransferValues,
    now_ns: u64,
) -> Result<ServerExec, ExecError> {
    execute_server_partition_into(
        staged,
        plan,
        store,
        pkt,
        in_values,
        now_ns,
        &mut ExecScratch::new(),
    )
}

/// [`execute_server_partition_planned`] with a caller-owned value scratch,
/// so steady-state execution performs no per-packet value-file allocation.
#[allow(clippy::too_many_arguments)]
pub fn execute_server_partition_into(
    staged: &StagedProgram,
    plan: &ServerPlan,
    store: &mut StateStore,
    pkt: &mut Packet,
    in_values: &TransferValues,
    now_ns: u64,
    scratch: &mut ExecScratch,
) -> Result<ServerExec, ExecError> {
    let prog = &staged.prog;
    // Reject mutations of switch-only state before touching the store.
    let guard_update = |v: ValueId, sid: StateId| -> Result<(), ExecError> {
        if staged.placement_of(sid) == StatePlacement::SwitchOnly {
            return Err(ExecError::UnexpectedUpdate {
                value: v,
                state: prog.states[sid.0 as usize].name.clone(),
            });
        }
        Ok(())
    };
    let f = &prog.func;
    let ipdom = &plan.ipdom;

    scratch.reset(f.insts.len());
    let vals = &mut scratch.vals;
    let mut exec = ServerExec {
        emissions: Vec::new(),
        dropped: false,
        executed: Vec::new(),
        out_values: TransferValues::default(),
        replicated_updates: Vec::new(),
    };

    // Operand resolution: locally computed, else from the wire.
    macro_rules! resolve {
        ($vals:expr, $u:expr) => {
            match &$vals[$u.0 as usize] {
                Some(v) => Ok(v.clone()),
                None => load_rtval(prog, in_values, $u).ok_or_else(|| {
                    MirError::Fault(format!("operand {} neither local nor transferred", $u))
                }),
            }
        };
    }

    let mut cur = f.entry;
    let mut prev: Option<gallium_mir::BlockId> = None;
    let mut steps = 0usize;
    let budget = 100_000usize;
    loop {
        let block = f.block(cur);
        for &v in &plan.block_insts[cur.0 as usize] {
            steps += 1;
            if steps > budget {
                return Err(MirError::StepBudgetExceeded.into());
            }
            let inst = f.inst(v);
            let result: RtVal =
                match &inst.op {
                    Op::Phi { incoming } => {
                        let pb = prev.ok_or_else(|| {
                            MirError::Fault(format!("{v}: phi reached without predecessor"))
                        })?;
                        let (_, pv) = incoming.iter().find(|(b, _)| *b == pb).ok_or_else(|| {
                            MirError::Fault(format!("{v}: no phi edge from {pb}"))
                        })?;
                        resolve!(vals, *pv)?
                    }
                    Op::Const { value, .. } => RtVal::Int(*value),
                    Op::Bin { op, a, b } => {
                        let w = plan.width_of(v);
                        RtVal::Int(op.eval(
                            resolve!(vals, *a)?.as_int()?,
                            resolve!(vals, *b)?.as_int()?,
                            w,
                        ))
                    }
                    Op::Not { a } => {
                        let w = plan.width_of(v);
                        RtVal::Int(mask_to_width(!resolve!(vals, *a)?.as_int()?, w))
                    }
                    Op::Cast { a, width } => {
                        RtVal::Int(mask_to_width(resolve!(vals, *a)?.as_int()?, *width))
                    }
                    Op::ReadField { field } => RtVal::Int(read_header_field(pkt.bytes(), *field)),
                    Op::WriteField { field, value } => {
                        let x = mask_to_width(resolve!(vals, *value)?.as_int()?, field.bits());
                        write_header_field(pkt.bytes_mut(), *field, x);
                        RtVal::Unit
                    }
                    Op::ReadPort => RtVal::Int(u64::from(pkt.ingress.0)),
                    Op::PayloadMatch { pattern } => {
                        let payload = transport_payload(pkt.bytes());
                        let found = !pattern.is_empty()
                            && payload.windows(pattern.len()).any(|w| w == &pattern[..]);
                        RtVal::Int(u64::from(found))
                    }
                    Op::MapGet { map, key } => {
                        let k = resolve_ints(vals, in_values, prog, key)?;
                        RtVal::MapRes(store.map_get(*map, &k)?)
                    }
                    Op::LpmGet { table, key } => {
                        let k = resolve!(vals, *key)?.as_int()?;
                        let key_width = match &prog.states[table.0 as usize].kind {
                            gallium_mir::StateKind::LpmMap { key_width, .. } => *key_width,
                            _ => 64,
                        };
                        RtVal::MapRes(store.lpm_get(*table, k, key_width)?)
                    }
                    Op::IsNull { a } => match resolve!(vals, *a)? {
                        RtVal::MapRes(r) => RtVal::Int(u64::from(r.is_none())),
                        other => {
                            return Err(MirError::Fault(format!("{v}: is_null on {other:?}")).into())
                        }
                    },
                    Op::Extract { a, index } => match resolve!(vals, *a)? {
                        RtVal::MapRes(Some(r)) => RtVal::Int(*r.get(*index).ok_or_else(|| {
                            MirError::Fault(format!("{v}: extract out of range"))
                        })?),
                        RtVal::MapRes(None) => {
                            return Err(MirError::Fault(format!("{v}: null dereference")).into())
                        }
                        other => {
                            return Err(MirError::Fault(format!("{v}: extract on {other:?}")).into())
                        }
                    },
                    Op::MapPut { map, key, value } => {
                        guard_update(v, *map)?;
                        let k = resolve_ints(vals, in_values, prog, key)?;
                        let val = resolve_ints(vals, in_values, prog, value)?;
                        store.map_put(*map, k.clone(), val.clone())?;
                        if staged.placement_of(*map) == StatePlacement::Replicated {
                            exec.replicated_updates.push(StateUpdate::MapPut {
                                state: *map,
                                key: k,
                                value: val,
                            });
                        }
                        RtVal::Unit
                    }
                    Op::MapDel { map, key } => {
                        guard_update(v, *map)?;
                        let k = resolve_ints(vals, in_values, prog, key)?;
                        store.map_del(*map, &k)?;
                        if staged.placement_of(*map) == StatePlacement::Replicated {
                            exec.replicated_updates.push(StateUpdate::MapDel {
                                state: *map,
                                key: k,
                            });
                        }
                        RtVal::Unit
                    }
                    Op::VecGet { vec, index } => {
                        let i = resolve!(vals, *index)?.as_int()? as usize;
                        RtVal::Int(store.vec_get(*vec, i)?)
                    }
                    Op::VecLen { vec } => RtVal::Int(store.vec_len(*vec)? as u64),
                    Op::RegRead { reg } => RtVal::Int(store.reg_read(*reg)?),
                    Op::RegWrite { reg, value } => {
                        guard_update(v, *reg)?;
                        let x = resolve!(vals, *value)?.as_int()?;
                        store.reg_write(*reg, x)?;
                        if staged.placement_of(*reg) == StatePlacement::Replicated {
                            exec.replicated_updates.push(StateUpdate::RegSet {
                                state: *reg,
                                value: x,
                            });
                        }
                        RtVal::Unit
                    }
                    Op::RegFetchAdd { reg, delta } => {
                        guard_update(v, *reg)?;
                        let d = resolve!(vals, *delta)?.as_int()?;
                        let old = store.reg_fetch_add(*reg, d)?;
                        if staged.placement_of(*reg) == StatePlacement::Replicated {
                            exec.replicated_updates.push(StateUpdate::RegSet {
                                state: *reg,
                                value: store.reg_read(*reg)?,
                            });
                        }
                        RtVal::Int(old)
                    }
                    Op::Hash { inputs, width } => {
                        let ins = resolve_ints(vals, in_values, prog, inputs)?;
                        RtVal::Int(hash_values(&ins, *width))
                    }
                    Op::Now => RtVal::Int(now_ns),
                    Op::UpdateChecksum => {
                        refresh_ip_checksum(pkt.bytes_mut());
                        RtVal::Unit
                    }
                    Op::Send => {
                        exec.emissions.push(pkt.clone());
                        RtVal::Unit
                    }
                    Op::Drop => {
                        exec.dropped = true;
                        RtVal::Unit
                    }
                };
            vals[v.0 as usize] = Some(result);
            exec.executed.push(v);
        }

        // Terminator.
        match &block.term {
            Terminator::Return => break,
            Terminator::Jump(b) => {
                prev = Some(cur);
                cur = *b;
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let available =
                    vals[cond.0 as usize].is_some() || load_rtval(prog, in_values, *cond).is_some();
                if available {
                    let c = resolve!(vals, *cond)?.as_int()?;
                    prev = Some(cur);
                    cur = if c != 0 { *then_bb } else { *else_bb };
                } else {
                    // Branch steers only offloaded statements: skip to join.
                    match ipdom[cur.0 as usize] {
                        Some(j) if j != cur => {
                            prev = None; // no φ of ours can live at this join
                            cur = j;
                        }
                        _ => break,
                    }
                }
            }
        }
        steps += 1;
        if steps > budget {
            return Err(MirError::StepBudgetExceeded.into());
        }
    }

    // Populate the outgoing header.
    for &v in &staged.to_switch_values {
        let rt = match &vals[v.0 as usize] {
            Some(rt) => Some(rt.clone()),
            None => load_rtval(prog, in_values, v), // pass-through from pre
        };
        if let Some(rt) = rt {
            store_rtval(prog, &mut exec.out_values, v, &rt);
        }
    }
    Ok(exec)
}

fn resolve_ints(
    vals: &[Option<RtVal>],
    in_values: &TransferValues,
    prog: &gallium_mir::Program,
    ids: &[ValueId],
) -> Result<Vec<u64>, MirError> {
    ids.iter()
        .map(|u| {
            match &vals[u.0 as usize] {
                Some(v) => v.clone(),
                None => load_rtval(prog, in_values, *u).ok_or_else(|| {
                    MirError::Fault(format!("operand {u} neither local nor transferred"))
                })?,
            }
            .as_int()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};
    use gallium_partition::{partition_program, Partition, SwitchModel};

    fn minilb_staged() -> StagedProgram {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let p = b.finish().expect("minilb builds");
        partition_program(&p, &SwitchModel::tofino_like()).expect("minilb partitions")
    }

    fn pkt() -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A000001,
                daddr: 0x0A000099,
                sport: 1,
                dport: 2,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            100,
        )
        .build(PortId(1))
    }

    #[test]
    fn miss_path_computes_backend_and_records_update() {
        let staged = minilb_staged();
        let mut store = StateStore::new(&staged.prog.states);
        let backends = staged.prog.state_by_name("backends").expect("declared");
        store
            .vec_set_all(backends, vec![0xC0A80001, 0xC0A80002, 0xC0A80003])
            .expect("fits");
        // Header from the switch: miss bit + hash32 + key.
        let mut in_values = TransferValues::default();
        let hash32 = 0x0A000001u64 ^ 0x0A000099;
        in_values.set("v7", 1);
        in_values.set("v2", hash32);
        in_values.set("v5", hash32 & 0xFFFF);
        let mut p = pkt();
        let exec =
            execute_server_partition(&staged, &mut store, &mut p, &in_values, 0).expect("runs");
        // The server computed idx = hash % 3 and picked that backend.
        let expect = [0xC0A80001u64, 0xC0A80002, 0xC0A80003][(hash32 % 3) as usize];
        assert_eq!(exec.out_values.get("v13"), Some(expect));
        // Branch bit passes through to post.
        assert_eq!(exec.out_values.get("v7"), Some(1));
        // The replicated map update was recorded.
        assert_eq!(exec.replicated_updates.len(), 1);
        let StateUpdate::MapPut { key, value, .. } = &exec.replicated_updates[0] else {
            unreachable!("update {:?} is not a MapPut", exec.replicated_updates[0]);
        };
        assert_eq!(key, &vec![hash32 & 0xFFFF]);
        assert_eq!(value, &vec![expect]);
        // Local map updated too.
        let map = staged.prog.state_by_name("map").expect("declared");
        assert_eq!(store.map_len(map).expect("declared"), 1);
        // The server's own trace contains only non-offloaded statements.
        for v in &exec.executed {
            assert_eq!(staged.partition_of(*v), Partition::NonOffloaded);
        }
        // No server-side send: the send on the miss path is post-processing.
        assert!(exec.emissions.is_empty());
    }

    #[test]
    fn hit_path_executes_nothing_on_server() {
        // A hit packet would never be forwarded, but even if it were the
        // server partition does no work: the branch bit says "hit" and the
        // hit arm is entirely pre.
        let staged = minilb_staged();
        let mut store = StateStore::new(&staged.prog.states);
        store
            .vec_set_all(
                staged.prog.state_by_name("backends").expect("declared"),
                vec![1],
            )
            .expect("fits");
        let mut in_values = TransferValues::default();
        in_values.set("v7", 0); // hit
        in_values.set("v2", 0);
        in_values.set("v5", 0);
        let mut p = pkt();
        let exec =
            execute_server_partition(&staged, &mut store, &mut p, &in_values, 0).expect("runs");
        assert!(exec.executed.is_empty());
        assert!(exec.replicated_updates.is_empty());
    }

    #[test]
    fn missing_transfer_value_faults() {
        let staged = minilb_staged();
        let mut store = StateStore::new(&staged.prog.states);
        store
            .vec_set_all(
                staged.prog.state_by_name("backends").expect("declared"),
                vec![1],
            )
            .expect("fits");
        let mut in_values = TransferValues::default();
        in_values.set("v7", 1); // miss, but hash32/key absent
        let mut p = pkt();
        assert!(matches!(
            execute_server_partition(&staged, &mut store, &mut p, &in_values, 0),
            Err(ExecError::Mir(MirError::Fault(_)))
        ));
    }

    #[test]
    fn update_to_switch_only_state_rejected() {
        // Mangle the staging so the map the server writes on the miss path
        // is declared switch-only: the executor must refuse the update
        // rather than desynchronize the two halves.
        let mut staged = minilb_staged();
        let map = staged.prog.state_by_name("map").expect("declared");
        staged.placements[map.0 as usize] = StatePlacement::SwitchOnly;
        let mut store = StateStore::new(&staged.prog.states);
        store
            .vec_set_all(
                staged.prog.state_by_name("backends").expect("declared"),
                vec![1],
            )
            .expect("fits");
        let mut in_values = TransferValues::default();
        let hash32 = 0x0A000001u64 ^ 0x0A000099;
        in_values.set("v7", 1);
        in_values.set("v2", hash32);
        in_values.set("v5", hash32 & 0xFFFF);
        let mut p = pkt();
        let err = execute_server_partition(&staged, &mut store, &mut p, &in_values, 0)
            .expect_err("switch-only update must be rejected");
        let ExecError::UnexpectedUpdate { state, .. } = &err else {
            unreachable!("wrong error {err:?}");
        };
        assert_eq!(state, "map");
        // The store must be untouched.
        assert_eq!(store.map_len(map).expect("declared"), 0);
    }
}
