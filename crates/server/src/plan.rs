//! Pre-lowered execution plan for the server partition.
//!
//! [`crate::executor::execute_server_partition`] used to rebuild the CFG,
//! recompute the postdominator tree, and re-filter every block's
//! instruction list against the partition map for *every packet*. All of
//! that is a pure function of the staged program, so [`ServerPlan`]
//! computes it once — at [`crate::MiddleboxServer`] construction — and the
//! per-packet walk just indexes into it.

use gallium_mir::cfg::Cfg;
use gallium_mir::{BlockId, ValueId};
use gallium_partition::{Partition, StagedProgram};

/// The per-program constants the server's packet walk needs: the
/// postdominator tree (for skipping branches that steer only offloaded
/// statements) and, per block, the instructions assigned to the
/// non-offloaded partition.
#[derive(Debug, Clone)]
pub struct ServerPlan {
    /// Immediate postdominator per block (`cfg.postdominators()` output).
    pub(crate) ipdom: Vec<Option<BlockId>>,
    /// Per block, the instructions the server actually executes — the
    /// block's instruction list pre-filtered to `Partition::NonOffloaded`.
    pub(crate) block_insts: Vec<Vec<ValueId>>,
    /// Owning block per server-executed instruction (`u32::MAX` for
    /// instructions the server never runs). Lets the flight recorder turn
    /// an executed-instruction list back into block-level events without
    /// touching the executor's walk.
    inst_block: Vec<u32>,
    /// Evaluation width per instruction (`inst.ty.int_width()` defaulted
    /// to 64), cached so the per-packet arithmetic path never re-derives
    /// it from the type.
    widths: Vec<u8>,
}

impl ServerPlan {
    /// Lower `staged` into a server execution plan.
    pub fn build(staged: &StagedProgram) -> Self {
        let f = &staged.prog.func;
        let cfg = Cfg::new(f);
        let ipdom = cfg.postdominators();
        let block_insts: Vec<Vec<ValueId>> = f
            .blocks
            .iter()
            .map(|b| {
                b.insts
                    .iter()
                    .copied()
                    .filter(|&v| staged.partition_of(v) == Partition::NonOffloaded)
                    .collect()
            })
            .collect();
        let max_inst = block_insts
            .iter()
            .flatten()
            .map(|v| v.0 as usize)
            .max()
            .map_or(0, |m| m + 1);
        let mut inst_block = vec![u32::MAX; max_inst];
        for (bi, insts) in block_insts.iter().enumerate() {
            for v in insts {
                inst_block[v.0 as usize] = bi as u32;
            }
        }
        let widths = f
            .insts
            .iter()
            .map(|i| i.ty.int_width().unwrap_or(64))
            .collect();
        ServerPlan {
            ipdom,
            block_insts,
            inst_block,
            widths,
        }
    }

    /// Cached evaluation width of an instruction.
    #[inline]
    pub fn width_of(&self, v: ValueId) -> u8 {
        self.widths.get(v.0 as usize).copied().unwrap_or(64)
    }

    /// Total server-assigned instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.block_insts.iter().map(Vec::len).sum()
    }

    /// The block owning a server-executed instruction, if any.
    pub fn block_of(&self, v: ValueId) -> Option<u32> {
        match self.inst_block.get(v.0 as usize) {
            Some(&b) if b != u32::MAX => Some(b),
            _ => None,
        }
    }
}
