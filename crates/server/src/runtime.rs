//! The server process: decap → execute → sync → encap.

use crate::cost::CostModel;
use crate::executor::{execute_server_partition_into, ExecError, ExecScratch, StateUpdate};
use crate::plan::ServerPlan;
use gallium_mir::{
    Interpreter, MirError, PacketAction, Program, RegFile, StateId, StateMutation, StateStore,
};
use gallium_net::transfer::FLAG_TO_SWITCH;
use gallium_net::{Packet, TransferValues};
use gallium_p4::ControlPlaneOp;
use gallium_partition::{StagedProgram, StatePlacement};
use gallium_switchsim::FLAG_PASSTHROUGH;
use gallium_switchsim::FLAG_RUN_POST;
use gallium_telemetry::names;
use gallium_telemetry::trace::{DropReason, EventKind, Hop, Tracer};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Counters for the server process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Packets received from the switch.
    pub rx: u64,
    /// Packets that performed replicated-state updates (and were therefore
    /// held for output commit).
    pub committed: u64,
    /// Total processing cycles spent.
    pub cycles: u64,
    /// Cache-miss whole-program replays (§7 extension).
    pub replays: u64,
    /// Write-back control-plane operations issued (stage + flip + fold +
    /// clear, §4.3.3).
    pub sync_ops_issued: u64,
    /// Drop attribution: packets the program explicitly dropped on the
    /// server (slow-path executions and replays alike).
    pub drops_program: u64,
}

/// What the server produced for one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerOutput {
    /// Frames to hand back to the switch, already encapsulated.
    pub to_switch: Vec<Packet>,
    /// Control-plane batch implementing the atomic-update protocol for
    /// this packet's replicated-state updates (empty when none).
    pub sync_ops: Vec<ControlPlaneOp>,
    /// Output commit: when true, `to_switch` must not be released until
    /// the switch has applied `sync_ops` up to and including the
    /// visibility-bit flip.
    pub held_for_commit: bool,
    /// Server cycles consumed.
    pub cycles: u64,
}

/// The Gallium middlebox server: executes the non-offloaded partition.
#[derive(Debug)]
pub struct MiddleboxServer {
    staged: StagedProgram,
    /// Pre-lowered walk constants (postdominators, per-block partition
    /// filter), built once at construction.
    plan: ServerPlan,
    /// The server's authoritative state store.
    pub store: StateStore,
    cost: CostModel,
    /// States whose switch table is a cache of the authoritative map
    /// (§7 extension); cache misses trigger whole-program replay here.
    cached_states: Vec<StateId>,
    /// Per-instruction value scratch, reused across packets.
    scratch: ExecScratch,
    /// Interpreter register file for cache-miss replays, reused likewise.
    regs: RegFile,
    /// Flight recorder shared with the rest of the deployment.
    tracer: Option<Arc<Tracer>>,
    /// Trace id of the packet currently in flight, when sampled.
    active_trace: Option<u32>,
    /// Counters.
    pub stats: ServerStats,
}

impl MiddleboxServer {
    /// Build a server for a compiled middlebox.
    pub fn new(staged: StagedProgram, cost: CostModel) -> Self {
        let store = StateStore::new(&staged.prog.states);
        let plan = ServerPlan::build(&staged);
        MiddleboxServer {
            staged,
            plan,
            store,
            cost,
            cached_states: Vec::new(),
            scratch: ExecScratch::new(),
            regs: RegFile::new(),
            tracer: None,
            active_trace: None,
            stats: ServerStats::default(),
        }
    }

    /// Attach (or detach, with `None`) a flight recorder. Events are only
    /// emitted while a sampled packet is marked in flight via
    /// [`MiddleboxServer::set_active_trace`].
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// Mark the packet currently being processed as sampled under the
    /// given trace id (or clear with `None`).
    #[inline]
    pub fn set_active_trace(&mut self, id: Option<u32>) {
        self.active_trace = id;
    }

    /// Mark `states` as switch-cached (their misses replay here and their
    /// hits get installed into the switch cache).
    pub fn set_cached_states(&mut self, states: Vec<StateId>) {
        self.cached_states = states;
    }

    /// The states marked as switch-cached.
    pub fn cached_states(&self) -> &[StateId] {
        &self.cached_states
    }

    /// The staged program this server executes.
    pub fn staged(&self) -> &StagedProgram {
        &self.staged
    }

    /// Process one encapsulated frame arriving from the switch.
    pub fn process(&mut self, mut pkt: Packet, now_ns: u64) -> Result<ServerOutput, ExecError> {
        self.stats.rx += 1;
        let trace = match (&self.tracer, self.active_trace) {
            (Some(t), Some(id)) => Some((Arc::clone(t), id)),
            _ => None,
        };
        let (flags, in_values) =
            self.staged
                .header_to_server
                .detach(&mut pkt)
                .map_err(|e| ExecError::Decap {
                    reason: e.to_string(),
                })?;
        if let Some((t, id)) = &trace {
            t.emit(*id, Hop::Server, EventKind::ServerRx, pkt.len() as u64);
        }
        if flags & gallium_switchsim::FLAG_CACHE_MISS != 0 {
            return self.process_replay(pkt, now_ns);
        }

        let exec = execute_server_partition_into(
            &self.staged,
            &self.plan,
            &mut self.store,
            &mut pkt,
            &in_values,
            now_ns,
            &mut self.scratch,
        )?;
        if let Some((t, id)) = &trace {
            // Reconstruct block-level flow from the executed-instruction
            // list: one event per block transition.
            let mut last = u32::MAX;
            for v in &exec.executed {
                if let Some(b) = self.plan.block_of(*v) {
                    if b != last {
                        t.emit(*id, Hop::Server, EventKind::ServerBlock, u64::from(b));
                        last = b;
                    }
                }
            }
            for u in &exec.replicated_updates {
                let state = match u {
                    StateUpdate::MapPut { state, .. }
                    | StateUpdate::MapDel { state, .. }
                    | StateUpdate::RegSet { state, .. } => *state,
                };
                t.emit(
                    *id,
                    Hop::Server,
                    EventKind::ServerStateOp,
                    u64::from(state.0),
                );
            }
        }
        if exec.dropped {
            self.stats.drops_program += 1;
            if let Some((t, id)) = &trace {
                t.emit(
                    *id,
                    Hop::Server,
                    EventKind::Drop,
                    DropReason::ServerProgram as u64,
                );
            }
        }
        let cycles = self.cost.packet_cycles(&self.staged.prog, &exec.executed)
            // Encap/decap and header parsing on the server.
            + 2 * self.cost.header_op
            + self.cost.fixed_per_packet / 4;
        self.stats.cycles += cycles;

        let sync_ops = self.sync_ops_for(&exec);
        self.stats.sync_ops_issued += sync_ops.len() as u64;
        if let Some((t, id)) = &trace {
            if !sync_ops.is_empty() {
                t.emit(*id, Hop::Server, EventKind::SyncOps, sync_ops.len() as u64);
            }
        }
        let held_for_commit = !sync_ops.is_empty();
        if held_for_commit {
            self.stats.committed += 1;
        }

        let mut to_switch = Vec::new();
        // Server-side emissions travel as pass-through frames.
        for mut snapshot in exec.emissions {
            self.staged
                .header_to_switch
                .attach(
                    &mut snapshot,
                    FLAG_TO_SWITCH | FLAG_PASSTHROUGH,
                    &TransferValues::default(),
                )
                .map_err(|e| ExecError::Encap {
                    reason: e.to_string(),
                })?;
            to_switch.push(snapshot);
        }
        // The working packet continues to post-processing unless dropped.
        if !exec.dropped {
            self.staged
                .header_to_switch
                .attach(&mut pkt, FLAG_TO_SWITCH | FLAG_RUN_POST, &exec.out_values)
                .map_err(|e| ExecError::Encap {
                    reason: e.to_string(),
                })?;
            to_switch.push(pkt);
        }

        Ok(ServerOutput {
            to_switch,
            sync_ops,
            held_for_commit,
            cycles,
        })
    }

    /// Handle a cached-table miss (§7 extension): the pre-processing
    /// result is void — the switch cache is inconclusive — so the server
    /// replays the *entire* program against its authoritative state, emits
    /// the program's outputs itself (as pass-through frames), pushes any
    /// replicated-state updates through the write-back protocol, and
    /// installs the queried entry into the switch cache.
    fn process_replay(&mut self, mut pkt: Packet, now_ns: u64) -> Result<ServerOutput, ExecError> {
        self.stats.replays += 1;
        let trace = match (&self.tracer, self.active_trace) {
            (Some(t), Some(id)) => Some((Arc::clone(t), id)),
            _ => None,
        };
        // `staged`, `store`, and `regs` are disjoint fields, so the
        // interpreter can borrow the program directly — no per-replay
        // clone, and the register file is recycled across replays.
        let r = Interpreter::new(&self.staged.prog).run_with(
            &mut pkt,
            &mut self.store,
            now_ns,
            &mut self.regs,
        )?;
        if let Some((t, id)) = &trace {
            t.emit(
                *id,
                Hop::Server,
                EventKind::ServerReplay,
                r.executed.len() as u64,
            );
        }
        for action in &r.actions {
            if matches!(action, PacketAction::Drop) {
                self.stats.drops_program += 1;
                if let Some((t, id)) = &trace {
                    t.emit(
                        *id,
                        Hop::Server,
                        EventKind::Drop,
                        DropReason::ServerProgram as u64,
                    );
                }
            }
        }
        let cycles = self.cost.packet_cycles(&self.staged.prog, &r.executed)
            + 2 * self.cost.header_op
            + self.cost.fixed_per_packet / 4;
        self.stats.cycles += cycles;

        // Replicated updates follow the usual protocol; cache fills for the
        // queried keys ride along after the fold.
        let mut updates = Vec::new();
        let mut fills: Vec<ControlPlaneOp> = Vec::new();
        for m in &r.mutations {
            match m {
                StateMutation::MapPut { state, key, value } if self.is_synced(*state) => {
                    updates.push(StateUpdate::MapPut {
                        state: *state,
                        key: key.clone(),
                        value: value.clone(),
                    });
                }
                StateMutation::MapDel { state, key } if self.is_synced(*state) => {
                    updates.push(StateUpdate::MapDel {
                        state: *state,
                        key: key.clone(),
                    });
                }
                StateMutation::RegSet { state, value } if self.is_synced(*state) => {
                    updates.push(StateUpdate::RegSet {
                        state: *state,
                        value: *value,
                    });
                }
                StateMutation::MapQueried { state, key, hit }
                    if *hit && self.cached_states.contains(state) =>
                {
                    // Cache fill: install the entry the packet needed.
                    if let Ok(Some(value)) = self.store.map_get(*state, key) {
                        fills.push(ControlPlaneOp::TableInsert {
                            table: self.staged.prog.states[state.0 as usize].name.clone(),
                            key: key.clone(),
                            value,
                        });
                    }
                }
                _ => {}
            }
        }
        if let Some((t, id)) = &trace {
            for u in &updates {
                let state = match u {
                    StateUpdate::MapPut { state, .. }
                    | StateUpdate::MapDel { state, .. }
                    | StateUpdate::RegSet { state, .. } => *state,
                };
                t.emit(
                    *id,
                    Hop::Server,
                    EventKind::ServerStateOp,
                    u64::from(state.0),
                );
            }
        }
        let mut sync_ops = self.sync_ops_for_updates(&updates);
        sync_ops.extend(fills);
        self.stats.sync_ops_issued += sync_ops.len() as u64;
        if let Some((t, id)) = &trace {
            if !sync_ops.is_empty() {
                t.emit(*id, Hop::Server, EventKind::SyncOps, sync_ops.len() as u64);
            }
        }
        let held_for_commit = !sync_ops.is_empty();
        if held_for_commit {
            self.stats.committed += 1;
        }

        // The replay produced the program's emissions directly; the switch
        // just forwards them (no post traversal).
        let mut to_switch = Vec::new();
        for action in r.actions {
            if let PacketAction::Send(mut snapshot) = action {
                self.staged
                    .header_to_switch
                    .attach(
                        &mut snapshot,
                        FLAG_TO_SWITCH | FLAG_PASSTHROUGH,
                        &TransferValues::default(),
                    )
                    .map_err(|e| ExecError::Encap {
                        reason: e.to_string(),
                    })?;
                to_switch.push(snapshot);
            }
        }
        Ok(ServerOutput {
            to_switch,
            sync_ops,
            held_for_commit,
            cycles,
        })
    }

    /// Should updates to `state` be pushed to the switch?
    fn is_synced(&self, state: StateId) -> bool {
        self.staged.placement_of(state) == StatePlacement::Replicated
            || self.cached_states.contains(&state)
    }

    /// Build the atomic-update batch of §4.3.3 for a packet's replicated
    /// updates: stage everything in the write-back shadows, flip the
    /// visibility bit, fold into the main tables, flip back, clear.
    fn sync_ops_for(&self, exec: &crate::executor::ServerExec) -> Vec<ControlPlaneOp> {
        self.sync_ops_for_updates(&exec.replicated_updates)
    }

    /// The write-back batch for an explicit update list.
    fn sync_ops_for_updates(&self, replicated_updates: &[StateUpdate]) -> Vec<ControlPlaneOp> {
        if replicated_updates.is_empty() {
            return vec![];
        }
        let state_name =
            |s: gallium_mir::StateId| self.staged.prog.states[s.0 as usize].name.clone();
        let mut ops = Vec::new();
        let mut touched_tables: BTreeSet<String> = BTreeSet::new();

        // Phase 1: stage in write-back shadows.
        for u in replicated_updates {
            match u {
                StateUpdate::MapPut { state, key, value } => {
                    let t = state_name(*state);
                    touched_tables.insert(t.clone());
                    ops.push(ControlPlaneOp::WriteBackStage {
                        table: t,
                        key: key.clone(),
                        value: Some(value.clone()),
                    });
                }
                StateUpdate::MapDel { state, key } => {
                    let t = state_name(*state);
                    touched_tables.insert(t.clone());
                    ops.push(ControlPlaneOp::WriteBackStage {
                        table: t,
                        key: key.clone(),
                        value: None,
                    });
                }
                StateUpdate::RegSet { .. } => {}
            }
        }
        // Phase 2: one atomic flip makes the batch visible.
        ops.push(ControlPlaneOp::SetWriteBackBit(true));
        // Registers have no shadow; they are single-word writes applied at
        // the visibility point.
        for u in replicated_updates {
            if let StateUpdate::RegSet { state, value } = u {
                ops.push(ControlPlaneOp::RegisterSet {
                    register: state_name(*state),
                    value: *value,
                });
            }
        }
        // Phase 3: fold into the main tables.
        for u in replicated_updates {
            match u {
                StateUpdate::MapPut { state, key, value } => {
                    ops.push(ControlPlaneOp::TableInsert {
                        table: state_name(*state),
                        key: key.clone(),
                        value: value.clone(),
                    });
                }
                StateUpdate::MapDel { state, key } => {
                    ops.push(ControlPlaneOp::TableDelete {
                        table: state_name(*state),
                        key: key.clone(),
                    });
                }
                StateUpdate::RegSet { .. } => {}
            }
        }
        // Phase 4: hide the shadows again and clear them.
        ops.push(ControlPlaneOp::SetWriteBackBit(false));
        for t in touched_tables {
            ops.push(ControlPlaneOp::WriteBackClear { table: t });
        }
        ops
    }

    /// Configuration-time access to replicated/server state (installing
    /// backend lists, firewall rules, …).
    pub fn store_mut(&mut self) -> &mut StateStore {
        &mut self.store
    }

    /// Export the server's runtime counters under `gallium.server.*`.
    pub fn telemetry_snapshot(&self) -> gallium_telemetry::TelemetrySnapshot {
        let mut snap = gallium_telemetry::TelemetrySnapshot::default();
        snap.set_counter(names::SERVER_SLOW_PATH_PKTS, self.stats.rx);
        snap.set_counter(names::SERVER_COMMITTED_PKTS, self.stats.committed);
        snap.set_counter(names::SERVER_CYCLES, self.stats.cycles);
        snap.set_counter(names::SERVER_REPLAYS, self.stats.replays);
        snap.set_counter(names::SERVER_SYNC_OPS_ISSUED, self.stats.sync_ops_issued);
        snap.set_counter(names::DROP_SERVER_PROGRAM, self.stats.drops_program);
        snap
    }

    /// Initial control-plane programming: push the current contents of
    /// every replicated map/register to the switch (used after
    /// configuration, before traffic).
    pub fn initial_sync(&self) -> Vec<ControlPlaneOp> {
        let mut ops = Vec::new();
        for (i, st) in self.staged.prog.states.iter().enumerate() {
            let sid = gallium_mir::StateId(i as u32);
            if !matches!(
                self.staged.placement_of(sid),
                StatePlacement::Replicated | StatePlacement::SwitchOnly
            ) {
                continue;
            }
            match st.kind {
                gallium_mir::StateKind::Map { .. } => {
                    if let Ok(entries) = self.store.map_entries(sid) {
                        for (k, v) in entries {
                            ops.push(ControlPlaneOp::TableInsert {
                                table: st.name.clone(),
                                key: k,
                                value: v,
                            });
                        }
                    }
                }
                gallium_mir::StateKind::Register { .. } => {
                    if let Ok(v) = self.store.reg_read(sid) {
                        ops.push(ControlPlaneOp::RegisterSet {
                            register: st.name.clone(),
                            value: v,
                        });
                    }
                }
                gallium_mir::StateKind::Vector { .. } => {}
                gallium_mir::StateKind::LpmMap { .. } => {
                    if let Ok(entries) = self.store.lpm_entries(sid) {
                        for (prefix, len, value) in entries {
                            ops.push(ControlPlaneOp::LpmInsert {
                                table: st.name.clone(),
                                prefix,
                                prefix_len: len,
                                value,
                            });
                        }
                    }
                }
            }
        }
        ops
    }
}

/// The FastClick baseline: the *unpartitioned* program running on the
/// server, costed with the same model. Used for every "Click-Nc" series in
/// the evaluation and as the functional-equivalence oracle.
#[derive(Debug)]
pub struct ReferenceServer {
    prog: Program,
    /// The reference state store.
    pub store: StateStore,
    cost: CostModel,
    /// Interpreter register file, reused across packets and batches.
    regs: RegFile,
    /// Counters.
    pub stats: ServerStats,
}

impl ReferenceServer {
    /// Build a baseline server for the input program.
    pub fn new(prog: Program, cost: CostModel) -> Self {
        let store = StateStore::new(&prog.states);
        ReferenceServer {
            prog,
            store,
            cost,
            regs: RegFile::new(),
            stats: ServerStats::default(),
        }
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Process one plain packet; returns emitted packets and the cycles
    /// spent.
    pub fn process(&mut self, pkt: Packet, now_ns: u64) -> Result<(Vec<Packet>, u64), MirError> {
        self.process_batch(std::iter::once(pkt), now_ns)
    }

    /// Process a burst of plain packets, constructing the interpreter once
    /// for the whole batch and reusing the server's register file per
    /// packet. Returns all emitted packets in arrival order and the total
    /// cycles spent.
    pub fn process_batch(
        &mut self,
        pkts: impl IntoIterator<Item = Packet>,
        now_ns: u64,
    ) -> Result<(Vec<Packet>, u64), MirError> {
        let mut out = Vec::new();
        let cycles = self.process_batch_into(pkts, now_ns, &mut out)?;
        Ok((out, cycles))
    }

    /// [`ReferenceServer::process_batch`] appending into a caller-owned
    /// emissions buffer (not cleared first), so a drain loop reuses one
    /// buffer's capacity across bursts. Returns the total cycles spent.
    pub fn process_batch_into(
        &mut self,
        pkts: impl IntoIterator<Item = Packet>,
        now_ns: u64,
        out: &mut Vec<Packet>,
    ) -> Result<u64, MirError> {
        let interp = Interpreter::new(&self.prog);
        let mut total_cycles = 0u64;
        for mut pkt in pkts {
            self.stats.rx += 1;
            let r = interp.run_with(&mut pkt, &mut self.store, now_ns, &mut self.regs)?;
            let cycles = self.cost.packet_cycles(&self.prog, &r.executed);
            self.stats.cycles += cycles;
            total_cycles += cycles;
            out.extend(r.actions.into_iter().filter_map(|a| match a {
                PacketAction::Send(p) => Some(p),
                PacketAction::Drop => None,
            }));
        }
        Ok(total_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};
    use gallium_net::transfer::FLAG_TO_SERVER;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};
    use gallium_partition::{partition_program, SwitchModel};

    fn minilb_staged() -> StagedProgram {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        partition_program(&p, &SwitchModel::tofino_like()).unwrap()
    }

    fn encapsulated_miss_packet(staged: &StagedProgram) -> Packet {
        let mut pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A000001,
                daddr: 0x0A000099,
                sport: 1,
                dport: 2,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            100,
        )
        .build(PortId::SERVER);
        let hash32 = 0x0A000001u64 ^ 0x0A000099;
        let mut vals = TransferValues::default();
        vals.set("v7", 1);
        vals.set("v2", hash32);
        vals.set("v5", hash32 & 0xFFFF);
        staged
            .header_to_server
            .attach(&mut pkt, FLAG_TO_SERVER, &vals)
            .unwrap();
        pkt
    }

    #[test]
    fn miss_packet_produces_sync_batch_and_post_frame() {
        let staged = minilb_staged();
        let mut server = MiddleboxServer::new(staged.clone(), CostModel::calibrated());
        server
            .store_mut()
            .vec_set_all(
                staged.prog.state_by_name("backends").unwrap(),
                vec![0xC0A80001, 0xC0A80002],
            )
            .unwrap();
        let out = server
            .process(encapsulated_miss_packet(&staged), 0)
            .unwrap();
        assert!(out.held_for_commit);
        assert_eq!(out.to_switch.len(), 1);
        // Sync batch shape: stage, bit on, fold, bit off, clear.
        use ControlPlaneOp::*;
        assert!(matches!(out.sync_ops[0], WriteBackStage { .. }));
        assert!(matches!(out.sync_ops[1], SetWriteBackBit(true)));
        assert!(matches!(out.sync_ops[2], TableInsert { .. }));
        assert!(matches!(out.sync_ops[3], SetWriteBackBit(false)));
        assert!(matches!(out.sync_ops[4], WriteBackClear { .. }));
        assert_eq!(out.sync_ops.len(), 5);
        assert!(out.cycles > 0);
        assert_eq!(server.stats.committed, 1);
    }

    #[test]
    fn second_packet_of_flow_makes_no_updates() {
        let staged = minilb_staged();
        let mut server = MiddleboxServer::new(staged.clone(), CostModel::calibrated());
        server
            .store_mut()
            .vec_set_all(
                staged.prog.state_by_name("backends").unwrap(),
                vec![0xC0A80001],
            )
            .unwrap();
        // First packet inserts; replay with the *hit* bit cleared — the
        // switch would have handled it, but even a stale forward makes no
        // further updates because the hit arm has no server statements.
        let out1 = server
            .process(encapsulated_miss_packet(&staged), 0)
            .unwrap();
        assert!(out1.held_for_commit);
        let mut pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A000001,
                daddr: 0x0A000099,
                sport: 1,
                dport: 2,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId::SERVER);
        let mut vals = TransferValues::default();
        vals.set("v7", 0); // hit
        vals.set("v2", 0);
        vals.set("v5", 0);
        staged
            .header_to_server
            .attach(&mut pkt, FLAG_TO_SERVER, &vals)
            .unwrap();
        let out2 = server.process(pkt, 1).unwrap();
        assert!(!out2.held_for_commit);
        assert!(out2.sync_ops.is_empty());
    }

    #[test]
    fn initial_sync_pushes_preinstalled_entries() {
        let staged = minilb_staged();
        let mut server = MiddleboxServer::new(staged.clone(), CostModel::calibrated());
        let map = staged.prog.state_by_name("map").unwrap();
        server.store_mut().map_put(map, vec![7], vec![70]).unwrap();
        let ops = server.initial_sync();
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            ControlPlaneOp::TableInsert { table, key, value }
                if table == "map" && key == &vec![7] && value == &vec![70]
        ));
    }

    #[test]
    fn reference_server_runs_whole_program() {
        let staged = minilb_staged();
        let mut reference = ReferenceServer::new(staged.prog.clone(), CostModel::calibrated());
        reference
            .store
            .vec_set_all(
                staged.prog.state_by_name("backends").unwrap(),
                vec![0xC0A80001],
            )
            .unwrap();
        let pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::SYN),
            100,
        )
        .build(PortId(0));
        let (out, cycles) = reference.process(pkt, 0).unwrap();
        assert_eq!(out.len(), 1);
        assert!(cycles > CostModel::calibrated().fixed_per_packet);
        // The baseline pays the full map cost on every packet.
        let map = staged.prog.state_by_name("map").unwrap();
        assert_eq!(reference.store.map_len(map).unwrap(), 1);
    }

    #[test]
    fn malformed_frame_rejected() {
        let staged = minilb_staged();
        let mut server = MiddleboxServer::new(staged, CostModel::calibrated());
        let pkt = PacketBuilder::tcp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Tcp,
            },
            TcpFlags::default(),
            100,
        )
        .build(PortId::SERVER);
        assert!(server.process(pkt, 0).is_err());
    }
}
