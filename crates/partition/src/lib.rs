//! # gallium-partition — program partitioning (paper §4.2)
//!
//! Splits a middlebox program into the three partitions of Figure 1:
//! **pre-processing** and **post-processing** (offloaded to the switch) and
//! the **non-offloaded** remainder (the middlebox server), in two phases
//! exactly as the paper prescribes:
//!
//! 1. **Label removing** (§4.2.1) — every statement starts with
//!    `{pre, post, non_off}` when P4 can express it, `{non_off}` otherwise,
//!    and five rules remove labels to a fixpoint:
//!    dependency-consistency rules (1, 2), single-access-per-state rules
//!    (3, 4), and the loop rule (5).
//! 2. **Resource refinement** (§4.2.2) — Constraints 1–5 (switch memory,
//!    pipeline depth, single table access per traversal, per-packet
//!    metadata, and the ≤ 20-byte transfer header) are enforced by moving
//!    statements to the non-offloaded partition: distance-based trimming
//!    for the pipeline depth, source-order trimming for memory, an
//!    exhaustive per-state placement search for single access, and a
//!    greedy topological-order scan for the metadata/header budgets.
//!
//! The output [`StagedProgram`] records the per-instruction assignment, the
//! replication class of every global state, and the synthesized transfer
//! headers for both boundaries (§4.3.2, Figure 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod explain;
pub mod labels;
pub mod model;
pub mod staged;
pub mod transfer;

pub use driver::{partition_program, PartitionError};
pub use explain::{ExplainEntry, ExplainReason, ExplainReport, StateExplain};
pub use labels::{
    initial_labels, run_label_rules, run_label_rules_traced, LabelSet, LabelTrace, RuleId,
};
pub use model::{ModelError, SwitchModel};
pub use staged::{Partition, StagedProgram, StatePlacement};
pub use transfer::{boundary_values, BoundarySets};
