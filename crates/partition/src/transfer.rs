//! Boundary analysis and transfer-header synthesis (§4.3.2).
//!
//! "Gallium does a variable liveness test on the partition boundary to
//! decide what variables need to be transferred across partition
//! boundaries" — here realized on SSA form: a value must cross a boundary
//! when it is *defined* in an earlier partition and *needed* by a later
//! one, where "needed" covers both data uses and branch conditions that
//! steer instructions of the later partition (the `bk_addr == NULL` bit of
//! Figure 5).

use crate::staged::{Partition, StagedProgram};
use gallium_analysis::{DepGraph, DepKind};
use gallium_mir::{Program, RtVal, Ty, ValueId};
use gallium_net::{TransferField, TransferHeaderLayout, TransferValues};

/// The two boundary value sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundarySets {
    /// Values that must ride the switch→server header.
    pub to_server: Vec<ValueId>,
    /// Values that must ride the server→switch header.
    pub to_switch: Vec<ValueId>,
}

/// Is value `v` needed by partition `x` — used as data by an instruction of
/// `x`, or required to *navigate* to one?
///
/// Navigation is the subtle half: a partition's executor walks the original
/// CFG, and every branch on the way to one of its instructions must be
/// decidable. Block-level control dependence is therefore closed
/// transitively (a nested branch's guard needs all enclosing guards too) —
/// this is what puts the `bk_addr == NULL` bit of Figure 5 into *both*
/// transfer headers.
pub fn needed_by(
    prog: &Program,
    dep: &DepGraph,
    assignment: &[Partition],
    v: ValueId,
    x: Partition,
) -> bool {
    // Data uses.
    for (_, _, wid) in prog.func.iter_insts() {
        if assignment[wid.0 as usize] == x && prog.func.inst(wid).op.uses().contains(&v) {
            return true;
        }
    }
    // Direct control edges out of v (covers φ steering too).
    if dep
        .deps_out(v)
        .iter()
        .any(|(t, k)| *k == DepKind::Control && assignment[t.0 as usize] == x)
    {
        return true;
    }
    // Navigation: v is the condition of some branch block B, and a block
    // holding an x-instruction is (transitively) control-dependent on B.
    let f = &prog.func;
    let cfg = gallium_mir::cfg::Cfg::new(f);
    let block_cd = cfg.control_deps(f);
    let my_branches: Vec<gallium_mir::BlockId> = f
        .blocks
        .iter()
        .filter(|b| matches!(&b.term, gallium_mir::Terminator::Branch { cond, .. } if *cond == v))
        .map(|b| b.id)
        .collect();
    if my_branches.is_empty() {
        return false;
    }
    for b in &f.blocks {
        if !b.insts.iter().any(|w| assignment[w.0 as usize] == x) {
            continue;
        }
        // Transitive closure of block-level control dependence from b.
        let mut stack = vec![b.id];
        let mut seen = std::collections::HashSet::new();
        while let Some(blk) = stack.pop() {
            if !seen.insert(blk) {
                continue;
            }
            for dep_block in &block_cd[blk.0 as usize] {
                if my_branches.contains(dep_block) {
                    return true;
                }
                stack.push(*dep_block);
            }
        }
    }
    false
}

/// Compute the two boundary sets for a given assignment.
pub fn boundary_values(prog: &Program, dep: &DepGraph, assignment: &[Partition]) -> BoundarySets {
    let n = prog.func.insts.len();
    let mut to_server = Vec::new();
    let mut to_switch = Vec::new();
    for i in 0..n {
        let v = ValueId(i as u32);
        if prog.func.inst(v).ty == Ty::Unit {
            continue;
        }
        match assignment[i] {
            Partition::Pre => {
                let need_server = needed_by(prog, dep, assignment, v, Partition::NonOffloaded);
                let need_post = needed_by(prog, dep, assignment, v, Partition::Post);
                if need_server || need_post {
                    to_server.push(v);
                }
                if need_post {
                    to_switch.push(v);
                }
            }
            Partition::NonOffloaded => {
                if needed_by(prog, dep, assignment, v, Partition::Post) {
                    to_switch.push(v);
                }
            }
            Partition::Post => {}
        }
    }
    BoundarySets {
        to_server,
        to_switch,
    }
}

/// The header fields representing one SSA value. Scalars map to a single
/// field; map-lookup results expand to a presence bit plus one field per
/// component (mirroring how a P4 table lookup materializes hit + values in
/// metadata).
pub fn fields_for_value(prog: &Program, v: ValueId) -> Vec<TransferField> {
    let name = StagedProgram::field_name(v);
    match &prog.func.inst(v).ty {
        Ty::Int(w) => vec![TransferField::new(name, u16::from(*w))],
        Ty::MapResult(ws) => {
            let mut out = vec![TransferField::new(format!("{name}.hit"), 1)];
            for (i, w) in ws.iter().enumerate() {
                out.push(TransferField::new(format!("{name}.{i}"), u16::from(*w)));
            }
            out
        }
        Ty::Unit => vec![],
    }
}

/// Build the header layout carrying `values`.
pub fn make_layout(prog: &Program, values: &[ValueId]) -> TransferHeaderLayout {
    let mut fields = Vec::new();
    for &v in values {
        fields.extend(fields_for_value(prog, v));
    }
    TransferHeaderLayout::new(fields).expect("synthesized fields are unique and sized")
}

/// Store a runtime value into transfer values under its canonical fields.
pub fn store_rtval(prog: &Program, vals: &mut TransferValues, v: ValueId, rt: &RtVal) {
    let name = StagedProgram::field_name(v);
    match rt {
        RtVal::Int(x) => vals.set(&name, *x),
        RtVal::MapRes(opt) => {
            vals.set(&format!("{name}.hit"), u64::from(opt.is_some()));
            if let Some(components) = opt {
                for (i, c) in components.iter().enumerate() {
                    vals.set(&format!("{name}.{i}"), *c);
                }
            }
        }
        RtVal::Unit => {}
    }
    let _ = prog;
}

/// Load a runtime value back out of transfer values.
pub fn load_rtval(prog: &Program, vals: &TransferValues, v: ValueId) -> Option<RtVal> {
    let name = StagedProgram::field_name(v);
    match &prog.func.inst(v).ty {
        Ty::Int(_) => vals.get(&name).map(RtVal::Int),
        Ty::MapResult(ws) => {
            let hit = vals.get(&format!("{name}.hit"))?;
            if hit == 0 {
                Some(RtVal::MapRes(None))
            } else {
                let mut components = Vec::with_capacity(ws.len());
                for i in 0..ws.len() {
                    components.push(vals.get(&format!("{name}.{i}")).unwrap_or(0));
                }
                Some(RtVal::MapRes(Some(components)))
            }
        }
        Ty::Unit => Some(RtVal::Unit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr); // v0
        let daddr = b.read_field(HeaderField::IpDaddr); // v1
        let hash32 = b.bin(BinOp::Xor, saddr, daddr); // v2
        let mask = b.cnst(0xFFFF, 32); // v3
        let low = b.bin(BinOp::And, hash32, mask); // v4
        let key = b.cast(low, 16); // v5
        let res = b.map_get(map, vec![key]); // v6
        let null = b.is_null(res); // v7
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0); // v8
        b.write_field(HeaderField::IpDaddr, bk); // v9
        b.send(); // v10
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends); // v11
        let idx = b.bin(BinOp::Mod, hash32, len); // v12
        let bk2 = b.vec_get(backends, idx); // v13
        b.write_field(HeaderField::IpDaddr, bk2); // v14
        b.map_put(map, vec![key], vec![bk2]); // v15
        b.send(); // v16
        b.ret();
        b.finish().unwrap()
    }

    /// The Figure 4 assignment for MiniLB, written out by hand.
    fn figure4_assignment() -> Vec<Partition> {
        use Partition::*;
        vec![
            Pre,          // v0 saddr
            Pre,          // v1 daddr
            Pre,          // v2 hash32
            Pre,          // v3 const
            Pre,          // v4 and
            Pre,          // v5 key
            Pre,          // v6 mapget
            Pre,          // v7 isnull
            Pre,          // v8 extract (hit)
            Pre,          // v9 write daddr (hit)
            Pre,          // v10 send (hit)
            NonOffloaded, // v11 veclen
            NonOffloaded, // v12 mod
            NonOffloaded, // v13 vecget
            Post,         // v14 write daddr (miss)
            NonOffloaded, // v15 mapput
            Post,         // v16 send (miss)
        ]
    }

    #[test]
    fn minilb_boundaries_match_figure5() {
        let p = minilb();
        let dep = DepGraph::build(&p);
        let assignment = figure4_assignment();
        let b = boundary_values(&p, &dep, &assignment);
        // To server: hash32 (v2, used by mod) and the branch bit v7
        // (controls the server's miss-branch statements). The key v5 also
        // crosses (map.insert consumes it on the server).
        assert!(b.to_server.contains(&ValueId(2)), "hash32 crosses");
        assert!(b.to_server.contains(&ValueId(7)), "branch bit crosses");
        assert!(b.to_server.contains(&ValueId(5)), "key crosses");
        // To switch: backends[idx] (v13, consumed by the post write) and
        // the branch bit again (post's statements are steered by it).
        assert!(b.to_switch.contains(&ValueId(13)), "bk_addr crosses back");
        assert!(b.to_switch.contains(&ValueId(7)), "branch bit crosses back");
        // Values never needed downstream stay home.
        assert!(
            !b.to_server.contains(&ValueId(0)),
            "saddr is consumed in pre"
        );
        assert!(
            !b.to_server.contains(&ValueId(8)),
            "hit-branch extract stays"
        );
    }

    #[test]
    fn figure5_layout_fits_budget() {
        let p = minilb();
        let dep = DepGraph::build(&p);
        let assignment = figure4_assignment();
        let b = boundary_values(&p, &dep, &assignment);
        let l1 = make_layout(&p, &b.to_server);
        let l2 = make_layout(&p, &b.to_switch);
        // The paper's Figure 5 header is 33 bits of payload; ours carries
        // the same information plus the explicit key and stays within the
        // 20-byte Constraint-5 budget.
        assert!(
            l1.check_budget(20).is_ok(),
            "to-server layout {} bytes",
            l1.wire_bytes()
        );
        assert!(
            l2.check_budget(20).is_ok(),
            "to-switch layout {} bytes",
            l2.wire_bytes()
        );
    }

    #[test]
    fn mapresult_fields_expand() {
        let p = minilb();
        let fields = fields_for_value(&p, ValueId(6));
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "v6.hit");
        assert_eq!(fields[0].bits, 1);
        assert_eq!(fields[1].name, "v6.0");
        assert_eq!(fields[1].bits, 32);
    }

    #[test]
    fn rtval_roundtrip_through_transfer_values() {
        let p = minilb();
        let mut vals = TransferValues::default();
        store_rtval(&p, &mut vals, ValueId(2), &RtVal::Int(0xDEAD));
        assert_eq!(load_rtval(&p, &vals, ValueId(2)), Some(RtVal::Int(0xDEAD)));

        store_rtval(&p, &mut vals, ValueId(6), &RtVal::MapRes(Some(vec![42])));
        assert_eq!(
            load_rtval(&p, &vals, ValueId(6)),
            Some(RtVal::MapRes(Some(vec![42])))
        );

        let mut vals2 = TransferValues::default();
        store_rtval(&p, &mut vals2, ValueId(6), &RtVal::MapRes(None));
        assert_eq!(
            load_rtval(&p, &vals2, ValueId(6)),
            Some(RtVal::MapRes(None))
        );
    }

    #[test]
    fn missing_value_loads_none() {
        let p = minilb();
        let vals = TransferValues::default();
        assert_eq!(load_rtval(&p, &vals, ValueId(2)), None);
    }
}
