//! Execution labels and the label-removing algorithm (§4.2.1).

use gallium_analysis::DepGraph;
use gallium_mir::{Program, ValueId};

/// The specific §4 rule or constraint that removed a label.
///
/// This is the shared, non-stringly vocabulary used by both the
/// partitioner's explain report (first-cause attribution) and the
/// independent verifier's re-derivation, so the two can be diffed
/// mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// §4.2.1 initial labels: P4 cannot express the operation.
    NotExpressible,
    /// Rule 1: a dependency-later statement cannot run in post.
    Rule1,
    /// Rule 2: a dependency-earlier statement cannot run in pre.
    Rule2,
    /// Rule 3: second `pre` access to a shared state on a chain.
    Rule3,
    /// Rule 4: earlier `post` access to a shared state on a chain.
    Rule4,
    /// Rule 5: the statement sits inside a loop.
    Rule5,
    /// Constraint 1 (§4.2.2): state does not fit switch memory.
    Constraint1Memory,
    /// Constraint 2 (§4.2.2): dependency chain exceeds pipeline depth.
    Constraint2PipelineDepth,
    /// Constraint 3 (§4.2.2): lost the one-access-per-state search.
    Constraint3SingleAccess,
    /// Constraint 4 (§4.2.2): per-packet metadata budget exceeded.
    Constraint4Metadata,
    /// Constraint 5 (§4.2.2): transfer-header budget exceeded.
    Constraint5Transfer,
    /// §4.3.3: writes replicated state; the server owns all updates.
    ReplicatedWrite,
}

impl RuleId {
    /// Stable snake_case key (used in JSON output).
    pub fn key(self) -> &'static str {
        match self {
            RuleId::NotExpressible => "not_expressible",
            RuleId::Rule1 => "rule1",
            RuleId::Rule2 => "rule2",
            RuleId::Rule3 => "rule3",
            RuleId::Rule4 => "rule4",
            RuleId::Rule5 => "rule5",
            RuleId::Constraint1Memory => "constraint1_memory",
            RuleId::Constraint2PipelineDepth => "constraint2_pipeline_depth",
            RuleId::Constraint3SingleAccess => "constraint3_single_access",
            RuleId::Constraint4Metadata => "constraint4_metadata",
            RuleId::Constraint5Transfer => "constraint5_transfer",
            RuleId::ReplicatedWrite => "replicated_write",
        }
    }

    /// One-line description in the paper's vocabulary.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::NotExpressible => "initial labels: not expressible in P4 (§4.2.1)",
            RuleId::Rule1 => "rule 1: a transitive dependent cannot run in post",
            RuleId::Rule2 => "rule 2: a transitive dependency cannot run in pre",
            RuleId::Rule3 => "rule 3: second pre access to a shared state",
            RuleId::Rule4 => "rule 4: earlier post access to a shared state",
            RuleId::Rule5 => "rule 5: loop-resident",
            RuleId::Constraint1Memory => "constraint 1: switch memory",
            RuleId::Constraint2PipelineDepth => "constraint 2: pipeline depth",
            RuleId::Constraint3SingleAccess => "constraint 3: single state access",
            RuleId::Constraint4Metadata => "constraint 4: metadata budget",
            RuleId::Constraint5Transfer => "constraint 5: transfer budget",
            RuleId::ReplicatedWrite => "replicated-state write (§4.3.3)",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Which rule first removed each of a statement's labels.
///
/// First cause wins: once a slot is recorded, later removals of the same
/// label never overwrite it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelTrace {
    /// The rule that removed `pre`, if it was ever removed.
    pub pre: Option<RuleId>,
    /// The rule that removed `post`, if it was ever removed.
    pub post: Option<RuleId>,
}

impl LabelTrace {
    /// Record that `rule` removed the `pre` label (first cause wins).
    pub fn note_pre(&mut self, rule: RuleId) {
        self.pre.get_or_insert(rule);
    }

    /// Record that `rule` removed the `post` label (first cause wins).
    pub fn note_post(&mut self, rule: RuleId) {
        self.post.get_or_insert(rule);
    }

    /// The earliest-phase rule to have removed either label (phase order
    /// of [`RuleId`]; both slots record their own first cause).
    pub fn first(&self) -> Option<RuleId> {
        match (self.pre, self.post) {
            (Some(p), Some(q)) => Some(p.min(q)),
            (Some(p), None) => Some(p),
            (None, Some(q)) => Some(q),
            (None, None) => None,
        }
    }
}

/// The set of partitions a statement may still be assigned to.
///
/// `non_off` is always a member — executing everything on the server
/// trivially satisfies every constraint — so only `pre` and `post` are
/// tracked and removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelSet {
    /// May run in the pre-processing partition.
    pub pre: bool,
    /// May run in the post-processing partition.
    pub post: bool,
}

impl LabelSet {
    /// `{pre, post, non_off}` — the initial set for P4-expressible
    /// statements.
    pub const ALL: LabelSet = LabelSet {
        pre: true,
        post: true,
    };
    /// `{non_off}` — the initial set for everything else.
    pub const NON_OFF_ONLY: LabelSet = LabelSet {
        pre: false,
        post: false,
    };

    /// May the statement be offloaded at all?
    pub fn offloadable(&self) -> bool {
        self.pre || self.post
    }
}

/// Initial labels: `{pre, post, non_off}` if P4 supports the statement
/// (§4.2.1's three conditions, realized in [`gallium_mir::Op::p4_supported`]),
/// `{non_off}` otherwise.
pub fn initial_labels(prog: &Program) -> Vec<LabelSet> {
    prog.func
        .insts
        .iter()
        .map(|i| {
            if i.op.p4_supported(&prog.states) {
                LabelSet::ALL
            } else {
                LabelSet::NON_OFF_ONLY
            }
        })
        .collect()
}

/// Apply the five label-removing rules to a fixpoint.
///
/// With `S' ⇝* S` meaning "S transitively depends on S'":
///
/// 1. `post ∉ L(S)  ⟹ post ∉ L(S')` — if a dependency-later statement
///    cannot run in post, nothing it depends on may run there either
///    (post is the last stage).
/// 2. `pre ∉ L(S') ⟹ pre ∉ L(S)` — if a dependency-earlier statement
///    cannot run in pre, no dependent may (pre is the first stage).
/// 3. both access the same global state ∧ `pre ∈ L(S')` ⟹ `pre ∉ L(S)`.
/// 4. both access the same global state ∧ `post ∈ L(S)` ⟹ `post ∉ L(S')`.
///    (3 and 4 leave at most one *pre* access and one *post* access per
///    state on any dependency chain — the pipeline visits a table once per
///    traversal.)
/// 5. `S ⇝* S ⟹ L(S) = {non_off}` — loops cannot run on the switch.
///
/// The function mutates `labels` in place and returns the number of labels
/// removed. The fixpoint exists because the label count is monotonically
/// decreasing.
pub fn run_label_rules(prog: &Program, dep: &DepGraph, labels: &mut [LabelSet]) -> usize {
    let mut trace = vec![LabelTrace::default(); labels.len()];
    run_label_rules_traced(prog, dep, labels, &mut trace)
}

/// [`run_label_rules`], additionally recording in `trace` which rule
/// first removed each label (first cause wins; pre-existing trace entries
/// are never overwritten, so the driver can call this repeatedly across
/// refinement phases).
pub fn run_label_rules_traced(
    prog: &Program,
    dep: &DepGraph,
    labels: &mut [LabelSet],
    trace: &mut [LabelTrace],
) -> usize {
    let n = prog.func.insts.len();
    debug_assert_eq!(labels.len(), n);
    debug_assert_eq!(trace.len(), n);
    let mut removed = 0usize;

    // Rule 5 first: it is unconditional.
    for (v, label) in labels.iter_mut().enumerate().take(n) {
        if dep.in_loop(ValueId(v as u32)) {
            if label.pre {
                label.pre = false;
                trace[v].note_pre(RuleId::Rule5);
                removed += 1;
            }
            if label.post {
                label.post = false;
                trace[v].note_post(RuleId::Rule5);
                removed += 1;
            }
        }
    }

    // Precompute state-sharing pairs for rules 3/4.
    let touches: Vec<Vec<gallium_mir::StateId>> = prog
        .func
        .insts
        .iter()
        .map(|i| {
            let mut s = i.op.states_touched();
            s.sort();
            s.dedup();
            s
        })
        .collect();
    let share_state =
        |a: usize, b: usize| -> bool { touches[a].iter().any(|s| touches[b].contains(s)) };

    let mut changed = true;
    while changed {
        changed = false;
        for s1 in 0..n {
            for s2 in 0..n {
                if s1 == s2 {
                    continue;
                }
                // `s2` depends (transitively) on `s1`: S' = s1, S = s2.
                if !dep.depends_transitively(ValueId(s1 as u32), ValueId(s2 as u32)) {
                    continue;
                }
                // Rule 1.
                if !labels[s2].post && labels[s1].post {
                    labels[s1].post = false;
                    trace[s1].note_post(RuleId::Rule1);
                    removed += 1;
                    changed = true;
                }
                // Rule 2.
                if !labels[s1].pre && labels[s2].pre {
                    labels[s2].pre = false;
                    trace[s2].note_pre(RuleId::Rule2);
                    removed += 1;
                    changed = true;
                }
                if share_state(s1, s2) {
                    // Rule 3.
                    if labels[s1].pre && labels[s2].pre {
                        labels[s2].pre = false;
                        trace[s2].note_pre(RuleId::Rule3);
                        removed += 1;
                        changed = true;
                    }
                    // Rule 4.
                    if labels[s2].post && labels[s1].post {
                        labels[s1].post = false;
                        trace[s1].note_post(RuleId::Rule4);
                        removed += 1;
                        changed = true;
                    }
                }
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    /// MiniLB (§4): the worked example whose expected partitioning is
    /// Figure 4.
    fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr); // v0
        let daddr = b.read_field(HeaderField::IpDaddr); // v1
        let hash32 = b.bin(BinOp::Xor, saddr, daddr); // v2
        let mask = b.cnst(0xFFFF, 32); // v3
        let low = b.bin(BinOp::And, hash32, mask); // v4
        let key = b.cast(low, 16); // v5
        let res = b.map_get(map, vec![key]); // v6
        let null = b.is_null(res); // v7
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0); // v8
        b.write_field(HeaderField::IpDaddr, bk); // v9
        b.send(); // v10
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends); // v11
        let idx = b.bin(BinOp::Mod, hash32, len); // v12
        let bk2 = b.vec_get(backends, idx); // v13
        b.write_field(HeaderField::IpDaddr, bk2); // v14
        b.map_put(map, vec![key], vec![bk2]); // v15
        b.send(); // v16
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn initial_labels_follow_p4_support() {
        let p = minilb();
        let l = initial_labels(&p);
        assert_eq!(l[2], LabelSet::ALL); // xor
        assert_eq!(l[6], LabelSet::ALL); // mapget (annotated)
        assert_eq!(l[11], LabelSet::NON_OFF_ONLY); // veclen
        assert_eq!(l[12], LabelSet::NON_OFF_ONLY); // mod
        assert_eq!(l[13], LabelSet::NON_OFF_ONLY); // vecget
        assert_eq!(l[15], LabelSet::NON_OFF_ONLY); // mapput
    }

    #[test]
    fn minilb_labels_reproduce_figure4() {
        let p = minilb();
        let dep = DepGraph::build(&p);
        let mut labels = initial_labels(&p);
        run_label_rules(&p, &dep, &mut labels);

        // Entry block (pre-processing in Figure 4a): keeps pre.
        for v in [0usize, 1, 2, 3, 4, 5, 6, 7] {
            assert!(labels[v].pre, "v{v} should keep pre");
        }
        // Hit branch: extract/write/send stay offloadable (pre).
        for v in [8usize, 9, 10] {
            assert!(labels[v].pre, "v{v} should keep pre");
        }
        // Miss branch: idx/backends/insert are server-bound, and the
        // daddr write + send that depend on them lose `pre` (rule 2) but
        // keep `post` (Figure 4c).
        for v in [11usize, 12, 13, 15] {
            assert!(!labels[v].offloadable(), "v{v} must be non-offloaded");
        }
        assert!(!labels[14].pre && labels[14].post, "v14 is post-processing");
        assert!(!labels[16].pre && labels[16].post, "v16 is post-processing");
    }

    #[test]
    fn rule1_removes_post_upstream() {
        // x -> payloadmatch-dependent write: the payload match can't be
        // offloaded; everything it depends on loses `post`.
        let mut b = FuncBuilder::new("t");
        let x = b.read_field(HeaderField::IpSaddr); // v0
        let m = b.payload_match(b"X"); // v1 (non-off only)
        let x1 = b.cast(x, 1); // v2
        let both = b.bin(BinOp::And, x1, m); // v3
        let both8 = b.cast(both, 8); // v4
        b.write_field(HeaderField::IpTtl, both8); // v5
        b.ret();
        let p = b.finish().unwrap();
        let dep = DepGraph::build(&p);
        let mut labels = initial_labels(&p);
        run_label_rules(&p, &dep, &mut labels);
        // v3 depends on v1 (non-off): loses pre by rule 2. v5 depends on v3.
        assert!(!labels[3].pre && !labels[5].pre);
        // v1 itself can never be offloaded.
        assert!(!labels[1].offloadable());
        // But the write can still be post-processing.
        assert!(labels[5].post);
    }

    #[test]
    fn rules34_single_state_access_per_chain() {
        // Two dependent reads of the same register: reg -> w -> reg read
        // again. Rule 3 strips pre from the later; rule 4 strips post from
        // the earlier.
        let mut b = FuncBuilder::new("t");
        let r = b.decl_register("r", 32);
        let a = b.reg_read(r); // v0
        let one = b.cnst(1, 32); // v1
        let c = b.bin(BinOp::Add, a, one); // v2
        b.reg_write(r, c); // v3 — depends on v0 via state + data
        b.ret();
        let p = b.finish().unwrap();
        let dep = DepGraph::build(&p);
        let mut labels = initial_labels(&p);
        run_label_rules(&p, &dep, &mut labels);
        // v3 depends on v0 and shares the register: v3 loses pre (rule 3),
        // v0 loses post (rule 4).
        assert!(!labels[3].pre, "second access must lose pre");
        assert!(!labels[0].post, "first access must lose post");
        // Each keeps the other option open.
        assert!(labels[0].pre);
        assert!(labels[3].post);
    }

    #[test]
    fn rule5_loops_pinned_to_server() {
        let text = r#"
program loopy {
  b0:
    v0 = const 0 : u32
    jmp b1
  b1:
    v1 = phi [b0: v0, b2: v4]
    v2 = const 10 : u32
    v3 = lt v1, v2
    br v3, b2, b3
  b2:
    v4 = add v1, v2
    jmp b1
  b3:
    send
    ret
}
"#;
        let p = gallium_mir::parser::parse_program(text).unwrap();
        let dep = DepGraph::build(&p);
        let mut labels = initial_labels(&p);
        run_label_rules(&p, &dep, &mut labels);
        // v0 precedes the loop (it may keep `pre`); v1..v4 are loop-resident.
        for (v, label) in labels.iter().enumerate().take(5).skip(1) {
            assert!(!label.offloadable(), "v{v} is loop-resident");
        }
        assert!(!labels[0].post, "v0 feeds the loop, so it loses post");
        // The send after the loop depends on nothing in it except control;
        // it is control-dependent on v3 (loop exit) which is in the loop,
        // so it loses pre — but post remains.
        assert!(labels[5].post);
    }

    #[test]
    fn fixpoint_is_stable() {
        let p = minilb();
        let dep = DepGraph::build(&p);
        let mut labels = initial_labels(&p);
        run_label_rules(&p, &dep, &mut labels);
        let snapshot = labels.to_vec();
        let removed_again = run_label_rules(&p, &dep, &mut labels);
        assert_eq!(removed_again, 0);
        assert_eq!(labels, snapshot.as_slice());
    }
}
