//! The partitioned ("staged") program produced by the driver.

use crate::explain::{ExplainReason, ExplainReport};
use crate::labels::{LabelSet, RuleId};
use gallium_mir::{Program, StateId, ValueId};
use gallium_net::TransferHeaderLayout;

/// The three partitions of Figure 1, ordered by pipeline position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Partition {
    /// Runs on the switch before the server sees the packet.
    Pre,
    /// Runs on the middlebox server.
    NonOffloaded,
    /// Runs on the switch after the server is done.
    Post,
}

impl Partition {
    /// Is this partition executed on the switch?
    pub fn on_switch(self) -> bool {
        matches!(self, Partition::Pre | Partition::Post)
    }

    /// Short lowercase label ("pre" / "server" / "post") for reports.
    pub fn label(self) -> &'static str {
        match self {
            Partition::Pre => "pre",
            Partition::NonOffloaded => "server",
            Partition::Post => "post",
        }
    }
}

/// Where a global state lives after partitioning (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatePlacement {
    /// Accessed exclusively by offloaded statements: lives on the switch
    /// (P4 table or register).
    SwitchOnly,
    /// Accessed exclusively by the server: stays in the server process.
    ServerOnly,
    /// Accessed by both: replicated, with all updates made by the server
    /// and pushed through the write-back/atomic-update protocol (§4.3.3).
    Replicated,
    /// Never accessed (declared but unused).
    Unused,
}

impl StatePlacement {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StatePlacement::SwitchOnly => "switch-only",
            StatePlacement::ServerOnly => "server-only",
            StatePlacement::Replicated => "replicated",
            StatePlacement::Unused => "unused",
        }
    }
}

/// A fully partitioned program plus everything code generation needs.
#[derive(Debug, Clone)]
pub struct StagedProgram {
    /// The original (validated) program.
    pub prog: Program,
    /// Partition of each instruction (indexed by [`ValueId`]).
    pub assignment: Vec<Partition>,
    /// First cause that fixed each instruction's assignment (indexed by
    /// [`ValueId`]) — the raw material for [`StagedProgram::explain`].
    pub reasons: Vec<ExplainReason>,
    /// Placement of each global state (indexed by [`StateId`]).
    pub placements: Vec<StatePlacement>,
    /// Transfer header on the switch→server hop (pre results the server or
    /// post needs).
    pub header_to_server: TransferHeaderLayout,
    /// Transfer header on the server→switch hop (pre/server results post
    /// needs).
    pub header_to_switch: TransferHeaderLayout,
    /// Values carried by `header_to_server`.
    pub to_server_values: Vec<ValueId>,
    /// Values carried by `header_to_switch`.
    pub to_switch_values: Vec<ValueId>,
    /// Label sets right after the first dependency-rule fixpoint (§4.2.1,
    /// before any resource refinement) — the translation-validation anchor
    /// the independent verifier diffs its own derivation against. Empty
    /// when the staged program was built without the driver (tests).
    pub phase1_labels: Vec<LabelSet>,
    /// The §4 rule that first constrained each instruction, if any
    /// (indexed by [`ValueId`]; `None` for instructions that kept every
    /// label). Empty when built without the driver.
    pub rules: Vec<Option<RuleId>>,
}

impl StagedProgram {
    /// Partition of instruction `v`.
    pub fn partition_of(&self, v: ValueId) -> Partition {
        self.assignment[v.0 as usize]
    }

    /// Placement of state `s`.
    pub fn placement_of(&self, s: StateId) -> StatePlacement {
        self.placements[s.0 as usize]
    }

    /// The first cause that fixed instruction `v`'s assignment.
    pub fn reason_of(&self, v: ValueId) -> ExplainReason {
        self.reasons[v.0 as usize]
    }

    /// The §4 rule that first constrained instruction `v`, if recorded.
    pub fn rule_of(&self, v: ValueId) -> Option<RuleId> {
        self.rules.get(v.0 as usize).copied().flatten()
    }

    /// Build the per-instruction partition explanation (§4 narrative).
    pub fn explain(&self) -> ExplainReport {
        ExplainReport::new(self)
    }

    /// Number of instructions assigned to switch partitions.
    pub fn offloaded_count(&self) -> usize {
        self.assignment.iter().filter(|p| p.on_switch()).count()
    }

    /// Number of instructions assigned to the server.
    pub fn server_count(&self) -> usize {
        self.assignment.len() - self.offloaded_count()
    }

    /// The canonical transfer-field name for an SSA value.
    pub fn field_name(v: ValueId) -> String {
        format!("v{}", v.0)
    }

    /// Does the program have any server-resident instruction at all? (If
    /// not, every packet takes the fast path — true for the firewall and
    /// the proxy in the paper's evaluation.)
    pub fn fully_offloaded(&self) -> bool {
        self.server_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ordering_matches_pipeline() {
        assert!(Partition::Pre < Partition::NonOffloaded);
        assert!(Partition::NonOffloaded < Partition::Post);
        assert!(Partition::Pre.on_switch());
        assert!(Partition::Post.on_switch());
        assert!(!Partition::NonOffloaded.on_switch());
    }

    #[test]
    fn field_names_are_stable() {
        assert_eq!(StagedProgram::field_name(ValueId(17)), "v17");
    }
}
