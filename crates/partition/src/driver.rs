//! The partitioning driver: label rules + resource refinement (§4.2.2).

use crate::explain::ExplainReason;
use crate::labels::{
    initial_labels, run_label_rules, run_label_rules_traced, LabelSet, LabelTrace, RuleId,
};
use crate::model::SwitchModel;
use crate::staged::{Partition, StagedProgram, StatePlacement};
use crate::transfer::{boundary_values, make_layout};
use gallium_analysis::{DepGraph, Liveness};
use gallium_mir::{MirError, Program, StateId, ValueId};
use gallium_telemetry::names;

/// Partitioning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The input program failed validation.
    Validation(MirError),
    /// The refinement loop could not satisfy the switch constraints (this
    /// cannot happen for well-formed inputs — moving everything to the
    /// server always satisfies them — so it indicates an internal bug).
    Unsatisfiable(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Validation(e) => write!(f, "validation: {e}"),
            PartitionError::Unsatisfiable(s) => write!(f, "unsatisfiable: {s}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Assign partitions from final labels, per §4.2.2: `pre` (alone or with
/// `post`) → pre-processing; `post` only → post-processing; neither →
/// non-offloaded.
pub fn assign(labels: &[LabelSet]) -> Vec<Partition> {
    labels
        .iter()
        .map(|l| {
            if l.pre {
                Partition::Pre
            } else if l.post {
                Partition::Post
            } else {
                Partition::NonOffloaded
            }
        })
        .collect()
}

/// Re-run the label rules, charging any instruction that newly lost its
/// last offload label to `cause` (or to `LoopResident` when the rule-5
/// loop check is what removed it). First cause wins: an instruction
/// already explained keeps its original reason.
fn relabel(
    prog: &Program,
    dep: &DepGraph,
    labels: &mut [LabelSet],
    reasons: &mut [ExplainReason],
    trace: &mut [LabelTrace],
    cause: ExplainReason,
) {
    let before: Vec<bool> = labels.iter().map(|l| l.offloadable()).collect();
    run_label_rules_traced(prog, dep, labels, trace);
    for (v, was) in before.iter().enumerate() {
        if *was && !labels[v].offloadable() && reasons[v] == ExplainReason::Offloaded {
            reasons[v] = if dep.in_loop(ValueId(v as u32)) {
                ExplainReason::LoopResident
            } else {
                cause
            };
        }
    }
}

/// Charge instruction `v` to `cause` if a direct label clear just made it
/// non-offloadable (first cause wins).
fn mark(labels: &[LabelSet], reasons: &mut [ExplainReason], v: usize, cause: ExplainReason) {
    if !labels[v].offloadable() && reasons[v] == ExplainReason::Offloaded {
        reasons[v] = cause;
    }
}

/// Partition `prog` for `model`, running the full §4.2 pipeline.
pub fn partition_program(
    prog: &Program,
    model: &SwitchModel,
) -> Result<StagedProgram, PartitionError> {
    let reg = gallium_telemetry::global();
    let _span = reg.histogram(names::PARTITION_NS).time();
    gallium_mir::validate::validate(prog).map_err(PartitionError::Validation)?;
    let dep = DepGraph::build(prog);
    let n = prog.func.insts.len();

    // Phase 1: expressiveness + dependency labeling (§4.2.1).
    let mut labels = initial_labels(prog);
    let mut trace = vec![LabelTrace::default(); n];
    // Reasons start from the expressiveness verdict; each later phase only
    // explains instructions it newly evicts.
    let mut reasons: Vec<ExplainReason> = labels
        .iter()
        .map(|l| {
            if l.offloadable() {
                ExplainReason::Offloaded
            } else {
                ExplainReason::NotExpressible
            }
        })
        .collect();
    relabel(
        prog,
        &dep,
        &mut labels,
        &mut reasons,
        &mut trace,
        ExplainReason::DependencyRules,
    );
    // Snapshot the pure §4.2.1 result before any resource refinement: the
    // independent verifier re-derives exactly this and diffs against it.
    let phase1_labels = labels.clone();

    // Constraint 2: pipeline depth via dependency distance.
    let entry_d = dep.entry_distances();
    let exit_d = dep.exit_distances();
    for v in 0..n {
        if entry_d[v] > model.pipeline_depth && labels[v].pre {
            labels[v].pre = false;
            trace[v].note_pre(RuleId::Constraint2PipelineDepth);
        }
        if exit_d[v] > model.pipeline_depth && labels[v].post {
            labels[v].post = false;
            trace[v].note_post(RuleId::Constraint2PipelineDepth);
        }
        mark(&labels, &mut reasons, v, ExplainReason::PipelineDepth);
    }
    relabel(
        prog,
        &dep,
        &mut labels,
        &mut reasons,
        &mut trace,
        ExplainReason::PipelineDepth,
    );

    // Constraint 1: switch memory. Trim offloaded state accesses from the
    // edges of the program inward until the footprint fits.
    loop {
        let footprint = switch_memory_bits(prog, &labels);
        if footprint <= model.memory_bits {
            break;
        }
        // Remove `pre` from the last pre-labeled state access, else `post`
        // from the first post-labeled one.
        let last_pre = (0..n)
            .rev()
            .find(|&v| labels[v].pre && touches_state(prog, v));
        if let Some(v) = last_pre {
            labels[v].pre = false;
            trace[v].note_pre(RuleId::Constraint1Memory);
            mark(&labels, &mut reasons, v, ExplainReason::SwitchMemory);
        } else if let Some(v) = (0..n).find(|&v| labels[v].post && touches_state(prog, v)) {
            labels[v].post = false;
            trace[v].note_post(RuleId::Constraint1Memory);
            mark(&labels, &mut reasons, v, ExplainReason::SwitchMemory);
        } else {
            break; // no offloaded state left; footprint is zero
        }
        relabel(
            prog,
            &dep,
            &mut labels,
            &mut reasons,
            &mut trace,
            ExplainReason::SwitchMemory,
        );
    }

    // Replicated-state write restriction (§4.3.3): when a state is also
    // accessed by the server, all *updates* must come from the server so
    // the write-back protocol can serialize them.
    loop {
        let mut changed = false;
        for s in 0..prog.states.len() {
            let sid = StateId(s as u32);
            let server_touches =
                (0..n).any(|v| !labels[v].offloadable() && touches_specific(prog, v, sid));
            if !server_touches {
                continue;
            }
            for v in 0..n {
                if labels[v].offloadable() && writes_specific(prog, v, sid) {
                    if labels[v].pre {
                        trace[v].note_pre(RuleId::ReplicatedWrite);
                    }
                    if labels[v].post {
                        trace[v].note_post(RuleId::ReplicatedWrite);
                    }
                    labels[v].pre = false;
                    labels[v].post = false;
                    reasons[v] = ExplainReason::ReplicatedWrite;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        relabel(
            prog,
            &dep,
            &mut labels,
            &mut reasons,
            &mut trace,
            ExplainReason::ReplicatedWrite,
        );
    }

    // Constraint 3: at most one offloaded access per state per traversal.
    // Exhaustive per-state search keeping the access that maximizes the
    // offloaded statement count.
    for s in 0..prog.states.len() {
        let sid = StateId(s as u32);
        for phase in [PhaseLabel::Pre, PhaseLabel::Post] {
            let accesses: Vec<usize> = (0..n)
                .filter(|&v| phase.get(&labels[v]) && touches_specific(prog, v, sid))
                .collect();
            if accesses.len() <= 1 {
                continue;
            }
            let mut best: Option<(usize, Vec<LabelSet>)> = None;
            for &keep in &accesses {
                let mut trial = labels.to_vec();
                for &other in &accesses {
                    if other != keep {
                        phase.clear(&mut trial[other]);
                    }
                }
                run_label_rules(prog, &dep, &mut trial);
                let count = trial.iter().filter(|l| l.offloadable()).count();
                if best.as_ref().map(|(c, _)| count > *c).unwrap_or(true) {
                    best = Some((count, trial));
                }
            }
            if let Some((_, chosen)) = best {
                for v in 0..n {
                    if labels[v].pre && !chosen[v].pre {
                        trace[v].note_pre(RuleId::Constraint3SingleAccess);
                    }
                    if labels[v].post && !chosen[v].post {
                        trace[v].note_post(RuleId::Constraint3SingleAccess);
                    }
                    if labels[v].offloadable()
                        && !chosen[v].offloadable()
                        && reasons[v] == ExplainReason::Offloaded
                    {
                        reasons[v] = ExplainReason::SingleStateAccess;
                    }
                }
                labels = chosen;
            }
        }
    }

    // Constraints 4 & 5: metadata scratchpad and transfer-header budgets.
    // Greedy single scan in (reverse) topological order, re-running the
    // label rules after every move.
    let liveness = Liveness::compute(&prog.func);
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > n + 2 {
            return Err(PartitionError::Unsatisfiable(
                "constraint-4/5 refinement did not converge".into(),
            ));
        }
        let assignment = assign(&labels);
        let (pre_meta, post_meta) = metadata_bits(prog, &liveness, &assignment);
        let b = boundary_values(prog, &dep, &assignment);
        let h1 = make_layout(prog, &b.to_server);
        let h2 = make_layout(prog, &b.to_switch);
        let pre_bad =
            pre_meta > model.metadata_bits || h1.wire_bytes() > model.transfer_budget_bytes;
        let post_bad =
            post_meta > model.metadata_bits || h2.wire_bytes() > model.transfer_budget_bytes;
        if !pre_bad && !post_bad {
            break;
        }
        // Which budget tripped decides the recorded reason: the metadata
        // scratchpad (constraint 4) or the transfer header (constraint 5).
        let pre_cause = if pre_meta > model.metadata_bits {
            ExplainReason::MetadataBudget
        } else {
            ExplainReason::TransferBudget
        };
        let post_cause = if post_meta > model.metadata_bits {
            ExplainReason::MetadataBudget
        } else {
            ExplainReason::TransferBudget
        };
        if pre_bad {
            // Reverse topological (here: reverse source) order.
            let victim = (0..n)
                .rev()
                .find(|&v| assignment[v] == Partition::Pre)
                .ok_or_else(|| {
                    PartitionError::Unsatisfiable("pre budget violated with empty pre".into())
                })?;
            labels[victim].pre = false;
            trace[victim].note_pre(if pre_cause == ExplainReason::MetadataBudget {
                RuleId::Constraint4Metadata
            } else {
                RuleId::Constraint5Transfer
            });
            mark(&labels, &mut reasons, victim, pre_cause);
        }
        if post_bad {
            // Forward topological order: earliest post statements first.
            let victim = (0..n).find(|&v| assignment[v] == Partition::Post);
            match victim {
                Some(v) => {
                    labels[v].post = false;
                    trace[v].note_post(if post_cause == ExplainReason::MetadataBudget {
                        RuleId::Constraint4Metadata
                    } else {
                        RuleId::Constraint5Transfer
                    });
                    mark(&labels, &mut reasons, v, post_cause);
                }
                None if !pre_bad => {
                    return Err(PartitionError::Unsatisfiable(
                        "post budget violated with empty post".into(),
                    ))
                }
                None => {}
            }
        }
        relabel(
            prog,
            &dep,
            &mut labels,
            &mut reasons,
            &mut trace,
            if pre_bad { pre_cause } else { post_cause },
        );
    }

    // Finalize.
    let assignment = assign(&labels);
    check_consistency(prog, &dep, &assignment)?;
    let placements = compute_placements(prog, &assignment);
    let b = boundary_values(prog, &dep, &assignment);
    let header_to_server = make_layout(prog, &b.to_server);
    let header_to_switch = make_layout(prog, &b.to_switch);

    // Decision counters for the process-wide registry: where instructions
    // landed and which constraint rejected the server-bound ones.
    reg.counter(names::PARTITION_PROGRAMS).inc();
    for part in [Partition::Pre, Partition::NonOffloaded, Partition::Post] {
        let count = assignment.iter().filter(|&&p| p == part).count() as u64;
        reg.counter(&format!(
            "{}{}",
            names::PARTITION_INSTS_PREFIX,
            part.label()
        ))
        .add(count);
    }
    for reason in ExplainReason::ALL {
        if reason == ExplainReason::Offloaded {
            continue;
        }
        let count = reasons.iter().filter(|&&r| r == reason).count() as u64;
        if count > 0 {
            reg.counter(&format!(
                "{}{}",
                names::PARTITION_REJECTIONS_PREFIX,
                reason.key()
            ))
            .add(count);
        }
    }

    // Per-instruction rule attribution: the reason's canonical rule when
    // one-to-one, otherwise the first label removal the trace recorded.
    let rules: Vec<Option<RuleId>> = (0..n)
        .map(|v| reasons[v].rule_hint().or_else(|| trace[v].first()))
        .collect();

    Ok(StagedProgram {
        prog: prog.clone(),
        assignment,
        reasons,
        placements,
        header_to_server,
        header_to_switch,
        to_server_values: b.to_server,
        to_switch_values: b.to_switch,
        phase1_labels,
        rules,
    })
}

#[derive(Clone, Copy)]
enum PhaseLabel {
    Pre,
    Post,
}

impl PhaseLabel {
    fn get(self, l: &LabelSet) -> bool {
        match self {
            PhaseLabel::Pre => l.pre,
            PhaseLabel::Post => l.post,
        }
    }
    fn clear(self, l: &mut LabelSet) {
        match self {
            PhaseLabel::Pre => l.pre = false,
            PhaseLabel::Post => l.post = false,
        }
    }
}

fn touches_state(prog: &Program, v: usize) -> bool {
    !prog.func.insts[v].op.states_touched().is_empty()
}

fn touches_specific(prog: &Program, v: usize, s: StateId) -> bool {
    prog.func.insts[v].op.states_touched().contains(&s)
}

fn writes_specific(prog: &Program, v: usize, s: StateId) -> bool {
    prog.func.insts[v]
        .op
        .writes()
        .contains(&gallium_mir::Loc::State(s))
}

/// Constraint-1 footprint: total memory of states touched by any statement
/// still labeled for the switch. Unannotated (unbounded) states count as
/// infinite.
fn switch_memory_bits(prog: &Program, labels: &[LabelSet]) -> usize {
    let mut total = 0usize;
    for (si, st) in prog.states.iter().enumerate() {
        let sid = StateId(si as u32);
        let offloaded = (0..prog.func.insts.len())
            .any(|v| labels[v].offloadable() && touches_specific(prog, v, sid));
        if offloaded {
            total = total.saturating_add(st.kind.memory_bits().unwrap_or(usize::MAX));
        }
    }
    total
}

/// Constraint-4 metric: maximum concurrently-live metadata bits in the pre
/// and post traversals.
fn metadata_bits(prog: &Program, liveness: &Liveness, assignment: &[Partition]) -> (usize, usize) {
    let pre = liveness.max_live_bits(&prog.func, &|v: ValueId| {
        assignment[v.0 as usize] == Partition::Pre
    });
    let post = liveness.max_live_bits(&prog.func, &|v: ValueId| {
        assignment[v.0 as usize] == Partition::Post
    });
    (pre, post)
}

/// Final sanity check: every dependency edge flows forward through the
/// pipeline (Pre ≤ NonOffloaded ≤ Post).
fn check_consistency(
    prog: &Program,
    dep: &DepGraph,
    assignment: &[Partition],
) -> Result<(), PartitionError> {
    for v in 0..prog.func.insts.len() {
        for (t, _) in dep.deps_out(ValueId(v as u32)) {
            if assignment[v] > assignment[t.0 as usize] {
                return Err(PartitionError::Unsatisfiable(format!(
                    "dependency v{v} -> {t} flows backwards ({:?} -> {:?})",
                    assignment[v], assignment[t.0 as usize]
                )));
            }
        }
    }
    Ok(())
}

/// State placement from the final assignment (§4.3.1).
fn compute_placements(prog: &Program, assignment: &[Partition]) -> Vec<StatePlacement> {
    (0..prog.states.len())
        .map(|s| {
            let sid = StateId(s as u32);
            let mut on_switch = false;
            let mut on_server = false;
            for (v, part) in assignment.iter().enumerate() {
                if touches_specific(prog, v, sid) {
                    if part.on_switch() {
                        on_switch = true;
                    } else {
                        on_server = true;
                    }
                }
            }
            match (on_switch, on_server) {
                (true, true) => StatePlacement::Replicated,
                (true, false) => StatePlacement::SwitchOnly,
                (false, true) => StatePlacement::ServerOnly,
                (false, false) => StatePlacement::Unused,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr); // v0
        let daddr = b.read_field(HeaderField::IpDaddr); // v1
        let hash32 = b.bin(BinOp::Xor, saddr, daddr); // v2
        let mask = b.cnst(0xFFFF, 32); // v3
        let low = b.bin(BinOp::And, hash32, mask); // v4
        let key = b.cast(low, 16); // v5
        let res = b.map_get(map, vec![key]); // v6
        let null = b.is_null(res); // v7
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0); // v8
        b.write_field(HeaderField::IpDaddr, bk); // v9
        b.send(); // v10
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends); // v11
        let idx = b.bin(BinOp::Mod, hash32, len); // v12
        let bk2 = b.vec_get(backends, idx); // v13
        b.write_field(HeaderField::IpDaddr, bk2); // v14
        b.map_put(map, vec![key], vec![bk2]); // v15
        b.send(); // v16
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn minilb_partitions_like_figure4() {
        let p = minilb();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        use Partition::*;
        let expect = [
            Pre,
            Pre,
            Pre,
            Pre,
            Pre,
            Pre,
            Pre,
            Pre, // entry block
            Pre,
            Pre,
            Pre, // hit branch
            NonOffloaded,
            NonOffloaded,
            NonOffloaded, // idx / backends[idx]
            Post,         // daddr write (miss)
            NonOffloaded, // map.insert
            Post,         // send (miss)
        ];
        assert_eq!(staged.assignment, expect);
    }

    #[test]
    fn minilb_state_placements() {
        let p = minilb();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        let map = p.state_by_name("map").unwrap();
        let backends = p.state_by_name("backends").unwrap();
        // The connection map is read on the switch and written on the
        // server: replicated. The backend list is server-only.
        assert_eq!(staged.placement_of(map), StatePlacement::Replicated);
        assert_eq!(staged.placement_of(backends), StatePlacement::ServerOnly);
    }

    #[test]
    fn minilb_headers_within_budget() {
        let p = minilb();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        assert!(staged.header_to_server.check_budget(20).is_ok());
        assert!(staged.header_to_switch.check_budget(20).is_ok());
        // hash32 and the branch bit must cross, as in Figure 5.
        assert!(staged.to_server_values.contains(&ValueId(2)));
        assert!(staged.to_server_values.contains(&ValueId(7)));
        assert!(staged.to_switch_values.contains(&ValueId(13)));
    }

    #[test]
    fn tiny_pipeline_depth_pushes_work_to_server() {
        let p = minilb();
        let model = SwitchModel::tiny(3, usize::MAX / 2, 800, 20);
        let staged = partition_program(&p, &model).unwrap();
        // With only 3 stages, the deep chain (… mapget → isnull → branch
        // targets) cannot all fit; fewer statements are offloaded than with
        // the full pipeline.
        let full = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        assert!(staged.offloaded_count() < full.offloaded_count());
        // Still internally consistent.
        assert!(staged.offloaded_count() + staged.server_count() == p.func.len());
    }

    #[test]
    fn tiny_memory_evicts_map() {
        let p = minilb();
        // Map needs 65536 * 48 bits; give the switch less than that.
        let model = SwitchModel::tiny(16, 1024, 800, 20);
        let staged = partition_program(&p, &model).unwrap();
        let map = p.state_by_name("map").unwrap();
        assert_eq!(staged.placement_of(map), StatePlacement::ServerOnly);
        // The map lookup is no longer offloaded.
        assert_eq!(staged.partition_of(ValueId(6)), Partition::NonOffloaded);
    }

    #[test]
    fn tiny_header_budget_shrinks_offload() {
        let p = minilb();
        // A 6-byte budget cannot fit the 3-byte preamble + 33+ bits of
        // Figure 5 plus the key; the partitioner must retreat.
        let model = SwitchModel::tiny(16, usize::MAX / 2, 800, 6);
        let staged = partition_program(&p, &model).unwrap();
        assert!(staged.header_to_server.wire_bytes() <= 6);
        assert!(staged.header_to_switch.wire_bytes() <= 6);
        let full = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        assert!(staged.offloaded_count() <= full.offloaded_count());
    }

    #[test]
    fn unannotated_map_stays_on_server() {
        let mut b = FuncBuilder::new("t");
        let m = b.decl_map("m", vec![16], vec![32], None); // no size annotation
        let k = b.read_field(HeaderField::SrcPort);
        let r = b.map_get(m, vec![k]);
        let null = b.is_null(r);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(null, t, e);
        b.switch_to(t);
        b.drop_pkt();
        b.ret();
        b.switch_to(e);
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        assert_eq!(staged.partition_of(ValueId(1)), Partition::NonOffloaded);
        assert_eq!(
            staged.placement_of(p.state_by_name("m").unwrap()),
            StatePlacement::ServerOnly
        );
    }

    #[test]
    fn fully_offloadable_program_has_empty_server() {
        // A stateless TTL-decrementing forwarder.
        let mut b = FuncBuilder::new("fwd");
        let ttl = b.read_field(HeaderField::IpTtl);
        let one = b.cnst(1, 8);
        let newttl = b.bin(BinOp::Sub, ttl, one);
        b.write_field(HeaderField::IpTtl, newttl);
        b.update_checksum();
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        assert!(staged.fully_offloaded());
        assert!(staged.to_server_values.is_empty());
        assert!(staged.header_to_server.fields().is_empty());
    }

    #[test]
    fn consistency_check_holds_for_all_partitions() {
        let p = minilb();
        let staged = partition_program(&p, &SwitchModel::tofino_like()).unwrap();
        let dep = DepGraph::build(&p);
        check_consistency(&p, &dep, &staged.assignment).unwrap();
    }
}
