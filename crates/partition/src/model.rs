//! The abstract switch resource model (§2.2).

/// Why a [`SwitchModel`] is unusable as a compilation target.
///
/// Returned by [`SwitchModel::validate`]; callers that must tolerate
/// degenerate models (the partitioner routes everything to the server and
/// lets the loader reject the deployment) simply skip validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelError {
    /// `pipeline_depth == 0`: no match-action stage could ever execute.
    ZeroPipelineDepth,
    /// `memory_bits == 0`: no table could ever be allocated.
    ZeroMemory,
    /// `metadata_bits == 0`: no intermediate value could ever be carried
    /// between stages.
    ZeroMetadata,
    /// `transfer_budget_bytes == 0`: no value could ever cross the
    /// switch/server boundary.
    ZeroTransferBudget,
    /// `memory_bits < pipeline_depth`: the per-stage SRAM share
    /// (`memory_bits / pipeline_depth`) rounds down to zero bits, so the
    /// budgets are mutually inconsistent.
    PerStageMemoryZero {
        /// Total table SRAM in bits.
        memory_bits: usize,
        /// Number of stages the SRAM is divided across.
        pipeline_depth: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ZeroPipelineDepth => write!(f, "pipeline depth is zero"),
            ModelError::ZeroMemory => write!(f, "table memory budget is zero"),
            ModelError::ZeroMetadata => write!(f, "metadata budget is zero"),
            ModelError::ZeroTransferBudget => write!(f, "transfer-header budget is zero"),
            ModelError::PerStageMemoryZero {
                memory_bits,
                pipeline_depth,
            } => write!(
                f,
                "per-stage memory is zero: {memory_bits} total bits over {pipeline_depth} stages"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Resource limits of the target programmable switch.
///
/// The values of [`SwitchModel::tofino_like`] follow the paper: 10–20
/// physical match-action stages (we use a conservative depth, as the paper
/// does in §4.2.2 footnote 3), a few tens of MBs of table SRAM, under a
/// hundred bytes of per-packet metadata scratchpad, and a 20-byte budget
/// for the synthesized transfer header (Constraint 5).
///
/// # Unit conventions
///
/// | Field                   | Unit  | Scope                                  |
/// |-------------------------|-------|----------------------------------------|
/// | `pipeline_depth`        | stages| whole pipeline (one packet traversal)  |
/// | `memory_bits`           | bits  | **total** across all stages            |
/// | `metadata_bits`         | bits  | per packet, shared by all stages       |
/// | `transfer_budget_bytes` | bytes | per synthesized transfer header        |
///
/// `memory_bits` is the only *total* budget: real hardware banks SRAM per
/// stage, and the even split `memory_bits / pipeline_depth` is exposed as
/// [`SwitchModel::per_stage_memory_bits`] for per-stage auditing. Memory
/// and metadata are in **bits** (matching `Ty::meta_bits` and
/// `StateKind::memory_bits`); only the transfer budget is in bytes,
/// because it bounds wire bytes of the encapsulation header (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchModel {
    /// Number of sequential match-action stages one packet traversal may
    /// use (Constraint 2 bound). Unit: stages, whole pipeline.
    pub pipeline_depth: usize,
    /// Stateful table SRAM in **bits**, summed across every stage
    /// (Constraint 1 bound). Divide by `pipeline_depth` for the per-stage
    /// share.
    pub memory_bits: usize,
    /// Per-packet metadata scratchpad in **bits** (Constraint 4 bound).
    /// One shared budget per packet, not per stage: slots are reused by
    /// live range (§4.3.1).
    pub metadata_bits: usize,
    /// Maximum synthesized transfer-header size in **bytes** (Constraint 5
    /// bound), counted on the wire including the preamble.
    pub transfer_budget_bytes: usize,
}

impl SwitchModel {
    /// A Tofino-class switch, matching the paper's evaluation platform.
    pub fn tofino_like() -> Self {
        SwitchModel {
            pipeline_depth: 16,
            memory_bits: 20 * 8 * 1024 * 1024 * 8, // 20 MB of SRAM
            metadata_bits: 100 * 8,                // "< 100 bytes" (§4.3.1)
            transfer_budget_bytes: 20,             // "We set this constraint to be 20 bytes"
        }
    }

    /// A deliberately tiny switch for stress-testing the refinement loop.
    pub fn tiny(depth: usize, memory_bits: usize, metadata_bits: usize, budget: usize) -> Self {
        SwitchModel {
            pipeline_depth: depth,
            memory_bits,
            metadata_bits,
            transfer_budget_bytes: budget,
        }
    }

    /// The even per-stage share of the total table SRAM, in bits.
    ///
    /// Zero-depth models report zero rather than dividing by zero; such
    /// models are rejected by [`SwitchModel::validate`] anyway.
    pub fn per_stage_memory_bits(&self) -> usize {
        self.memory_bits
            .checked_div(self.pipeline_depth)
            .unwrap_or(0)
    }

    /// Reject zero or mutually inconsistent budgets with a typed error.
    ///
    /// The partitioner deliberately does *not* call this — degenerate
    /// models must still partition (everything lands on the server) so
    /// that the loader, not the compiler, owns deployment rejection. The
    /// verifier and tooling front ends call it to fail fast.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.pipeline_depth == 0 {
            return Err(ModelError::ZeroPipelineDepth);
        }
        if self.memory_bits == 0 {
            return Err(ModelError::ZeroMemory);
        }
        if self.metadata_bits == 0 {
            return Err(ModelError::ZeroMetadata);
        }
        if self.transfer_budget_bytes == 0 {
            return Err(ModelError::ZeroTransferBudget);
        }
        if self.per_stage_memory_bits() == 0 {
            return Err(ModelError::PerStageMemoryZero {
                memory_bits: self.memory_bits,
                pipeline_depth: self.pipeline_depth,
            });
        }
        Ok(())
    }
}

impl Default for SwitchModel {
    fn default() -> Self {
        Self::tofino_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_defaults_match_paper() {
        let m = SwitchModel::tofino_like();
        assert_eq!(m.transfer_budget_bytes, 20);
        assert_eq!(m.metadata_bits, 800);
        assert!((10..=20).contains(&m.pipeline_depth));
        assert!(m.memory_bits >= 10 * 8 * 1024 * 1024 * 8);
        assert_eq!(SwitchModel::default(), m);
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(m.per_stage_memory_bits(), m.memory_bits / 16);
    }

    #[test]
    fn validate_rejects_degenerate_budgets() {
        assert_eq!(
            SwitchModel::tiny(0, 1024, 800, 20).validate(),
            Err(ModelError::ZeroPipelineDepth)
        );
        assert_eq!(
            SwitchModel::tiny(16, 0, 800, 20).validate(),
            Err(ModelError::ZeroMemory)
        );
        assert_eq!(
            SwitchModel::tiny(16, 1024, 0, 20).validate(),
            Err(ModelError::ZeroMetadata)
        );
        assert_eq!(
            SwitchModel::tiny(16, 1024, 800, 0).validate(),
            Err(ModelError::ZeroTransferBudget)
        );
        assert_eq!(
            SwitchModel::tiny(16, 7, 800, 20).validate(),
            Err(ModelError::PerStageMemoryZero {
                memory_bits: 7,
                pipeline_depth: 16,
            })
        );
        assert_eq!(
            SwitchModel::tiny(0, 1024, 800, 20).per_stage_memory_bits(),
            0
        );
    }
}
