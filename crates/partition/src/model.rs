//! The abstract switch resource model (§2.2).

/// Resource limits of the target programmable switch.
///
/// The values of [`SwitchModel::tofino_like`] follow the paper: 10–20
/// physical match-action stages (we use a conservative depth, as the paper
/// does in §4.2.2 footnote 3), a few tens of MBs of table SRAM, under a
/// hundred bytes of per-packet metadata scratchpad, and a 20-byte budget
/// for the synthesized transfer header (Constraint 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchModel {
    /// Number of sequential pipeline stages (Constraint 2 bound).
    pub pipeline_depth: usize,
    /// Total stateful memory in bits (Constraint 1 bound).
    pub memory_bits: usize,
    /// Per-packet metadata scratchpad in bits (Constraint 4 bound).
    pub metadata_bits: usize,
    /// Maximum transfer-header size in bytes (Constraint 5 bound).
    pub transfer_budget_bytes: usize,
}

impl SwitchModel {
    /// A Tofino-class switch, matching the paper's evaluation platform.
    pub fn tofino_like() -> Self {
        SwitchModel {
            pipeline_depth: 16,
            memory_bits: 20 * 8 * 1024 * 1024 * 8, // 20 MB of SRAM
            metadata_bits: 100 * 8,                // "< 100 bytes" (§4.3.1)
            transfer_budget_bytes: 20,             // "We set this constraint to be 20 bytes"
        }
    }

    /// A deliberately tiny switch for stress-testing the refinement loop.
    pub fn tiny(depth: usize, memory_bits: usize, metadata_bits: usize, budget: usize) -> Self {
        SwitchModel {
            pipeline_depth: depth,
            memory_bits,
            metadata_bits,
            transfer_budget_bytes: budget,
        }
    }
}

impl Default for SwitchModel {
    fn default() -> Self {
        Self::tofino_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_defaults_match_paper() {
        let m = SwitchModel::tofino_like();
        assert_eq!(m.transfer_budget_bytes, 20);
        assert_eq!(m.metadata_bits, 800);
        assert!((10..=20).contains(&m.pipeline_depth));
        assert!(m.memory_bits >= 10 * 8 * 1024 * 1024 * 8);
        assert_eq!(SwitchModel::default(), m);
    }
}
