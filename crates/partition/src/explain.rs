//! Partition explain reports: *why* each instruction landed where it did.
//!
//! The driver records, per instruction, the first constraint that forced
//! it off the switch (first cause wins — later phases never overwrite an
//! earlier verdict). [`ExplainReport`] renders that record either as an
//! aligned text table for humans or as JSON for tooling, using the
//! paper's §4 vocabulary for the reasons.

use crate::labels::RuleId;
use crate::staged::{Partition, StagedProgram, StatePlacement};
use gallium_mir::{printer, ValueId};
use gallium_telemetry::json_escape;
use std::fmt::Write as _;

/// Why an instruction ended up in its partition, in the paper's terms.
///
/// [`ExplainReason::Offloaded`] marks instructions that stayed on the
/// switch; every other variant names the first refinement phase (§4.2)
/// that evicted the instruction to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExplainReason {
    /// Survived every phase: runs on the switch (pre or post).
    Offloaded,
    /// P4 cannot express the operation at all (§4.2.1 initial labels).
    NotExpressible,
    /// Sits inside a loop, which the pipeline cannot execute (rule 5).
    LoopResident,
    /// Evicted by the dependency-consistency label rules 1–4 (§4.2.1),
    /// i.e. it depends on (or feeds) a server-resident instruction.
    DependencyRules,
    /// Its dependency chain exceeds the pipeline depth (constraint 2).
    PipelineDepth,
    /// Its state does not fit in switch memory (constraint 1).
    SwitchMemory,
    /// It writes replicated state, and all updates to replicated state
    /// must come from the server for write-back to serialize (§4.3.3).
    ReplicatedWrite,
    /// Lost the one-access-per-state-per-traversal search (constraint 3).
    SingleStateAccess,
    /// Evicted to fit the per-packet metadata budget (constraint 4).
    MetadataBudget,
    /// Evicted to fit the 20-byte transfer-header budget (constraint 5).
    TransferBudget,
}

impl ExplainReason {
    /// Every reason, in phase order (used for exhaustive reporting).
    pub const ALL: [ExplainReason; 10] = [
        ExplainReason::Offloaded,
        ExplainReason::NotExpressible,
        ExplainReason::LoopResident,
        ExplainReason::DependencyRules,
        ExplainReason::PipelineDepth,
        ExplainReason::SwitchMemory,
        ExplainReason::ReplicatedWrite,
        ExplainReason::SingleStateAccess,
        ExplainReason::MetadataBudget,
        ExplainReason::TransferBudget,
    ];

    /// Stable snake_case key (used in JSON output and metric names).
    pub fn key(self) -> &'static str {
        match self {
            ExplainReason::Offloaded => "offloaded",
            ExplainReason::NotExpressible => "not_expressible",
            ExplainReason::LoopResident => "loop_resident",
            ExplainReason::DependencyRules => "dependency_rules",
            ExplainReason::PipelineDepth => "pipeline_depth",
            ExplainReason::SwitchMemory => "switch_memory",
            ExplainReason::ReplicatedWrite => "replicated_write",
            ExplainReason::SingleStateAccess => "single_state_access",
            ExplainReason::MetadataBudget => "metadata_budget",
            ExplainReason::TransferBudget => "transfer_budget",
        }
    }

    /// One-line human explanation (used in the text report).
    pub fn describe(self) -> &'static str {
        match self {
            ExplainReason::Offloaded => "runs on the switch",
            ExplainReason::NotExpressible => "P4 cannot express this operation (§4.2.1)",
            ExplainReason::LoopResident => "inside a loop; pipelines cannot loop (rule 5)",
            ExplainReason::DependencyRules => "dependency on a server-resident value (rules 1-4)",
            ExplainReason::PipelineDepth => {
                "dependency chain exceeds pipeline depth (constraint 2)"
            }
            ExplainReason::SwitchMemory => "state does not fit switch memory (constraint 1)",
            ExplainReason::ReplicatedWrite => {
                "writes replicated state; server owns updates (§4.3.3)"
            }
            ExplainReason::SingleStateAccess => {
                "second access to a state in one traversal (constraint 3)"
            }
            ExplainReason::MetadataBudget => "per-packet metadata budget exceeded (constraint 4)",
            ExplainReason::TransferBudget => {
                "20-byte transfer header budget exceeded (constraint 5)"
            }
        }
    }

    /// The canonical [`RuleId`] this reason corresponds to, when the
    /// mapping is one-to-one. `Offloaded` has no rule, and
    /// `DependencyRules` covers rules 1–4 — for those the driver falls
    /// back to the per-label trace recorded during the fixpoint.
    pub fn rule_hint(self) -> Option<RuleId> {
        match self {
            ExplainReason::Offloaded | ExplainReason::DependencyRules => None,
            ExplainReason::NotExpressible => Some(RuleId::NotExpressible),
            ExplainReason::LoopResident => Some(RuleId::Rule5),
            ExplainReason::PipelineDepth => Some(RuleId::Constraint2PipelineDepth),
            ExplainReason::SwitchMemory => Some(RuleId::Constraint1Memory),
            ExplainReason::ReplicatedWrite => Some(RuleId::ReplicatedWrite),
            ExplainReason::SingleStateAccess => Some(RuleId::Constraint3SingleAccess),
            ExplainReason::MetadataBudget => Some(RuleId::Constraint4Metadata),
            ExplainReason::TransferBudget => Some(RuleId::Constraint5Transfer),
        }
    }
}

impl std::fmt::Display for ExplainReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// One row of the report: an instruction, its partition, and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainEntry {
    /// The instruction's SSA id.
    pub value: ValueId,
    /// Pretty-printed instruction text (from the MIR printer).
    pub text: String,
    /// Final partition assignment.
    pub partition: Partition,
    /// The first cause that fixed this assignment.
    pub reason: ExplainReason,
    /// The specific §4 rule that first constrained this instruction, when
    /// one was recorded (first label removal for `DependencyRules`, the
    /// constraint itself for resource evictions, `None` for instructions
    /// that kept every label).
    pub rule: Option<RuleId>,
}

/// A global state's placement, for the report's state section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateExplain {
    /// Declared state name.
    pub name: String,
    /// Where it lives after partitioning (§4.3.1).
    pub placement: StatePlacement,
}

/// The full per-program partition explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainReport {
    /// Program name.
    pub program: String,
    /// One entry per instruction, in SSA order.
    pub entries: Vec<ExplainEntry>,
    /// One entry per declared global state.
    pub states: Vec<StateExplain>,
}

impl ExplainReport {
    /// Build the report for a staged program.
    pub fn new(staged: &StagedProgram) -> Self {
        let prog = &staged.prog;
        let entries = (0..prog.func.insts.len())
            .map(|v| {
                let vid = ValueId(v as u32);
                ExplainEntry {
                    value: vid,
                    text: printer::print_inst(prog, vid),
                    partition: staged.partition_of(vid),
                    reason: staged.reason_of(vid),
                    rule: staged.rule_of(vid),
                }
            })
            .collect();
        let states = prog
            .states
            .iter()
            .enumerate()
            .map(|(s, st)| StateExplain {
                name: st.name.clone(),
                placement: staged.placements[s],
            })
            .collect();
        ExplainReport {
            program: prog.name.clone(),
            entries,
            states,
        }
    }

    /// The entry for instruction `v`.
    pub fn entry(&self, v: ValueId) -> &ExplainEntry {
        &self.entries[v.0 as usize]
    }

    /// Number of instructions on the switch.
    pub fn offloaded_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.partition.on_switch())
            .count()
    }

    /// Number of instructions on the server.
    pub fn server_count(&self) -> usize {
        self.entries.len() - self.offloaded_count()
    }

    /// How many instructions carry each reason (phase order, zeros kept).
    pub fn reason_counts(&self) -> Vec<(ExplainReason, usize)> {
        ExplainReason::ALL
            .iter()
            .map(|&r| (r, self.entries.iter().filter(|e| e.reason == r).count()))
            .collect()
    }

    /// Render the report as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain: {} ({} instructions: {} offloaded, {} on server)",
            self.program,
            self.entries.len(),
            self.offloaded_count(),
            self.server_count()
        );
        let id_w = self
            .entries
            .iter()
            .map(|e| format!("v{}", e.value.0).len())
            .max()
            .unwrap_or(2);
        let text_w = self.entries.iter().map(|e| e.text.len()).max().unwrap_or(0);
        for e in &self.entries {
            let rule = match e.rule {
                Some(r) => format!("  [{}]", r.key()),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {:<id_w$}  {:<7}  {:<text_w$}  {}{}",
                format!("v{}", e.value.0),
                e.partition.label(),
                e.text,
                e.reason.describe(),
                rule,
            );
        }
        if !self.states.is_empty() {
            let _ = writeln!(out, "states:");
            let name_w = self.states.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in &self.states {
                let _ = writeln!(out, "  {:<name_w$}  {}", s.name, s.placement.label());
            }
        }
        out
    }

    /// Serialize the report to JSON (hand-rolled; no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"program\": {},", json_escape(&self.program));
        let _ = write!(
            out,
            "\n  \"summary\": {{\"instructions\": {}, \"offloaded\": {}, \"server\": {}}},",
            self.entries.len(),
            self.offloaded_count(),
            self.server_count()
        );
        out.push_str("\n  \"instructions\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rule = match e.rule {
                Some(r) => json_escape(r.key()),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\n    {{\"value\": {}, \"partition\": {}, \"reason\": {}, \"rule\": {}, \"inst\": {}}}",
                e.value.0,
                json_escape(e.partition.label()),
                json_escape(e.reason.key()),
                rule,
                json_escape(&e.text)
            );
        }
        out.push_str("\n  ],\n  \"states\": [");
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"placement\": {}}}",
                json_escape(&s.name),
                json_escape(s.placement.label())
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}
