//! The element library.
//!
//! Covers the element kinds the paper's five middleboxes are assembled
//! from: classification (`IPClassifier`), header rewriting, counters,
//! terminals, and duplication.

use crate::graph::LowerCtx;
use gallium_mir::{BinOp, FuncBuilder, HeaderField, StateId};

/// A packet-processing element that can be lowered into MIR.
pub trait Element {
    /// Element-class name (diagnostics).
    fn name(&self) -> &'static str;

    /// Number of output ports.
    fn n_outputs(&self) -> usize {
        1
    }

    /// Declare any global state the element owns; the returned handles are
    /// available during lowering as `ctx.state_handles[self_idx]`.
    fn declare_state(&self, _b: &mut FuncBuilder) -> Vec<StateId> {
        vec![]
    }

    /// Emit this element's logic and recurse into downstream elements. The
    /// implementation must leave every emitted control-flow path
    /// terminated (directly or by lowering a downstream port).
    fn lower(&self, ctx: &mut LowerCtx<'_>, self_idx: usize);
}

/// One classification predicate — the subset of Click's `IPClassifier`
/// pattern language the evaluated middleboxes use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyRule {
    /// `ip proto X`.
    IpProto(u8),
    /// `dst port X` (TCP/UDP).
    DstPort(u16),
    /// `src port X`.
    SrcPort(u16),
    /// Any of the given TCP flag bits set (`tcp opt syn`, `… rst`, …).
    TcpFlagsAny(u8),
    /// Destination address equals.
    DstAddr(u32),
    /// Source address equals.
    SrcAddr(u32),
    /// Packet arrived on this switch port (Click's input-port dispatch).
    IngressPort(u16),
}

impl ClassifyRule {
    /// Emit the 1-bit match condition for this rule.
    fn condition(&self, b: &mut FuncBuilder) -> gallium_mir::ValueId {
        match self {
            ClassifyRule::IpProto(p) => {
                let f = b.read_field(HeaderField::IpProto);
                let c = b.cnst(u64::from(*p), 8);
                b.bin(BinOp::Eq, f, c)
            }
            ClassifyRule::DstPort(p) => {
                let f = b.read_field(HeaderField::DstPort);
                let c = b.cnst(u64::from(*p), 16);
                b.bin(BinOp::Eq, f, c)
            }
            ClassifyRule::SrcPort(p) => {
                let f = b.read_field(HeaderField::SrcPort);
                let c = b.cnst(u64::from(*p), 16);
                b.bin(BinOp::Eq, f, c)
            }
            ClassifyRule::TcpFlagsAny(mask) => {
                let f = b.read_field(HeaderField::TcpFlags);
                let m = b.cnst(u64::from(*mask), 8);
                let anded = b.bin(BinOp::And, f, m);
                let z = b.cnst(0, 8);
                b.bin(BinOp::Ne, anded, z)
            }
            ClassifyRule::DstAddr(a) => {
                let f = b.read_field(HeaderField::IpDaddr);
                let c = b.cnst(u64::from(*a), 32);
                b.bin(BinOp::Eq, f, c)
            }
            ClassifyRule::SrcAddr(a) => {
                let f = b.read_field(HeaderField::IpSaddr);
                let c = b.cnst(u64::from(*a), 32);
                b.bin(BinOp::Eq, f, c)
            }
            ClassifyRule::IngressPort(p) => {
                let f = b.read_port();
                let c = b.cnst(u64::from(*p), 16);
                b.bin(BinOp::Eq, f, c)
            }
        }
    }
}

/// `IPClassifier`-style dispatch: rule `i` matched → output port `i`;
/// nothing matched → output port `rules.len()`.
#[derive(Debug, Clone)]
pub struct Classifier {
    rules: Vec<ClassifyRule>,
}

impl Classifier {
    /// Build a classifier from ordered rules. An empty rule list is legal
    /// and sends every packet to the single "no match" port.
    pub fn new(rules: Vec<ClassifyRule>) -> Self {
        Classifier { rules }
    }
}

impl Element for Classifier {
    fn name(&self) -> &'static str {
        "Classifier"
    }

    fn n_outputs(&self) -> usize {
        self.rules.len() + 1
    }

    fn lower(&self, ctx: &mut LowerCtx<'_>, self_idx: usize) {
        for (i, rule) in self.rules.iter().enumerate() {
            let cond = rule.condition(&mut ctx.b);
            let matched = ctx.b.new_block();
            let next = ctx.b.new_block();
            ctx.b.branch(cond, matched, next);
            ctx.b.switch_to(matched);
            ctx.lower_port(self_idx, i);
            ctx.b.switch_to(next);
        }
        ctx.lower_port(self_idx, self.rules.len());
    }
}

/// Rewrite header fields to constants (the proxy's redirect, static NAT
/// rules, …) and continue on port 0.
#[derive(Debug, Clone)]
pub struct HeaderRewrite {
    writes: Vec<(HeaderField, u64)>,
}

impl HeaderRewrite {
    /// Build from `(field, value)` pairs.
    pub fn new(writes: Vec<(HeaderField, u64)>) -> Self {
        HeaderRewrite { writes }
    }
}

impl Element for HeaderRewrite {
    fn name(&self) -> &'static str {
        "HeaderRewrite"
    }

    fn lower(&self, ctx: &mut LowerCtx<'_>, self_idx: usize) {
        for (field, value) in &self.writes {
            let c = ctx.b.cnst(*value, field.bits());
            ctx.b.write_field(*field, c);
        }
        ctx.b.update_checksum();
        ctx.lower_port(self_idx, 0);
    }
}

/// Click's `Counter`: counts packets in a register, passes them through.
#[derive(Debug, Clone)]
pub struct Counter {
    state_name: String,
}

impl Counter {
    /// A counter whose register is called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            state_name: name.into(),
        }
    }
}

impl Element for Counter {
    fn name(&self) -> &'static str {
        "Counter"
    }

    fn declare_state(&self, b: &mut FuncBuilder) -> Vec<StateId> {
        vec![b.decl_register(&self.state_name, 64)]
    }

    fn lower(&self, ctx: &mut LowerCtx<'_>, self_idx: usize) {
        let reg = ctx.state_handles[self_idx][0];
        let one = ctx.b.cnst(1, 64);
        let _old = ctx.b.reg_fetch_add(reg, one);
        ctx.lower_port(self_idx, 0);
    }
}

/// Terminal: drop the packet (Click's `Discard`).
#[derive(Debug, Clone, Copy)]
pub struct Discard;

impl Element for Discard {
    fn name(&self) -> &'static str {
        "Discard"
    }

    fn n_outputs(&self) -> usize {
        0
    }

    fn lower(&self, ctx: &mut LowerCtx<'_>, _self_idx: usize) {
        ctx.b.drop_pkt();
        ctx.b.ret();
    }
}

/// Terminal: emit the packet (Click's `ToDevice`).
#[derive(Debug, Clone, Copy)]
pub struct SendOut;

impl Element for SendOut {
    fn name(&self) -> &'static str {
        "SendOut"
    }

    fn n_outputs(&self) -> usize {
        0
    }

    fn lower(&self, ctx: &mut LowerCtx<'_>, _self_idx: usize) {
        ctx.b.send();
        ctx.b.ret();
    }
}

/// Click's `Tee` (restricted to two ways): emits a copy of the packet
/// immediately, then continues processing on port 0.
#[derive(Debug, Clone, Copy)]
pub struct Tee;

impl Element for Tee {
    fn name(&self) -> &'static str {
        "Tee"
    }

    fn lower(&self, ctx: &mut LowerCtx<'_>, self_idx: usize) {
        ctx.b.send();
        ctx.lower_port(self_idx, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::{Interpreter, StateStore};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn tcp(dport: u16, flags: u8) -> gallium_net::Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x01010101,
                daddr: 0x02020202,
                sport: 999,
                dport,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(flags),
            100,
        )
        .build(PortId(3))
    }

    #[test]
    fn rewrite_and_count() {
        let mut g = Graph::new();
        let counter = g.add(Box::new(Counter::new("pkts")));
        let rw = g.add(Box::new(HeaderRewrite::new(vec![(
            HeaderField::IpDaddr,
            0x0A0A0A0A,
        )])));
        let out = g.add(Box::new(SendOut));
        g.connect(counter, 0, rw);
        g.connect(rw, 0, out);
        let prog = g.lower("rw").unwrap();
        let mut store = StateStore::new(&prog.states);
        let interp = Interpreter::new(&prog);
        for _ in 0..3 {
            let r = interp.run(&mut tcp(80, 0), &mut store, 0).unwrap();
            let sent = r.sent().unwrap();
            assert_eq!(
                read_header_field(sent.bytes(), HeaderField::IpDaddr),
                0x0A0A0A0A
            );
        }
        let reg = prog.state_by_name("pkts").unwrap();
        assert_eq!(store.reg_read(reg).unwrap(), 3);
    }

    #[test]
    fn multi_rule_classifier_ordering() {
        // rule 0: dst port 22 ; rule 1: SYN flag ; fallthrough.
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![
            ClassifyRule::DstPort(22),
            ClassifyRule::TcpFlagsAny(TcpFlags::SYN),
        ])));
        let drop22 = g.add(Box::new(Discard));
        let rw = g.add(Box::new(HeaderRewrite::new(vec![(HeaderField::IpTtl, 7)])));
        let out1 = g.add(Box::new(SendOut));
        let out2 = g.add(Box::new(SendOut));
        g.connect(cls, 0, drop22);
        g.connect(cls, 1, rw);
        g.connect(rw, 0, out1);
        g.connect(cls, 2, out2);
        let prog = g.lower("cls").unwrap();
        let mut store = StateStore::new(&prog.states);
        let interp = Interpreter::new(&prog);

        // dst 22: dropped even with SYN (rule order).
        let r = interp
            .run(&mut tcp(22, TcpFlags::SYN), &mut store, 0)
            .unwrap();
        assert!(r.dropped());

        // SYN elsewhere: rewritten TTL.
        let r = interp
            .run(&mut tcp(80, TcpFlags::SYN), &mut store, 0)
            .unwrap();
        assert_eq!(
            read_header_field(r.sent().unwrap().bytes(), HeaderField::IpTtl),
            7
        );

        // Plain packet: fallthrough, untouched TTL (64 from the builder).
        let r = interp.run(&mut tcp(80, 0), &mut store, 0).unwrap();
        assert_eq!(
            read_header_field(r.sent().unwrap().bytes(), HeaderField::IpTtl),
            64
        );
    }

    #[test]
    fn tee_duplicates() {
        let mut g = Graph::new();
        let tee = g.add(Box::new(Tee));
        let rw = g.add(Box::new(HeaderRewrite::new(vec![(HeaderField::IpTtl, 1)])));
        let out = g.add(Box::new(SendOut));
        g.connect(tee, 0, rw);
        g.connect(rw, 0, out);
        let prog = g.lower("tee").unwrap();
        let mut store = StateStore::new(&prog.states);
        let r = Interpreter::new(&prog)
            .run(&mut tcp(80, 0), &mut store, 0)
            .unwrap();
        // Two emissions: the untouched copy and the rewritten one.
        assert_eq!(r.actions.len(), 2);
    }

    #[test]
    fn ingress_port_rule() {
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![ClassifyRule::IngressPort(
            3,
        )])));
        let out = g.add(Box::new(SendOut));
        let drop = g.add(Box::new(Discard));
        g.connect(cls, 0, out);
        g.connect(cls, 1, drop);
        let prog = g.lower("byport").unwrap();
        let mut store = StateStore::new(&prog.states);
        let interp = Interpreter::new(&prog);
        let r = interp.run(&mut tcp(80, 0), &mut store, 0).unwrap(); // ingress 3
        assert!(r.sent().is_some());
        let mut other = tcp(80, 0);
        other.ingress = PortId(9);
        let r = interp.run(&mut other, &mut store, 0).unwrap();
        assert!(r.dropped());
    }
}
